//! # `mcdla` — Beyond the Memory Wall, reproduced in Rust
//!
//! A system-level simulator for **memory-centric deep-learning HPC nodes**,
//! reproducing Kwon & Rhu, *Beyond the Memory Wall: A Case for
//! Memory-centric HPC System for Deep Learning* (MICRO-51, 2018).
//!
//! The paper proposes **MC-DLA**: instead of virtualizing accelerator
//! memory over the host's PCIe interface (DC-DLA) or sacrificing
//! device-side links to reach the CPU (HC-DLA), it stations
//! capacity-optimized *memory-nodes* inside the NVLINK-class device-side
//! interconnect, giving every accelerator 150 GB/s of transparent
//! backing-store bandwidth and the node tens of terabytes of memory —
//! an average 2.8× training speedup over the DGX-style baseline.
//!
//! This facade re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | event kernel, fluid-flow bandwidth model, units |
//! | [`dnn`] | layers, network DAGs, the Table III benchmark zoo |
//! | [`accel`] | Table II device timing model, Fig. 2 generations |
//! | [`interconnect`] | topologies, rings, collective models (Figs. 5/7/9) |
//! | [`memnode`] | the memory-node: DIMMs, page policies, power (Figs. 6/10, Table IV) |
//! | [`vmem`] | vDNN-style memory-overlaying runtime (Table I API) |
//! | [`parallel`] | data-/model-parallel partitioners (Fig. 3) |
//! | [`core`] | the six system designs + iteration simulator + §V experiments |
//! | [`serve`] | the persistent simulation service over the shared result store |
//! | [`cluster`] | the fleet layer: consistent-hash gateway, failover, scatter-gather |
//!
//! # Quickstart
//!
//! ```
//! use mcdla::core::{experiment, SystemDesign};
//! use mcdla::dnn::Benchmark;
//! use mcdla::parallel::ParallelStrategy;
//!
//! // How much faster does the proposed MC-DLA(B) train VGG-E than the
//! // DGX-style DC-DLA baseline?
//! let dc = experiment::simulate(SystemDesign::DcDla, Benchmark::VggE,
//!     ParallelStrategy::DataParallel);
//! let mc = experiment::simulate(SystemDesign::McDlaBwAware, Benchmark::VggE,
//!     ParallelStrategy::DataParallel);
//! println!("{:.1}x", mc.speedup_over(&dc));
//! assert!(mc.speedup_over(&dc) > 2.0);
//! ```

#![warn(missing_docs)]

pub use mcdla_accel as accel;
pub use mcdla_cluster as cluster;
pub use mcdla_core as core;
pub use mcdla_dnn as dnn;
pub use mcdla_interconnect as interconnect;
pub use mcdla_memnode as memnode;
pub use mcdla_parallel as parallel;
pub use mcdla_serve as serve;
pub use mcdla_sim as sim;
pub use mcdla_vmem as vmem;
