//! The `mcdla` CLI: one binary regenerating every table and figure of
//! Kwon & Rhu's *Beyond the Memory Wall* (MICRO-51 2018).
//!
//! ```text
//! mcdla <subcommand> [--json] [--threads N] [--out FILE]
//! ```
//!
//! Run `mcdla help` for the subcommand list. All simulation subcommands
//! execute through the shared scenario runner: cells fan out across
//! worker threads and overlapping grids are memoized, so `mcdla all`
//! simulates each (design, benchmark, strategy, knobs) cell exactly once.

use std::process::ExitCode;

use mcdla_bench::reports;
use serde::Value;

/// Everything `main` needs from the argument list.
struct Args {
    command: String,
    json: bool,
    out: Option<String>,
    batches: Vec<u64>,
    devices: Vec<usize>,
}

const USAGE: &str = "\
mcdla — regenerate the tables and figures of Kwon & Rhu, MICRO-51 2018

usage: mcdla <subcommand> [options]

subcommands
  table2        Table II device/memory-node configuration
  table3        Table III benchmark suite
  table4        Table IV memory-node power + §V-C perf/W
  fig2          Fig. 2 execution time across device generations [--json]
  fig7          Figs. 5/7 ring structures and link budgets
  fig9          Fig. 9 collective latency vs ring size
  fig10         Fig. 10 LOCAL vs BW_AWARE page placement
  fig11         Fig. 11 latency breakdown stacks [--json]
  fig12         Fig. 12 CPU memory-bandwidth usage [--json]
  fig13         Fig. 13 normalized performance [--json]
  fig14         Fig. 14 batch-size sensitivity [--json]
  scalability   §V-D multi-device scaling [--json]
  sensitivity   §V-B sensitivity studies [--json]
  scale-out     §VI NVSwitch-class weak scaling [--json]
  ablations     mechanism ablation studies
  energy        dynamic energy-per-iteration comparison
  paper-report  the full paper-vs-measured summary
  sweep         time every grid cell, write BENCH_scenarios.json
  all           every report above, in order
  help          this message

options
  --json           emit the experiment data as JSON instead of tables
  --threads N      simulation worker threads (same as MCDLA_THREADS=N)
  --out FILE       sweep output path (default BENCH_scenarios.json)
  --batches LIST   sweep: comma-separated batch sizes to add as an axis
  --devices LIST   sweep: comma-separated device counts to add as an axis
";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_owned());
    let mut args = Args {
        command,
        json: false,
        out: None,
        batches: Vec::new(),
        devices: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--json" => args.json = true,
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("invalid thread count `{v}`"))?;
                // The shared runner reads MCDLA_THREADS at first use, which
                // is strictly after argument parsing.
                std::env::set_var("MCDLA_THREADS", n.to_string());
            }
            "--out" => args.out = Some(argv.next().ok_or("--out needs a path")?),
            "--batches" => {
                args.batches = parse_list(&argv.next().ok_or("--batches needs a list")?)?;
                if args.batches.contains(&0) {
                    return Err("batch sizes must be >= 1".into());
                }
            }
            "--devices" => {
                args.devices = parse_list(&argv.next().ok_or("--devices needs a list")?)?;
                if args.devices.contains(&0) {
                    return Err("device counts must be >= 1".into());
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn parse_list<T: std::str::FromStr>(csv: &str) -> Result<Vec<T>, String> {
    csv.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| format!("invalid list element `{p}`"))
        })
        .collect()
}

const SUBCOMMANDS: &[&str] = &[
    "table2",
    "table3",
    "table4",
    "fig2",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "scalability",
    "sensitivity",
    "scale-out",
    "ablations",
    "energy",
    "paper-report",
    "sweep",
    "all",
    "help",
    "--help",
    "-h",
];

fn run(args: &Args) -> Result<(), String> {
    // Reject unknown subcommands before any flag-specific dispatch so
    // `mcdla bogus --json` names the real problem.
    if !SUBCOMMANDS.contains(&args.command.as_str()) {
        return Err(format!("unknown subcommand `{}`", args.command));
    }
    let json_data: Option<fn() -> Value> = match args.command.as_str() {
        "fig2" => Some(reports::fig2_json),
        "fig11" => Some(reports::fig11_json),
        "fig12" => Some(reports::fig12_json),
        "fig13" => Some(reports::fig13_json),
        "fig14" => Some(reports::fig14_json),
        "scalability" => Some(reports::scalability_json),
        "sensitivity" => Some(reports::sensitivity_json),
        "scale-out" => Some(reports::scale_out_json),
        _ => None,
    };
    if args.json {
        match json_data {
            Some(data) => {
                println!("{}", serde::json::to_string_pretty(&data()));
                return Ok(());
            }
            None if args.command != "sweep" => {
                return Err(format!("`{}` has no JSON form (tables only)", args.command));
            }
            None => {}
        }
    }

    match args.command.as_str() {
        "table2" => print!("{}", reports::table2_text()),
        "table3" => print!("{}", reports::table3_text()),
        "table4" => print!("{}", reports::table4_text()),
        "fig2" => print!("{}", reports::fig2_text()),
        "fig7" => print!("{}", reports::fig7_text()),
        "fig9" => print!("{}", reports::fig9_text()),
        "fig10" => print!("{}", reports::fig10_text()),
        "fig11" => print!("{}", reports::fig11_text()),
        "fig12" => print!("{}", reports::fig12_text()),
        "fig13" => print!("{}", reports::fig13_text()),
        "fig14" => print!("{}", reports::fig14_text()),
        "scalability" => print!("{}", reports::scalability_text()),
        "sensitivity" => print!("{}", reports::sensitivity_text()),
        "scale-out" => print!("{}", reports::scale_out_text()),
        "ablations" => print!("{}", reports::ablations_text()),
        "energy" => print!("{}", reports::energy_text()),
        "paper-report" => print!("{}", reports::paper_report_text()),
        "sweep" => {
            let result = reports::sweep(&args.batches, &args.devices);
            let path = args.out.as_deref().unwrap_or("BENCH_scenarios.json");
            std::fs::write(path, &result.json).map_err(|e| format!("writing {path}: {e}"))?;
            print!("{}", result.summary);
            println!("wrote {path}");
        }
        "all" => {
            for text in [
                reports::table2_text(),
                reports::table3_text(),
                reports::table4_text(),
                reports::fig2_text(),
                reports::fig7_text(),
                reports::fig9_text(),
                reports::fig10_text(),
                reports::fig11_text(),
                reports::fig12_text(),
                reports::fig13_text(),
                reports::fig14_text(),
                reports::scalability_text(),
                reports::sensitivity_text(),
                reports::scale_out_text(),
                reports::ablations_text(),
                reports::energy_text(),
                reports::paper_report_text(),
            ] {
                println!("{text}");
            }
        }
        "help" | "--help" | "-h" => print!("{USAGE}"),
        other => unreachable!("subcommand `{other}` passed the SUBCOMMANDS gate"),
    }
    Ok(())
}
