//! The `mcdla` CLI: one binary regenerating every table and figure of
//! Kwon & Rhu's *Beyond the Memory Wall* (MICRO-51 2018).
//!
//! ```text
//! mcdla <subcommand> [--json] [--threads N] [--out FILE]
//! ```
//!
//! Run `mcdla help` for the subcommand list. All simulation subcommands
//! execute through the shared scenario runner: cells fan out across
//! worker threads and overlapping grids are memoized, so `mcdla all`
//! simulates each (design, benchmark, strategy, knobs) cell exactly once.

use std::process::ExitCode;

use mcdla_bench::reports;
use serde::Value;

/// Everything `main` needs from the argument list.
struct Args {
    command: String,
    /// Positional arguments after the subcommand (`mcdla query <endpoint>`).
    rest: Vec<String>,
    json: bool,
    ndjson: bool,
    out: Option<String>,
    batches: Vec<u64>,
    devices: Vec<usize>,
    topologies: Vec<mcdla::interconnect::FabricTopology>,
    threads: Option<usize>,
    filter: Option<String>,
    addr: Option<String>,
    cache_cap: Option<usize>,
    snapshot: Option<String>,
    body: Option<String>,
    workers: Option<usize>,
    backends: Vec<String>,
    timeout_ms: Option<u64>,
    interval_ms: Option<u64>,
    samples: Option<u64>,
}

const USAGE: &str = "\
mcdla — regenerate the tables and figures of Kwon & Rhu, MICRO-51 2018

usage: mcdla <subcommand> [options]

subcommands
  table2        Table II device/memory-node configuration
  table3        Table III benchmark suite
  table4        Table IV memory-node power + §V-C perf/W
  fig2          Fig. 2 execution time across device generations [--json]
  fig7          Figs. 5/7 ring structures and link budgets
  fig9          Fig. 9 collective latency vs ring size
  fig10         Fig. 10 LOCAL vs BW_AWARE page placement
  fig11         Fig. 11 latency breakdown stacks [--json]
  fig12         Fig. 12 CPU memory-bandwidth usage [--json]
  fig13         Fig. 13 normalized performance [--json]
  fig14         Fig. 14 batch-size sensitivity [--json]
  scalability   §V-D multi-device scaling [--json]
  sensitivity   §V-B sensitivity studies [--json]
  scale-out     §VI NVSwitch-class weak scaling [--json]
  ablations     mechanism ablation studies
  energy        dynamic energy-per-iteration comparison
  paper-report  the full paper-vs-measured summary
  sweep         time every grid cell, write BENCH_scenarios.json
                (--ndjson streams one JSON object per cell to stdout)
  simulate      run one scenario cell from JSON, print its report
  serve         run the persistent HTTP simulation service
  query         query a running service or gateway (healthz | stats |
                metrics | cluster-stats | simulate | grid |
                trace <id> | requests | history [QUERY] |
                cluster-history [QUERY]); QUERY is a raw query string,
                e.g. `mcdla query history 'series=req_per_s&last=60'`
  top           live fleet console: repaint per-node req/s, latency,
                hit rates, sheds, and sparklines from the telemetry
                history (--addr GATEWAY or --backends WORKERS;
                --interval-ms, --samples N for scripted captures)
  cluster       spawn a local fleet: N workers on ephemeral ports plus a
                gateway routing across them (--workers N)
  gateway       run a gateway over an existing fleet (--backends LIST)
  serve-bench   time the service layer, write BENCH_service.json
  store-bench   time the result-store cache core, write BENCH_store.json
  cluster-bench time 1/2/4-worker fleets, write BENCH_cluster.json
  stage-bench   time mega-grid sweeps through the staged engine vs the
                monolithic one, write BENCH_stages.json
  fabric-bench  time the routed flow-level fabric against the analytical
                collective model, write BENCH_fabric.json
  obs-bench     A/B the telemetry sampler on/off over the pipelined
                cached path, write BENCH_obs.json (gate: < 1% overhead)
  bench-report  collate every committed BENCH_*.json into one headline
                trajectory table [--json]
  all           every report above, in order
  help          this message

options
  --json            emit the experiment data as JSON instead of tables
  --ndjson          sweep: stream cells as NDJSON (one object per line,
                    completion order, constant memory) to stdout or --out
  --threads N       simulation worker threads (same as MCDLA_THREADS=N);
                    for `serve`, the simulation worker pool behind the
                    event loop (connections are handled non-blocking)
  --out FILE        sweep/serve-bench/store-bench output path
  --batches LIST    sweep: comma-separated batch sizes to add as an axis
  --devices LIST    sweep: comma-separated device counts to add as an axis
  --topologies LIST sweep: comma-separated fabric topologies to add as an
                    axis (ring | line | mesh | pooled-switch | fat-tree);
                    flow-routed copies of the matrix join the analytical
                    default cells
  --filter SUBSTR   sweep: only run cells whose label contains SUBSTR
                    (labels look like `MC-DLA(B)/AlexNet/data-parallel`);
                    a filter matching zero cells is an error
  --addr HOST:PORT  serve/query listen or target address (default
                    127.0.0.1:7878); for cluster/gateway, the gateway's
                    listen address (default 127.0.0.1:7900)
  --cache-cap N     serve/sweep/cluster: bound the result store to N
                    cells (globally LRU-evicted; residency never
                    exceeds N; cluster: per worker)
  --snapshot FILE   serve: warm-load at startup, rewrite after new cells
                    (snapshots larger than --cache-cap are compacted);
                    cluster: per-worker files FILE.w0.json, FILE.w1.json...
  --body JSON       simulate/query: the request body (`-` reads stdin;
                    `query grid` defaults to {}, the full paper matrix)
  --workers N       cluster: fleet size
  --backends LIST   gateway/top: comma-separated worker host:port addresses
  --timeout-ms N    query/cluster/gateway/top: connect/read/write deadline
                    per request (query default: 10 s connect, 120 s read;
                    top default: 2 s everywhere so a dead node cannot
                    stall the repaint)
  --interval-ms N   top: repaint cadence (default 1000)
  --samples N       top: exit after N frames (default: run until Ctrl-C)

service endpoints (see docs/protocol.md and docs/cluster.md)
  POST /simulate   one serde Scenario in, {scenario,digest,cached,report} out
  POST /grid       cartesian axes in, {count,cells:[...]} out
  GET  /healthz    liveness probe
  GET  /stats      store hit/miss/eviction/in-flight + request counters
  GET  /metrics    Prometheus text exposition (worker and gateway)
  GET  /metrics/history    time-series rings (?series=a,b&last=N)
  GET  /cluster/stats  gateway: per-worker health + fleet totals
  GET  /cluster/history    gateway: tail-aligned fleet history +
                           per-worker rings (?last=N)
  GET  /debug/trace/<id>   one recorded request's span tree
  GET  /debug/requests     the flight-recorder listing (?sort=slow,
                           ?endpoint=..., ?limit=N)
";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_owned());
    let mut args = Args {
        command,
        rest: Vec::new(),
        json: false,
        ndjson: false,
        out: None,
        batches: Vec::new(),
        devices: Vec::new(),
        topologies: Vec::new(),
        threads: None,
        filter: None,
        addr: None,
        cache_cap: None,
        snapshot: None,
        body: None,
        workers: None,
        backends: Vec::new(),
        timeout_ms: None,
        interval_ms: None,
        samples: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--json" => args.json = true,
            "--ndjson" => args.ndjson = true,
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("thread count must be >= 1 (got `{v}`)"))?;
                // The shared runner reads MCDLA_THREADS at first use, which
                // is strictly after argument parsing.
                std::env::set_var("MCDLA_THREADS", n.to_string());
                args.threads = Some(n);
            }
            "--out" => args.out = Some(argv.next().ok_or("--out needs a path")?),
            "--batches" => {
                args.batches = parse_list(&argv.next().ok_or("--batches needs a list")?)?;
                if args.batches.contains(&0) {
                    return Err("batch sizes must be >= 1".into());
                }
            }
            "--devices" => {
                args.devices = parse_list(&argv.next().ok_or("--devices needs a list")?)?;
                if args.devices.contains(&0) {
                    return Err("device counts must be >= 1".into());
                }
            }
            "--topologies" => {
                // FromStr on FabricTopology already names every accepted
                // topology in its error, so the raw parse error is the
                // helpful message (parse_list would swallow it).
                let v = argv
                    .next()
                    .ok_or("--topologies needs a list (e.g. ring,pooled-switch)")?;
                args.topologies = v
                    .split(',')
                    .map(|p| p.trim().parse())
                    .collect::<Result<_, _>>()?;
                if args.topologies.is_empty() {
                    return Err("--topologies needs at least one topology".into());
                }
            }
            "--filter" => args.filter = Some(argv.next().ok_or("--filter needs a substring")?),
            "--addr" => args.addr = Some(argv.next().ok_or("--addr needs host:port")?),
            "--cache-cap" => {
                let v = argv.next().ok_or("--cache-cap needs a value")?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("cache capacity must be >= 1 (got `{v}`)"))?;
                args.cache_cap = Some(n);
            }
            "--snapshot" => args.snapshot = Some(argv.next().ok_or("--snapshot needs a path")?),
            "--body" => args.body = Some(argv.next().ok_or("--body needs JSON (or `-`)")?),
            "--workers" => {
                let v = argv.next().ok_or("--workers needs a count")?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("worker count must be >= 1 (got `{v}`)"))?;
                args.workers = Some(n);
            }
            "--backends" => {
                let v = argv
                    .next()
                    .ok_or("--backends needs host:port,host:port,...")?;
                args.backends = v
                    .split(',')
                    .map(|a| a.trim().to_owned())
                    .filter(|a| !a.is_empty())
                    .collect();
                if args.backends.is_empty() {
                    return Err("--backends needs at least one host:port".into());
                }
            }
            "--timeout-ms" => {
                let v = argv.next().ok_or("--timeout-ms needs a value")?;
                let n: u64 = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("timeout must be >= 1 ms (got `{v}`)"))?;
                args.timeout_ms = Some(n);
            }
            "--interval-ms" => {
                let v = argv.next().ok_or("--interval-ms needs a value")?;
                let n: u64 = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("interval must be >= 1 ms (got `{v}`)"))?;
                args.interval_ms = Some(n);
            }
            "--samples" => {
                let v = argv.next().ok_or("--samples needs a count")?;
                let n: u64 = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("sample count must be >= 1 (got `{v}`)"))?;
                args.samples = Some(n);
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            positional => args.rest.push(positional.to_owned()),
        }
    }
    Ok(args)
}

/// Resolves `--body`, reading stdin when it is `-`.
fn resolve_body(args: &Args) -> Result<Option<String>, String> {
    match args.body.as_deref() {
        Some("-") => {
            let mut text = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(Some(text))
        }
        Some(body) => Ok(Some(body.to_owned())),
        None => Ok(None),
    }
}

/// Client/gateway deadlines: `--timeout-ms` bounds every phase; the
/// default keeps the generous stock deadlines (10 s connect, 120 s
/// read) so cold cells still simulate, while a dead host fails fast.
fn timeouts(args: &Args) -> mcdla::serve::client::Timeouts {
    match args.timeout_ms {
        Some(ms) => mcdla::serve::client::Timeouts::all(std::time::Duration::from_millis(ms)),
        None => mcdla::serve::client::Timeouts::default(),
    }
}

fn parse_list<T: std::str::FromStr>(csv: &str) -> Result<Vec<T>, String> {
    csv.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| format!("invalid list element `{p}`"))
        })
        .collect()
}

const SUBCOMMANDS: &[&str] = &[
    "table2",
    "table3",
    "table4",
    "fig2",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "scalability",
    "sensitivity",
    "scale-out",
    "ablations",
    "energy",
    "paper-report",
    "sweep",
    "simulate",
    "serve",
    "query",
    "top",
    "cluster",
    "gateway",
    "serve-bench",
    "store-bench",
    "cluster-bench",
    "stage-bench",
    "fabric-bench",
    "obs-bench",
    "bench-report",
    "all",
    "help",
    "--help",
    "-h",
];

fn run(args: &Args) -> Result<(), String> {
    // Reject unknown subcommands before any flag-specific dispatch so
    // `mcdla bogus --json` names the real problem.
    if !SUBCOMMANDS.contains(&args.command.as_str()) {
        return Err(format!("unknown subcommand `{}`", args.command));
    }
    if args.ndjson && args.command != "sweep" {
        return Err(format!(
            "--ndjson is a `sweep` flag (got `{}`)",
            args.command
        ));
    }
    if !args.topologies.is_empty() && args.command != "sweep" {
        return Err(format!(
            "--topologies is a `sweep` flag (got `{}`)",
            args.command
        ));
    }
    if args.timeout_ms.is_some()
        && !matches!(
            args.command.as_str(),
            "query" | "cluster" | "gateway" | "top"
        )
    {
        return Err(format!(
            "--timeout-ms is a `query`/`cluster`/`gateway`/`top` flag (got `{}`)",
            args.command
        ));
    }
    if args.workers.is_some() && args.command != "cluster" {
        return Err(format!(
            "--workers is a `cluster` flag (got `{}`)",
            args.command
        ));
    }
    if !args.backends.is_empty() && !matches!(args.command.as_str(), "gateway" | "top") {
        return Err(format!(
            "--backends is a `gateway`/`top` flag (got `{}`)",
            args.command
        ));
    }
    if (args.interval_ms.is_some() || args.samples.is_some()) && args.command != "top" {
        return Err(format!(
            "--interval-ms/--samples are `top` flags (got `{}`)",
            args.command
        ));
    }
    // Only `query` takes a positional argument (its endpoint).
    if !args.rest.is_empty() && args.command != "query" {
        return Err(format!(
            "`{}` takes no positional argument `{}`",
            args.command, args.rest[0]
        ));
    }
    let json_data: Option<fn() -> Value> = match args.command.as_str() {
        "fig2" => Some(reports::fig2_json),
        "fig11" => Some(reports::fig11_json),
        "fig12" => Some(reports::fig12_json),
        "fig13" => Some(reports::fig13_json),
        "fig14" => Some(reports::fig14_json),
        "scalability" => Some(reports::scalability_json),
        "sensitivity" => Some(reports::sensitivity_json),
        "scale-out" => Some(reports::scale_out_json),
        _ => None,
    };
    if args.json {
        match json_data {
            Some(data) => {
                println!("{}", serde::json::to_string_pretty(&data()));
                return Ok(());
            }
            None if !matches!(args.command.as_str(), "sweep" | "bench-report") => {
                return Err(format!("`{}` has no JSON form (tables only)", args.command));
            }
            None => {}
        }
    }

    match args.command.as_str() {
        "table2" => print!("{}", reports::table2_text()),
        "table3" => print!("{}", reports::table3_text()),
        "table4" => print!("{}", reports::table4_text()),
        "fig2" => print!("{}", reports::fig2_text()),
        "fig7" => print!("{}", reports::fig7_text()),
        "fig9" => print!("{}", reports::fig9_text()),
        "fig10" => print!("{}", reports::fig10_text()),
        "fig11" => print!("{}", reports::fig11_text()),
        "fig12" => print!("{}", reports::fig12_text()),
        "fig13" => print!("{}", reports::fig13_text()),
        "fig14" => print!("{}", reports::fig14_text()),
        "scalability" => print!("{}", reports::scalability_text()),
        "sensitivity" => print!("{}", reports::sensitivity_text()),
        "scale-out" => print!("{}", reports::scale_out_text()),
        "ablations" => print!("{}", reports::ablations_text()),
        "energy" => print!("{}", reports::energy_text()),
        "paper-report" => print!("{}", reports::paper_report_text()),
        "sweep" if args.ndjson => {
            // Streamed sweep: one compact JSON object per cell, written
            // as workers finish. Cells go to stdout (pipe into
            // `jq -s length` & friends) unless --out names a file; the
            // summary goes to stderr so stdout stays pure NDJSON. The
            // plan is validated *before* --out is created, so a bad
            // filter or axis never truncates an existing file.
            let plan = reports::plan_sweep(
                &args.batches,
                &args.devices,
                &args.topologies,
                args.filter.as_deref(),
                args.cache_cap,
            )?;
            let summary = match args.out.as_deref() {
                Some(path) => {
                    let file =
                        std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
                    let mut out = std::io::BufWriter::new(file);
                    let s = reports::sweep_ndjson(plan, &mut out)?;
                    eprintln!("wrote {} cells to {path}", s.cells);
                    s
                }
                None => {
                    let stdout = std::io::stdout();
                    let mut out = std::io::BufWriter::new(stdout.lock());
                    reports::sweep_ndjson(plan, &mut out)?
                }
            };
            eprint!("{}", summary.summary);
        }
        "sweep" => {
            let plan = reports::plan_sweep(
                &args.batches,
                &args.devices,
                &args.topologies,
                args.filter.as_deref(),
                args.cache_cap,
            )?;
            let result = reports::sweep(plan);
            let path = args.out.as_deref().unwrap_or("BENCH_scenarios.json");
            std::fs::write(path, &result.json).map_err(|e| format!("writing {path}: {e}"))?;
            print!("{}", result.summary);
            println!("wrote {path}");
        }
        "simulate" => {
            let body = resolve_body(args)?
                .ok_or("`simulate` needs --body JSON (a serde Scenario; see docs/protocol.md)")?;
            let scenario: mcdla::core::Scenario =
                serde::json::from_str(&body).map_err(|e| format!("bad scenario JSON: {e}"))?;
            scenario.validate()?;
            let report = scenario.simulate();
            println!(
                "{}",
                serde::json::to_string_pretty(&mcdla::serve::cell_value(&scenario, &report, false))
            );
        }
        "serve" => {
            let config = mcdla::serve::ServeConfig {
                addr: args
                    .addr
                    .clone()
                    .unwrap_or_else(|| "127.0.0.1:7878".to_owned()),
                threads: args.threads.unwrap_or(4),
                cache_cap: args.cache_cap,
                snapshot: args.snapshot.clone().map(std::path::PathBuf::from),
                ..mcdla::serve::ServeConfig::default()
            };
            let server = mcdla::serve::Server::bind(&config)?;
            let local = server
                .local_addr()
                .map_err(|e| format!("resolving listen address: {e}"))?;
            println!(
                "mcdla-serve listening on {local} (event loop + {} worker threads, cache {}, snapshot {})",
                config.threads,
                match config.cache_cap {
                    Some(cap) => format!("{cap} cells"),
                    None => "unbounded".to_owned(),
                },
                match &config.snapshot {
                    Some(path) => path.display().to_string(),
                    None => "off".to_owned(),
                },
            );
            server.run().map_err(|e| format!("serving: {e}"))?;
        }
        "query" => {
            let endpoint = args.rest.first().ok_or(
                "`query` needs an endpoint: healthz | stats | metrics | cluster-stats | simulate \
                 | grid | trace | requests | history | cluster-history",
            )?;
            let addr = args.addr.as_deref().unwrap_or("127.0.0.1:7878");
            let body = resolve_body(args)?;
            let (method, path, body) = match endpoint.as_str() {
                "healthz" => ("GET", "/healthz".to_owned(), None),
                "stats" => ("GET", "/stats".to_owned(), None),
                "metrics" => ("GET", "/metrics".to_owned(), None),
                "cluster-stats" => ("GET", "/cluster/stats".to_owned(), None),
                // The recorded span tree for one request id.
                "trace" => {
                    let id = args
                        .rest
                        .get(1)
                        .ok_or("`query trace` needs a request id: mcdla query trace <id>")?;
                    ("GET", format!("/debug/trace/{id}"), None)
                }
                // The flight-recorder listing (newest first).
                "requests" => ("GET", "/debug/requests".to_owned(), None),
                // Time-series rings; the optional second positional is a
                // raw query string (`series=req_per_s&last=60`).
                "history" | "cluster-history" => {
                    let base = if endpoint == "history" {
                        "/metrics/history"
                    } else {
                        "/cluster/history"
                    };
                    let path = match args.rest.get(1) {
                        Some(q) if !q.is_empty() => format!("{base}?{q}"),
                        _ => base.to_owned(),
                    };
                    ("GET", path, None)
                }
                "simulate" => (
                    "POST",
                    "/simulate".to_owned(),
                    Some(body.ok_or("`query simulate` needs --body JSON (a serde Scenario)")?),
                ),
                // An omitted grid body means the full paper matrix.
                "grid" => (
                    "POST",
                    "/grid".to_owned(),
                    Some(body.unwrap_or_else(|| "{}".to_owned())),
                ),
                other => {
                    return Err(format!(
                        "unknown query endpoint `{other}` (expected healthz | stats | metrics \
                         | cluster-stats | simulate | grid | trace | requests | history \
                         | cluster-history)"
                    ))
                }
            };
            let response = mcdla::serve::client::request_once_with(
                addr,
                method,
                &path,
                body.as_deref(),
                timeouts(args),
            )?;
            println!("{}", response.body);
            if !response.is_ok() {
                return Err(format!("{addr}{path} answered HTTP {}", response.status));
            }
        }
        "top" => {
            // A dead node must not stall the repaint: default every
            // deadline to 2 s unless --timeout-ms overrides it.
            let top_timeouts = match args.timeout_ms {
                Some(ms) => {
                    mcdla::serve::client::Timeouts::all(std::time::Duration::from_millis(ms))
                }
                None => mcdla::serve::client::Timeouts::all(std::time::Duration::from_secs(2)),
            };
            let config = mcdla::cluster::console::TopConfig {
                gateway: args.addr.clone(),
                workers: args.backends.clone(),
                interval: std::time::Duration::from_millis(args.interval_ms.unwrap_or(1000)),
                frames: args.samples,
                timeouts: top_timeouts,
            };
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            mcdla::cluster::console::run_top(&config, &mut out)?;
        }
        "cluster" => {
            let workers = args.workers.ok_or("`cluster` needs --workers N")?;
            let addr = args.addr.as_deref().unwrap_or("127.0.0.1:7900");
            let snapshot_prefix = args.snapshot.as_deref().map(std::path::Path::new);
            let mut handles = Vec::with_capacity(workers);
            let mut backends = Vec::with_capacity(workers);
            for i in 0..workers {
                let server = mcdla::serve::Server::bind(&mcdla::serve::ServeConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    threads: args.threads.unwrap_or(4),
                    cache_cap: args.cache_cap,
                    snapshot: snapshot_prefix
                        .map(|prefix| mcdla::cluster::worker_snapshot_path(prefix, i)),
                    ..mcdla::serve::ServeConfig::default()
                })?;
                let handle = server
                    .spawn()
                    .map_err(|e| format!("spawning worker {i}: {e}"))?;
                println!("mcdla-serve worker {i} listening on {}", handle.addr());
                backends.push(handle.addr().to_string());
                handles.push(handle);
            }
            let gateway = mcdla::cluster::Gateway::bind(&mcdla::cluster::GatewayConfig {
                addr: addr.to_owned(),
                backends,
                timeouts: timeouts(args),
                ..mcdla::cluster::GatewayConfig::default()
            })?;
            let local = gateway
                .local_addr()
                .map_err(|e| format!("resolving gateway address: {e}"))?;
            println!(
                "mcdla-gateway listening on {local} ({workers} workers, cache {}, snapshot {})",
                match args.cache_cap {
                    Some(cap) => format!("{cap} cells/worker"),
                    None => "unbounded".to_owned(),
                },
                match &args.snapshot {
                    Some(prefix) => format!("{prefix}.wN.json"),
                    None => "off".to_owned(),
                },
            );
            gateway.run().map_err(|e| format!("serving gateway: {e}"))?;
            for handle in handles {
                handle.shutdown();
            }
        }
        "gateway" => {
            if args.backends.is_empty() {
                return Err("`gateway` needs --backends host:port,host:port,...".into());
            }
            let gateway = mcdla::cluster::Gateway::bind(&mcdla::cluster::GatewayConfig {
                addr: args
                    .addr
                    .clone()
                    .unwrap_or_else(|| "127.0.0.1:7900".to_owned()),
                backends: args.backends.clone(),
                timeouts: timeouts(args),
                ..mcdla::cluster::GatewayConfig::default()
            })?;
            let local = gateway
                .local_addr()
                .map_err(|e| format!("resolving gateway address: {e}"))?;
            println!(
                "mcdla-gateway listening on {local} ({} backends)",
                args.backends.len()
            );
            gateway.run().map_err(|e| format!("serving gateway: {e}"))?;
        }
        "serve-bench" => {
            let result = mcdla_bench::service::service_bench(4, 5_000);
            let path = args.out.as_deref().unwrap_or("BENCH_service.json");
            std::fs::write(path, &result.json).map_err(|e| format!("writing {path}: {e}"))?;
            print!("{}", result.summary);
            println!(
                "cached-cell throughput {:.0} req/s ({} the 10k req/s service bar)",
                result.cached_rps,
                if result.cached_rps >= 10_000.0 {
                    "meets"
                } else {
                    "below"
                }
            );
            println!("wrote {path}");
        }
        "cluster-bench" => {
            let result = mcdla_bench::cluster_bench::cluster_bench(4, 2_000);
            let path = args.out.as_deref().unwrap_or("BENCH_cluster.json");
            std::fs::write(path, &result.json).map_err(|e| format!("writing {path}: {e}"))?;
            print!("{}", result.summary);
            println!(
                "capacity-pressure scaling {:.2}x at 4 workers ({} the 2.5x fleet bar)",
                result.pressure_scaling,
                if result.pressure_scaling >= 2.5 {
                    "meets"
                } else {
                    "below"
                }
            );
            println!("wrote {path}");
        }
        "stage-bench" => {
            // A true mega-grid: 10^6 cells on the gated knob sweep, the
            // measured batch-sweep shape as the reported lower bound.
            let result = mcdla_bench::stage_bench::stage_bench(41_667, 375);
            let path = args.out.as_deref().unwrap_or("BENCH_stages.json");
            std::fs::write(path, &result.json).map_err(|e| format!("writing {path}: {e}"))?;
            print!("{}", result.summary);
            println!(
                "staged-over-monolithic {:.2}x cells/sec on the knob mega-grid ({} the 5x bar)",
                result.speedup,
                if result.speedup >= 5.0 {
                    "meets"
                } else {
                    "below"
                }
            );
            println!("wrote {path}");
        }
        "fabric-bench" => {
            let result = mcdla_bench::fabric_bench::fabric_bench(
                256,
                &mcdla_bench::fabric_bench::PAPER_SCALES,
            );
            let path = args.out.as_deref().unwrap_or("BENCH_fabric.json");
            std::fs::write(path, &result.json).map_err(|e| format!("writing {path}: {e}"))?;
            print!("{}", result.summary);
            println!(
                "fabric-vs-analytical max rel err {:.2e} on single-backplane rings ({} the 1% bar)",
                result.max_rel_err,
                if result.max_rel_err <= 0.01 {
                    "meets"
                } else {
                    "exceeds"
                }
            );
            println!("wrote {path}");
        }
        "obs-bench" => {
            let result = mcdla_bench::obs_bench::obs_bench(4, 20_000, 5);
            let path = args.out.as_deref().unwrap_or("BENCH_obs.json");
            std::fs::write(path, &result.json).map_err(|e| format!("writing {path}: {e}"))?;
            print!("{}", result.summary);
            println!(
                "sampler overhead {:+.2}% on the pipelined cached path ({} the 1% bar)",
                result.overhead_ratio * 100.0,
                if result.meets_gate {
                    "meets"
                } else {
                    "exceeds"
                }
            );
            println!("wrote {path}");
        }
        "bench-report" => {
            let rows = mcdla_bench::collate::collect(std::path::Path::new("."));
            if args.json {
                println!(
                    "{}",
                    serde::json::to_string_pretty(&mcdla_bench::collate::report_json(&rows))
                );
            } else {
                print!("{}", mcdla_bench::collate::report_text(&rows));
            }
        }
        "store-bench" => {
            let threads = args.threads.unwrap_or(4);
            let result = mcdla_bench::store_bench::store_bench(2048, threads, 64_000, 256_000);
            let path = args.out.as_deref().unwrap_or("BENCH_store.json");
            std::fs::write(path, &result.json).map_err(|e| format!("writing {path}: {e}"))?;
            print!("{}", result.summary);
            println!(
                "slowest cached-get throughput {:.0} gets/s ({} the 100k gets/s store bar)",
                result.min_get_per_sec,
                if result.min_get_per_sec >= 100_000.0 {
                    "meets"
                } else {
                    "below"
                }
            );
            println!("wrote {path}");
        }
        "all" => {
            for text in [
                reports::table2_text(),
                reports::table3_text(),
                reports::table4_text(),
                reports::fig2_text(),
                reports::fig7_text(),
                reports::fig9_text(),
                reports::fig10_text(),
                reports::fig11_text(),
                reports::fig12_text(),
                reports::fig13_text(),
                reports::fig14_text(),
                reports::scalability_text(),
                reports::sensitivity_text(),
                reports::scale_out_text(),
                reports::ablations_text(),
                reports::energy_text(),
                reports::paper_report_text(),
            ] {
                println!("{text}");
            }
        }
        "help" | "--help" | "-h" => print!("{USAGE}"),
        other => unreachable!("subcommand `{other}` passed the SUBCOMMANDS gate"),
    }
    Ok(())
}
