//! Power-aware memory-node provisioning (§V-C): sweep the Table IV DIMM
//! options and report capacity, power overhead, and performance-per-watt
//! against the measured MC-DLA(B) speedup.
//!
//! ```text
//! cargo run --release --example power_budget
//! ```

use mcdla::core::experiment;
use mcdla::memnode::{DimmKind, MemoryNodeConfig, SystemPower, DGX_SYSTEM_TDP_WATTS};

fn main() {
    let speedup = experiment::headline_speedup();
    println!(
        "measured MC-DLA(B) speedup {speedup:.2}x | DGX-class base {DGX_SYSTEM_TDP_WATTS} W\n"
    );
    println!(
        "{:<15} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "DIMM", "node cap", "node TDP", "pool cap", "sys power", "perf/W"
    );
    for dimm in DimmKind::ALL {
        let node = MemoryNodeConfig::with_dimm(dimm);
        let power = SystemPower::mc_dla(&node, 8);
        println!(
            "{:<15} {:>7.2} TB {:>8.0} W {:>7.2} TB {:>8.0} W {:>9.2}x",
            dimm.name(),
            node.capacity_bytes() as f64 / 1e12,
            node.tdp_watts(),
            power.added_capacity_bytes as f64 / 1e12,
            power.total_watts(),
            power.perf_per_watt_gain(speedup),
        );
    }
    println!(
        "\npower-limited pick: 8 GB RDIMM (+7% system power); \
         capacity pick: 128 GB LRDIMM (10.24 TB pool, best GB/W)"
    );
}
