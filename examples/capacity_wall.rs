//! The memory "capacity wall" (§II-B, §V-E): build a video-understanding
//! model (CNN backbone + LSTM head, the §V-E motivation) with the public
//! `NetworkBuilder` API, show that it cannot be trained un-virtualized on
//! a 16 GB device, and that MC-DLA's memory-nodes make it trainable with
//! room to spare.
//!
//! ```text
//! cargo run --release --example capacity_wall
//! ```

use mcdla::dnn::{
    Application, DataType, LayerKind, NetworkBuilder, PoolKind, RnnCellKind, TensorShape,
};
use mcdla::memnode::{DimmKind, MemoryNodeConfig};
use mcdla::vmem::{peak_with_and_without_virtualization, VirtPolicy, VirtSchedule};

fn main() {
    // A §V-E style video network: a VGG-ish frame encoder feeding a
    // 2048-wide LSTM over 64 video frames.
    let mut b = NetworkBuilder::new("video-captioning", Application::LanguageModeling);
    let mut x = b.input(TensorShape::chw(3, 224, 224));
    for (stage, ch) in [(1usize, 64usize), (2, 128), (3, 256), (4, 512), (5, 512)] {
        for i in 0..2 {
            x = b
                .conv(&format!("enc{stage}_{i}"), x, ch, 3, 1, 1)
                .expect("conv");
            x = b.relu(&format!("enc{stage}_{i}/relu"), x).expect("relu");
        }
        x = b
            .pool(&format!("enc{stage}/pool"), x, PoolKind::Max, 2, 2, 0)
            .expect("pool");
    }
    let feat = b.fully_connected("embed", x, 2048).expect("embed");
    let mut h = b
        .unary("embed/drop", feat, LayerKind::Dropout)
        .expect("drop");
    let mut first = None;
    for t in 0..64 {
        h = b
            .rnn_cell(&format!("lstm_t{t}"), h, RnnCellKind::Lstm, 2048, 2048)
            .expect("cell");
        match first {
            None => first = Some(h),
            Some(c0) => b.share_weights(h, c0).expect("share"),
        }
    }
    let logits = b.fully_connected("decoder", h, 20_000).expect("decoder");
    let _ = b.unary("prob", logits, LayerKind::Softmax).expect("prob");
    let net = b.build();

    println!("{net}");
    let volta = 16u64 << 30;
    for batch in [32u64, 64, 128, 256] {
        let (virt, resident) = peak_with_and_without_virtualization(&net, batch, DataType::F32);
        let fits = |b: u64| if b <= volta { "fits" } else { "EXCEEDS" };
        println!(
            "batch {batch:>4}: un-virtualized peak {:>6.1} GB ({}) | virtualized {:>5.1} GB ({})",
            resident as f64 / 1e9,
            fits(resident),
            virt as f64 / 1e9,
            fits(virt),
        );
    }

    // How much backing store does the stress-test overlay schedule need,
    // and how much do eight 128 GB-LRDIMM memory-nodes offer?
    let sched = VirtSchedule::analyze(&net, 256, DataType::F32, VirtPolicy::paper_default());
    let node = MemoryNodeConfig::with_dimm(DimmKind::Lrdimm128);
    println!(
        "\noverlay traffic per iteration at batch 256: {:.1} GB offloaded",
        sched.offload_bytes() as f64 / 1e9
    );
    println!(
        "MC-DLA pool: 8 memory-nodes x {:.2} TB = {:.1} TB of deviceremote memory",
        node.capacity_bytes() as f64 / 1e12,
        8.0 * node.capacity_bytes() as f64 / 1e12
    );
}
