//! Quickstart: compare all six system design points on one workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mcdla::core::{experiment, SystemDesign};
use mcdla::dnn::Benchmark;
use mcdla::parallel::ParallelStrategy;

fn main() {
    let benchmark = Benchmark::VggE;
    let strategy = ParallelStrategy::DataParallel;
    println!("one training iteration of {benchmark} ({strategy}, batch 512, 8 devices)\n");

    let baseline = experiment::simulate(SystemDesign::DcDla, benchmark, strategy);
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>12} {:>9}",
        "design", "iteration", "speedup", "compute", "virt DMA", "CPU avg"
    );
    for design in SystemDesign::ALL {
        let r = experiment::simulate(design, benchmark, strategy);
        println!(
            "{:<10} {:>12} {:>9.2}x {:>12} {:>12} {:>6.1} GB/s",
            design.name(),
            r.iteration_time.to_string(),
            r.speedup_over(&baseline),
            r.compute_busy.to_string(),
            r.virt_busy.to_string(),
            r.cpu_socket_avg_gbs,
        );
    }

    println!(
        "\npaper headline — MC-DLA(B) harmonic-mean speedup across the whole \
         suite: {:.2}x (paper reports 2.8x)",
        experiment::headline_speedup()
    );
}
