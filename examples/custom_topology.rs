//! Design-space exploration with the interconnect substrate: build the
//! paper's layouts plus a custom 16-device scale-out ring (§VI's NVSwitch
//! direction), and compare collective latencies and virtualization
//! bandwidths.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use mcdla::interconnect::{
    CollectiveKind, CollectiveModel, NodeKind, Ring, SystemInterconnect, Topology,
};
use mcdla::sim::Bytes;

fn main() {
    let model = CollectiveModel::paper_fig9();
    let sync = Bytes::from_mib(8);

    println!("paper layouts (8 MB all-reduce):");
    for sys in [
        SystemInterconnect::dgx_cube_mesh(25.0),
        SystemInterconnect::hc_dla(25.0),
        SystemInterconnect::mc_dla_star_b(25.0),
        SystemInterconnect::mc_dla_ring(25.0),
    ] {
        let t = model.striped_latency(CollectiveKind::AllReduce, sync, &sys.ring_shapes());
        println!(
            "  {:<14} rings {:>8}  all-reduce {:>10}  virt {:>5.0} GB/s",
            sys.name(),
            sys.ring_shapes()
                .iter()
                .map(|s| s.hops.to_string())
                .collect::<Vec<_>>()
                .join("/"),
            t.to_string(),
            sys.virt_bandwidth_gbs(2).max(sys.virt_bandwidth_gbs(1)),
        );
    }

    // A custom §VI-style scale-out node: 16 devices and 16 memory-nodes on
    // three alternating rings, built directly on the graph API.
    let mut topo = Topology::new();
    let devices: Vec<_> = (0..16)
        .map(|i| topo.add_node(NodeKind::Device, format!("D{i}")))
        .collect();
    let mems: Vec<_> = (0..16)
        .map(|i| topo.add_node(NodeKind::Memory, format!("M{i}")))
        .collect();
    let seq: Vec<_> = (0..16).flat_map(|i| [devices[i], mems[i]]).collect();
    for _ in 0..3 {
        for w in 0..seq.len() {
            topo.add_duplex_link(seq[w], seq[(w + 1) % seq.len()], 25.0);
        }
    }
    let ring = Ring::new(seq);
    let shape = ring.shape(&topo);
    println!(
        "\ncustom 16+16 scale-out ring: {} participants, {} hops",
        shape.participants, shape.hops
    );
    for mib in [1u64, 8, 64, 256] {
        let t = model.striped_latency(CollectiveKind::AllReduce, Bytes::from_mib(mib), &[shape; 3]);
        println!("  all-reduce {mib:>4} MiB over 3 rings: {t}");
    }
    let t8 = model.latency(
        CollectiveKind::AllReduce,
        sync,
        mcdla::interconnect::RingShape::device_ring(8),
    );
    let t32 = model.latency(CollectiveKind::AllReduce, sync, shape);
    println!(
        "  16+16 ring costs {:.1}% more than the 8-device DGX ring at 8 MiB",
        (t32.as_secs_f64() / t8.as_secs_f64() - 1.0) * 100.0
    );
}
