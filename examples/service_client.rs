//! Drive `mcdla-serve` end-to-end from a raw `std::net::TcpStream`:
//! start an in-process server on an ephemeral port, then speak HTTP/1.1
//! to it by hand — no client library, just bytes on a socket — the way
//! any external caller in any language would.
//!
//! ```text
//! cargo run --release --example service_client
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use mcdla::serve::{ServeConfig, Server};

/// Writes one request and reads the full response body off the socket.
fn http(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> String {
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: example\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send request");

    // Status line + headers, then a content-length body.
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length value");
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).expect("body");
    println!("  -> {}", status.trim_end());
    String::from_utf8(buf).expect("utf-8 body")
}

fn main() {
    // An in-process server on an ephemeral loopback port; in production
    // this is `mcdla serve --addr 0.0.0.0:7878 --snapshot store.json`.
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    })
    .expect("bind server");
    let handle = server.spawn().expect("start event loop");
    let addr = handle.addr();
    println!("mcdla-serve on {addr}\n");

    // One keep-alive connection for the whole session.
    let mut stream = TcpStream::connect(addr).expect("connect");

    println!("GET /healthz");
    println!("{}\n", http(&mut stream, "GET", "/healthz", ""));

    let cell = r#"{"design":"McDlaBwAware","benchmark":"AlexNet","strategy":"DataParallel"}"#;
    println!("POST /simulate (cold: runs the simulation)");
    let body = http(&mut stream, "POST", "/simulate", cell);
    println!("{}\n", &body[..body.len().min(400)]);

    println!("POST /simulate (same cell again: served from cache)");
    let body = http(&mut stream, "POST", "/simulate", cell);
    let cached = body.contains("\"cached\": true");
    println!("  cached: {cached}\n");
    assert!(cached, "second request must be a cache hit");

    println!("POST /grid (2 designs x 1 benchmark x 2 strategies)");
    let body = http(
        &mut stream,
        "POST",
        "/grid",
        r#"{"designs":["DcDla","McDlaBwAware"],"benchmarks":["AlexNet"]}"#,
    );
    println!(
        "  {} bytes, count 4: {}\n",
        body.len(),
        body.contains("\"count\": 4")
    );

    println!("GET /stats");
    println!("{}", http(&mut stream, "GET", "/stats", ""));

    handle.shutdown();
}
