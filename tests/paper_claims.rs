//! End-to-end validation of the paper's quantitative claims (§I, §V).
//!
//! These are the headline numbers a reviewer would check first. Exact
//! values cannot match a simulator calibrated on unpublished data, so each
//! claim is asserted as a band around the paper's figure (documented in
//! EXPERIMENTS.md).

use mcdla::core::{experiment, SystemDesign};
use mcdla::dnn::Benchmark;
use mcdla::parallel::ParallelStrategy;
use mcdla::sim::stats::harmonic_mean;

#[test]
fn headline_speedup_is_about_2_8x() {
    let s = experiment::headline_speedup();
    assert!(
        (2.2..=3.4).contains(&s),
        "headline speedup {s:.2} outside the 2.8x band"
    );
}

#[test]
fn data_parallel_speedup_is_about_3_5x() {
    let s = experiment::speedup_vs_dc(SystemDesign::McDlaBwAware, ParallelStrategy::DataParallel);
    assert!(
        (2.8..=4.2).contains(&s.harmonic_mean),
        "DP speedup {:.2} outside the 3.5x band",
        s.harmonic_mean
    );
}

#[test]
fn model_parallel_speedup_is_about_2_1x() {
    let s = experiment::speedup_vs_dc(SystemDesign::McDlaBwAware, ParallelStrategy::ModelParallel);
    assert!(
        (1.7..=2.6).contains(&s.harmonic_mean),
        "MP speedup {:.2} outside the 2.1x band",
        s.harmonic_mean
    );
}

#[test]
fn data_parallel_gains_exceed_model_parallel_gains() {
    // §V-B: MC-DLA helps data-parallel training more (3.5x vs 2.1x) because
    // model-parallel time is partly synchronization-bound, which
    // memory-nodes do not accelerate.
    let dp = experiment::speedup_vs_dc(SystemDesign::McDlaBwAware, ParallelStrategy::DataParallel);
    let mp = experiment::speedup_vs_dc(SystemDesign::McDlaBwAware, ParallelStrategy::ModelParallel);
    assert!(dp.harmonic_mean > mp.harmonic_mean);
}

#[test]
fn mc_dla_b_reaches_most_of_the_oracle() {
    // §V-B: 84%-99% of the unbuildable oracle (average 95%). Our harmonic
    // mean lands near 90% with one workload (GoogLeNet DP) below the
    // paper's floor.
    let mut fr = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let mc = experiment::simulate(SystemDesign::McDlaBwAware, bm, strategy);
            let o = experiment::simulate(SystemDesign::DcDlaOracle, bm, strategy);
            fr.push(o.iteration_time.as_secs_f64() / mc.iteration_time.as_secs_f64());
        }
    }
    let mean = harmonic_mean(&fr).expect("positive fractions");
    assert!(mean > 0.85, "oracle fraction {mean:.2} too low");
    assert!(
        fr.iter().all(|f| *f > 0.6),
        "some workload far from oracle: {fr:?}"
    );
}

#[test]
fn mc_dla_s_loses_about_14_percent_to_b() {
    let mut losses = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let s = experiment::simulate(SystemDesign::McDlaStar, bm, strategy);
            let b = experiment::simulate(SystemDesign::McDlaBwAware, bm, strategy);
            losses.push(1.0 - b.iteration_time.as_secs_f64() / s.iteration_time.as_secs_f64());
        }
    }
    let avg = losses.iter().sum::<f64>() / losses.len() as f64;
    assert!(
        (0.05..=0.25).contains(&avg),
        "MC(S) avg loss {avg:.2} outside band"
    );
}

#[test]
fn mc_dla_l_achieves_most_of_b() {
    // §V-B: MC-DLA(L) achieves 96% of MC-DLA(B).
    let mut fr = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let l = experiment::simulate(SystemDesign::McDlaLocal, bm, strategy);
            let b = experiment::simulate(SystemDesign::McDlaBwAware, bm, strategy);
            fr.push(b.iteration_time.as_secs_f64() / l.iteration_time.as_secs_f64());
        }
    }
    let mean = harmonic_mean(&fr).unwrap();
    assert!(mean > 0.85 && mean <= 1.0, "MC(L)/MC(B) {mean:.2}");
}

#[test]
fn fig2_time_reduction_is_20_to_34x() {
    let cells = experiment::fig2();
    for bm in Benchmark::CNNS {
        let series: Vec<_> = cells.iter().filter(|c| c.benchmark == bm.name()).collect();
        let reduction = 1.0 / series.last().unwrap().normalized_time;
        assert!(
            (15.0..=40.0).contains(&reduction),
            "{bm}: Kepler->TPUv2 reduction {reduction:.1} outside the 20-34x band"
        );
        // Overhead grows monotonically across generations.
        let overheads: Vec<f64> = series.iter().map(|c| c.overhead).collect();
        assert!(
            overheads.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "{bm}: overhead not monotone: {overheads:?}"
        );
        assert!(
            overheads.last().unwrap() > &0.5,
            "{bm}: modern overhead too small"
        );
    }
}

#[test]
fn fig12_hc_dla_saturates_host_memory() {
    // §V-A: HC-DLA can consume ~92% of host memory bandwidth for certain
    // workloads; MC-DLA consumes none.
    let rows = experiment::fig12();
    let hc_worst = rows
        .iter()
        .filter(|r| r.design == SystemDesign::HcDla)
        .map(|r| r.avg_data_parallel_gbs.max(r.avg_model_parallel_gbs) / 300.0)
        .fold(0.0f64, f64::max);
    assert!(
        hc_worst > 0.6,
        "HC-DLA worst-case draw {hc_worst:.2} too low"
    );
    assert!(rows
        .iter()
        .filter(|r| r.design == SystemDesign::McDlaBwAware)
        .all(|r| r.max_gbs == 0.0));
}

#[test]
fn scalability_is_regained_by_mc_dla() {
    // §V-D: DC-DLA scales sublinearly with virtualization on; MC-DLA and
    // virtualization-off runs scale near-linearly.
    let rows = experiment::scalability(&[Benchmark::VggE, Benchmark::ResNet]);
    for r in rows.iter().filter(|r| r.devices == 8) {
        assert!(
            r.dc_virt_on < 0.75 * r.dc_virt_off,
            "{}: DC virt-on {:.1}x not clearly sublinear vs off {:.1}x",
            r.benchmark,
            r.dc_virt_on,
            r.dc_virt_off
        );
        assert!(
            r.mc > 6.0,
            "{}: MC scaling {:.1}x below near-linear",
            r.benchmark,
            r.mc
        );
        assert!(r.dc_virt_off > 6.0);
    }
}

#[test]
fn sensitivity_directions_match_paper() {
    let s = experiment::sensitivity();
    // PCIe gen4 narrows the gap but does not close it.
    assert!(s.gen4_gap < s.baseline);
    assert!(s.gen4_gap > 1.2);
    assert!(s.dc_gen4_improvement > 0.1);
    // Faster devices widen the gap.
    assert!(s.faster_device_gap > s.baseline);
    assert!(s.dgx2_gap > s.baseline);
    // Compression narrows the gap on CNNs.
    let cnn_baseline = {
        let mut all = Vec::new();
        for strategy in ParallelStrategy::ALL {
            let x = experiment::speedup_vs_dc_with(
                SystemDesign::McDlaBwAware,
                strategy,
                &Benchmark::CNNS,
                mcdla::core::SystemConfig::new,
            );
            all.extend(x.per_benchmark.iter().map(|(_, v)| *v));
        }
        harmonic_mean(&all).unwrap()
    };
    assert!(s.cdma_cnn_gap < cnn_baseline);
    assert!(s.cdma_cnn_gap > 1.0, "MC-DLA still wins with compression");
}

#[test]
fn perf_per_watt_is_2_1_to_2_6x() {
    let speedup = experiment::headline_speedup();
    let (lo, hi) = mcdla::memnode::paper_perf_per_watt_range(speedup);
    assert!(
        lo > 1.8 && lo < hi && hi < 3.2,
        "perf/W range ({lo:.2}, {hi:.2})"
    );
}
