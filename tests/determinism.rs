//! Bit-reproducibility: the simulator is deterministic — identical
//! configurations produce identical picosecond-level results across runs
//! and regardless of construction order.

use mcdla::core::{experiment, IterationSim, SystemConfig, SystemDesign};
use mcdla::dnn::Benchmark;
use mcdla::parallel::ParallelStrategy;

#[test]
fn repeated_runs_are_identical() {
    for design in SystemDesign::ALL {
        for strategy in ParallelStrategy::ALL {
            let a = experiment::simulate(design, Benchmark::GoogLeNet, strategy);
            let b = experiment::simulate(design, Benchmark::GoogLeNet, strategy);
            assert_eq!(a, b, "{design}/{strategy} not reproducible");
        }
    }
}

#[test]
fn network_construction_is_deterministic() {
    for bm in Benchmark::ALL {
        assert_eq!(bm.build(), bm.build(), "{bm} builds differ");
    }
}

#[test]
fn fresh_simulator_instances_agree() {
    let net = Benchmark::RnnGru.build();
    let runs: Vec<_> = (0..3)
        .map(|_| {
            IterationSim::new(
                SystemConfig::new(SystemDesign::McDlaBwAware),
                &net,
                ParallelStrategy::DataParallel,
            )
            .run()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn experiment_runners_are_reproducible() {
    assert_eq!(
        experiment::fig13(ParallelStrategy::DataParallel),
        experiment::fig13(ParallelStrategy::DataParallel)
    );
    assert_eq!(experiment::fig12(), experiment::fig12());
}
