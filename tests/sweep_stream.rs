//! Streamed (`--ndjson`) vs batch sweep equivalence: the two modes run
//! the same grid through the same memoizing store, and every streamed
//! line is byte-identical to the batch payload's cell once the batch's
//! per-run provenance metadata (`wall_ms`, `cached`) is removed.

use std::collections::HashMap;

use mcdla_bench::reports;
use serde::{json, Value};

/// A batch sweep cell with the per-run provenance metadata removed —
/// exactly the deterministic payload `--ndjson` streams.
fn strip_provenance(cell: &Value) -> Value {
    let map = cell.as_map().expect("sweep cells are objects");
    Value::Map(
        map.iter()
            .filter(|(k, _)| k != "wall_ms" && k != "cached")
            .cloned()
            .collect(),
    )
}

#[test]
fn streamed_sweep_cells_are_byte_identical_to_batch_cells() {
    let devices = [16usize, 32];
    let filter = Some("AlexNet");

    let batch =
        reports::sweep(reports::plan_sweep(&[], &devices, &[], filter, None).expect("plan"));
    let payload = json::parse(&batch.json).expect("batch payload parses");
    let cells = payload
        .get("cells")
        .and_then(|c| c.as_seq())
        .expect("cells array");
    let batch_by_digest: HashMap<String, String> = cells
        .iter()
        .map(|c| {
            (
                c.get("digest").unwrap().as_str().unwrap().to_owned(),
                json::to_string(&strip_provenance(c)),
            )
        })
        .collect();
    assert!(!batch_by_digest.is_empty());

    let mut out = Vec::new();
    let plan = reports::plan_sweep(&[], &devices, &[], filter, None).expect("plan");
    let summary = reports::sweep_ndjson(plan, &mut out).expect("streamed sweep");
    let text = String::from_utf8(out).expect("NDJSON is utf-8");
    let lines: Vec<&str> = text.lines().collect();

    // Exactly one valid JSON object per cell, every payload matching
    // its batch twin byte for byte (streams arrive in completion order,
    // so pair by digest).
    assert_eq!(lines.len(), batch_by_digest.len());
    assert_eq!(summary.cells, lines.len());
    for line in lines {
        let cell = json::parse(line).expect("each NDJSON line is one valid JSON object");
        let digest = cell.get("digest").unwrap().as_str().unwrap();
        assert_eq!(
            Some(&line.to_owned()),
            batch_by_digest.get(digest),
            "streamed payload differs from the batch cell for digest {digest}"
        );
    }
}

/// A writer that accepts `lines_before_close` newline-terminated writes
/// and then behaves like a closed pipe (`head`/`jq -e` downstream).
struct ClosingPipe {
    accepted: Vec<u8>,
    lines_before_close: usize,
}

impl std::io::Write for ClosingPipe {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let lines = self.accepted.iter().filter(|&&b| b == b'\n').count();
        if lines >= self.lines_before_close {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "downstream closed",
            ));
        }
        self.accepted.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn streamed_sweep_ends_cleanly_when_the_pipe_closes() {
    // `mcdla sweep --ndjson | head -2` must exit cleanly, not error:
    // a closed pipe is the consumer saying "enough".
    let mut out = ClosingPipe {
        accepted: Vec::new(),
        lines_before_close: 2,
    };
    let plan = reports::plan_sweep(&[], &[], &[], Some("AlexNet"), None).expect("plan");
    let summary = reports::sweep_ndjson(plan, &mut out).expect("a closed pipe is a clean end");
    assert_eq!(summary.cells, 2, "exactly the accepted lines count");
    let text = String::from_utf8(out.accepted).unwrap();
    for line in text.lines() {
        json::parse(line).expect("accepted lines are whole JSON objects");
    }
}

#[test]
fn sweep_plans_reject_invalid_axis_combinations() {
    let err = reports::plan_sweep(&[64], &[256], &[], None, None).unwrap_err();
    assert!(err.contains("cannot cover"), "{err}");
}

#[test]
fn sweep_plans_reject_filters_matching_zero_cells() {
    // A typo'd filter used to exit 0 and overwrite BENCH_scenarios.json
    // with a degenerate report (null percentiles, `cell max 0.00 ms`).
    // Planning happens before any output file is touched, and a
    // no-match filter is a hard error naming the filter.
    let err = reports::plan_sweep(&[], &[], &[], Some("NoSuchDesign"), None).unwrap_err();
    assert!(err.contains("`NoSuchDesign`"), "{err}");
    assert!(err.contains("matches none"), "{err}");
}

#[test]
fn sweep_plans_expand_the_topology_axis() {
    use mcdla::interconnect::FabricTopology;

    let base = reports::plan_sweep(&[], &[], &[], Some("AlexNet"), None).expect("plan");
    let ringed = reports::plan_sweep(&[], &[], &[FabricTopology::Ring], Some("AlexNet"), None)
        .expect("plan");
    // The flag *extends* the matrix: analytical default cells stay, and
    // one flow-routed copy joins per listed topology.
    assert_eq!(ringed.grid_cells, 2 * base.grid_cells);
    assert_eq!(ringed.scenarios.len(), 2 * base.scenarios.len());
    let ring_cells = ringed
        .scenarios
        .iter()
        .filter(|s| s.label().ends_with("/ring"))
        .count();
    assert_eq!(ring_cells, base.scenarios.len());
}

#[test]
fn bounded_sweeps_stay_within_their_cache_cap() {
    let mut out = Vec::new();
    let plan = reports::plan_sweep(&[], &[], &[], Some("AlexNet"), Some(3)).expect("plan");
    let total = plan.scenarios.len();
    let summary = reports::sweep_ndjson(plan, &mut out).expect("bounded streamed sweep");
    assert_eq!(summary.cells, total);
    // 12 distinct AlexNet cells through a 3-cell store: every line still
    // streams, and the store evicted to stay at its bound.
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count(), total);
    for line in text.lines() {
        json::parse(line).expect("valid JSON per line");
    }
}
