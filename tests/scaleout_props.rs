//! Property tests for the scale-out scenario axis: trends that must
//! hold for *any* device count now that `Scenario.devices` sweeps 4–256,
//! plus serde round-trips for scenarios with the new axes populated
//! (seeded in-repo RNG, the workspace's proptest idiom).

use mcdla::accel::DeviceGeneration;
use mcdla::core::{IterationSim, Scenario, SystemConfig, SystemDesign, BACKPLANE_DEVICES};
use mcdla::dnn::Benchmark;
use mcdla::interconnect::ScaleOutPlane;
use mcdla::parallel::ParallelStrategy;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::json;

const DEVICE_SWEEP: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

fn iteration_secs(design: SystemDesign, bm: Benchmark, devices: usize) -> f64 {
    let net = bm.build();
    IterationSim::new(
        SystemConfig::new(design).with_devices(devices),
        &net,
        ParallelStrategy::DataParallel,
    )
    .run()
    .iteration_time
    .as_secs_f64()
}

/// On the pooled fabric, adding devices never makes an iteration more
/// than marginally slower: per-device compute shrinks with the batch
/// share, and the switched plane keeps collective bandwidth flat, so
/// the only growth term is ring pipeline fill. The tolerance absorbs
/// that fill on sync-bound cells (ResNet at 256 devices); anything
/// beyond it would mean the fabric model lost its physical footing.
#[test]
fn scale_out_is_monotone_for_memory_centric_designs() {
    const TOLERANCE: f64 = 1.30;
    for design in [
        SystemDesign::McDlaStar,
        SystemDesign::McDlaLocal,
        SystemDesign::McDlaBwAware,
    ] {
        for bm in Benchmark::ALL {
            let mut prev: Option<f64> = None;
            for devices in DEVICE_SWEEP {
                let t = iteration_secs(design, bm, devices);
                if let Some(p) = prev {
                    assert!(
                        t <= p * TOLERANCE,
                        "{design}/{bm}: {devices} devices took {t:.4}s, \
                         more than {TOLERANCE}x the previous count's {p:.4}s"
                    );
                }
                prev = Some(t);
            }
        }
    }
}

/// End to end, scaling 4 -> 256 devices never *loses* ground for a
/// virtualizing design (timestep-serial RNNs flatten out — their
/// recurrence can't parallelize over the batch split — but stay within
/// a 10% band), and strictly wins on every CNN. (The oracle is exempt —
/// with zero virtualization cost, communication-bound workloads
/// genuinely regress once DC-DLA's rings leave the backplane for PCIe,
/// which is the cliff §VI's pooled plane exists to remove.)
#[test]
fn scale_out_trends_downward_end_to_end() {
    for design in SystemDesign::ALL {
        if !design.virtualizes() {
            continue;
        }
        for bm in Benchmark::ALL {
            let small = iteration_secs(design, bm, DEVICE_SWEEP[0]);
            let large = iteration_secs(design, bm, *DEVICE_SWEEP.last().unwrap());
            assert!(
                large <= small * 1.10,
                "{design}/{bm}: 256 devices ({large:.4}s) lost ground vs 4 ({small:.4}s)"
            );
            if Benchmark::CNNS.contains(&bm) {
                assert!(
                    large < small,
                    "{design}/{bm}: 256 devices ({large:.4}s) not faster than 4 ({small:.4}s)"
                );
            }
        }
    }
}

/// The host-routed designs pay a real cliff at the backplane boundary
/// on communication-bound workloads; the pooled fabric must not. This
/// pins the *shape* of the §VI argument, not just the endpoints.
#[test]
fn pooled_fabric_removes_the_backplane_cliff() {
    let bm = Benchmark::AlexNet; // tiny compute, all synchronization
    let at = |design, devices| iteration_secs(design, bm, devices);
    // Oracle (pure communication over the host path): crossing 8 -> 16
    // devices gets *slower* — the cliff exists.
    assert!(
        at(SystemDesign::DcDlaOracle, 2 * BACKPLANE_DEVICES)
            > at(SystemDesign::DcDlaOracle, BACKPLANE_DEVICES),
        "host-routed scale-out lost its PCIe cliff"
    );
    // MC-DLA(B) (pooled fabric): the same crossing keeps getting faster.
    assert!(
        at(SystemDesign::McDlaBwAware, 2 * BACKPLANE_DEVICES)
            < at(SystemDesign::McDlaBwAware, BACKPLANE_DEVICES),
        "the pooled fabric should scale through the backplane boundary"
    );
}

/// Bisection bandwidth is strictly monotone in node count (and linear
/// in links and link rate) for any plane shape.
#[test]
fn bisection_bandwidth_is_monotone_in_node_count() {
    let mut rng = StdRng::seed_from_u64(0x5ca1_ab1e);
    for _ in 0..64 {
        let links = rng.gen_range(1usize..=6);
        let bw = rng.gen_range(5.0f64..100.0);
        let mut prev = 0.0f64;
        for devices in [4usize, 8, 16, 32, 64, 128, 256] {
            let plane = ScaleOutPlane::new(devices, devices, links, bw);
            let bisection = plane.bisection_bandwidth_gbs();
            assert!(
                bisection > prev,
                "bisection not monotone: {devices} devices, {links} links, {bw} GB/s"
            );
            // And the collective share never exceeds the link rate.
            assert!(plane.collective_ring_share_gbs(links) <= bw + 1e-9);
            prev = bisection;
        }
    }
}

/// Scenarios with the scale-out axes populated survive the wire format:
/// serde round-trips preserve equality, digest, and label for random
/// (devices, generation, batch, overrides) combinations.
#[test]
fn scale_out_scenarios_round_trip_through_serde() {
    let designs = SystemDesign::ALL;
    let benchmarks = Benchmark::ALL;
    let strategies = ParallelStrategy::ALL;
    let generations = DeviceGeneration::ALL;
    let mut rng = StdRng::seed_from_u64(0xdead_beef);
    for case in 0..256 {
        let mut s = Scenario::new(
            designs[rng.gen_range(0..designs.len())],
            benchmarks[rng.gen_range(0..benchmarks.len())],
            strategies[rng.gen_range(0..strategies.len())],
        );
        // The new axis is always populated; the others join randomly.
        s = s.with_devices(DEVICE_SWEEP[rng.gen_range(0..DEVICE_SWEEP.len())]);
        if rng.gen_bool(0.7) {
            s = s.with_generation(generations[rng.gen_range(0..generations.len())]);
        }
        if rng.gen_bool(0.5) {
            s = s.with_batch(1 << rng.gen_range(8u32..14));
        }
        if rng.gen_bool(0.3) {
            s = s.with_pcie_gen4();
        }
        if rng.gen_bool(0.3) {
            s = s.with_compression(1.0 + rng.gen_f64() * 3.0);
        }
        let text = json::to_string(&s);
        let back: Scenario = json::from_str(&text).expect("round-trip parses");
        assert_eq!(s, back, "case {case}: round-trip changed the scenario");
        assert_eq!(s.digest(), back.digest(), "case {case}: digest drifted");
        assert_eq!(s.label(), back.label(), "case {case}: label drifted");
        // Valid combinations stay valid on the far side of the wire.
        assert_eq!(s.validate(), back.validate(), "case {case}");
    }
}

/// The generation knob reaches the scale-out plane: the plane is built
/// from the generation's device link specs, so it exists (and carries
/// bandwidth) for every generation at every scale-out device count.
#[test]
fn generations_parameterize_the_plane() {
    for generation in DeviceGeneration::ALL {
        let scenario = Scenario::new(
            SystemDesign::McDlaBwAware,
            Benchmark::AlexNet,
            ParallelStrategy::DataParallel,
        )
        .with_devices(32)
        .with_generation(generation);
        let cfg = scenario.config();
        let plane = cfg.scale_out_plane().expect("scale-out plane");
        assert_eq!(plane.devices().len(), 32, "{generation}");
        assert_eq!(
            plane.link_bandwidth_gbs(),
            cfg.device.link_bandwidth_gbs,
            "{generation}: plane must be built from the generation's links"
        );
        assert!(plane.bisection_bandwidth_gbs() > 0.0, "{generation}");
    }
}
