//! Concurrency and property tests for the shared [`ResultStore`] under
//! the streaming grid executor: overlapping streams dedupe to one
//! simulation per unique cell, the **global** capacity bound holds at
//! every observable point (including when capacity < shard count, and
//! during snapshot restore), and a poisoned (panicking) single-flight
//! leader still unblocks streaming waiters.

use std::sync::Arc;

use mcdla::core::{
    IterationReport, Provenance, ResultStore, Runner, Scenario, ScenarioGrid, SystemDesign,
    TimedRun,
};
use mcdla::dnn::Benchmark;
use mcdla::parallel::ParallelStrategy;
use mcdla::sim::{Bytes, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn overlap_grid() -> Vec<Scenario> {
    ScenarioGrid::paper_default()
        .designs(&[SystemDesign::DcDla, SystemDesign::McDlaBwAware])
        .benchmarks(&[Benchmark::AlexNet])
        .device_counts(&[8, 16])
        .scenarios()
}

/// A distinct key per `tag` (store-mechanics tests never simulate).
fn key(tag: u64) -> Scenario {
    Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    )
    .with_batch(512 + tag)
}

/// A cheap dummy report for store-mechanics tests.
fn dummy(tag: u64) -> IterationReport {
    IterationReport {
        design: SystemDesign::DcDla,
        benchmark: format!("dummy-{tag}"),
        strategy: ParallelStrategy::DataParallel,
        devices: 8,
        global_batch: tag.max(1),
        iteration_time: SimDuration::from_us(tag.max(1)),
        compute_busy: SimDuration::ZERO,
        sync_busy: SimDuration::ZERO,
        virt_busy: SimDuration::ZERO,
        memory_stall: SimDuration::ZERO,
        virt_bytes: Bytes::ZERO,
        sync_bytes: Bytes::ZERO,
        cpu_socket_avg_gbs: 0.0,
        cpu_socket_max_gbs: 0.0,
    }
}

#[test]
fn overlapping_streams_simulate_each_unique_cell_once() {
    let store = Arc::new(ResultStore::unbounded());
    let cells = overlap_grid();
    let unique = cells.len();
    let threads = 4;
    std::thread::scope(|scope| {
        for offset in 0..threads {
            let store = store.clone();
            let mut grid = cells.clone();
            // Every thread streams the same cells in a different order,
            // so leaders and waiters interleave across the whole grid.
            grid.rotate_left(offset * 2);
            scope.spawn(move || {
                let runner = Runner::with_store(2, store);
                let runs: Vec<TimedRun> = runner.run_grid_streaming(grid, 2).collect();
                assert_eq!(runs.len(), unique);
            });
        }
    });
    let stats = store.stats();
    assert_eq!(
        stats.misses, unique as u64,
        "{threads} overlapping streams must simulate each unique cell exactly once: {stats:?}"
    );
    assert_eq!(stats.hits, (threads * unique - unique) as u64);
    assert_eq!(stats.entries, unique as u64);
    assert_eq!(stats.in_flight, 0, "no flight survives the streams");
}

#[test]
fn lru_bound_holds_under_streaming_churn() {
    // 2 shards x 2 per-shard slots = at most 4 resident cells, churned
    // by two concurrent streams over 16 distinct cells.
    let store = Arc::new(ResultStore::with_shards(Some(4), 2));
    let cells: Vec<Scenario> = ScenarioGrid::paper_default()
        .designs(&[SystemDesign::DcDla, SystemDesign::McDlaBwAware])
        .benchmarks(&[Benchmark::AlexNet, Benchmark::RnnGemv])
        .device_counts(&[8, 16])
        .scenarios();
    assert_eq!(cells.len(), 16);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let store = store.clone();
            let grid = cells.clone();
            scope.spawn(move || {
                let runner = Runner::with_store(2, store.clone());
                for _run in runner.run_grid_streaming(grid, 1) {
                    assert!(
                        store.len() <= 4,
                        "LRU bound exceeded mid-stream: {} resident",
                        store.len()
                    );
                }
            });
        }
    });
    let stats = store.stats();
    assert!(
        stats.entries <= 4,
        "bound exceeded after the streams: {stats:?}"
    );
    assert!(
        stats.evictions > 0,
        "churn over capacity must evict: {stats:?}"
    );
}

/// The acceptance property for the global-LRU rework: a bounded store
/// can never be observed over its configured capacity. Under the old
/// per-shard quota (`per_shard_cap = capacity.div_ceil(shards).max(1)`)
/// this fails immediately — `bounded(4)` with the default 16 shards
/// retained up to 16 entries.
#[test]
fn bounded_store_is_never_observed_over_capacity() {
    let store = ResultStore::bounded(4);
    for i in 0..64 {
        let fetched = store.get_or_compute(key(i), || dummy(i));
        assert_eq!(fetched.provenance, Provenance::Computed);
        let resident = store.len();
        assert!(
            resident <= 4,
            "bounded(4) store observed holding {resident} entries after insert {i}"
        );
    }
    assert_eq!(store.len(), 4, "the bound fills exactly, not approximately");
    assert_eq!(store.evictions(), 60);
}

/// Seeded random op mix (inserts, hits, misses, restores) across
/// threads: the bound holds at every check, for capacities both above
/// and below the shard count.
#[test]
fn random_op_mix_never_violates_the_bound() {
    for (cap, shards, seed) in [(3usize, 16usize, 7u64), (7, 4, 11), (20, 8, 13)] {
        let store = Arc::new(ResultStore::with_shards(Some(cap), shards));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = store.clone();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed * 100 + t);
                    for _ in 0..500 {
                        let k = rng.gen_range(0..64u64);
                        match rng.gen_range(0..3u32) {
                            0 => store.insert(key(k), dummy(k)),
                            1 => {
                                let _ = store.get(&key(k));
                            }
                            _ => {
                                let _ = store.get_or_compute(key(k), || dummy(k));
                            }
                        }
                        let resident = store.len();
                        assert!(
                            resident <= cap,
                            "cap {cap} x {shards} shards: observed {resident} resident"
                        );
                    }
                });
            }
        });
        let stats = store.stats();
        assert!(stats.entries <= cap as u64, "{stats:?}");
        assert!(stats.evictions > 0, "64 keys through cap {cap}: {stats:?}");
    }
}

/// Overlapping streaming grids through a store whose capacity is below
/// the shard count, with a dedicated observer thread polling occupancy
/// the whole time: no observable point may exceed the bound.
#[test]
fn capacity_below_shard_count_holds_under_overlapping_streams() {
    let store = Arc::new(ResultStore::with_shards(Some(3), 8));
    let cells = overlap_grid();
    assert!(cells.len() > 3);
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        // The observer asserts the bound continuously until the streams
        // (joined by the inner scope) are done.
        {
            let store = store.clone();
            let done = done.clone();
            scope.spawn(move || {
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let resident = store.len();
                    assert!(resident <= 3, "observed {resident} > capacity 3 mid-stream");
                    std::thread::yield_now();
                }
            });
        }
        std::thread::scope(|streams| {
            for offset in 0..2 {
                let store = store.clone();
                let mut grid = cells.clone();
                grid.rotate_left(offset * 3);
                let total = cells.len();
                streams.spawn(move || {
                    let runner = Runner::with_store(2, store);
                    let runs: Vec<TimedRun> = runner.run_grid_streaming(grid, 1).collect();
                    assert_eq!(runs.len(), total);
                });
            }
        });
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let stats = store.stats();
    assert!(stats.entries <= 3, "bound exceeded: {stats:?}");
    assert!(stats.evictions > 0, "churn over capacity must evict");
}

/// Restoring a snapshot larger than the receiving store's bound must
/// evict down — oldest-first in snapshot order — not blow past it.
#[test]
fn snapshot_restore_over_capacity_evicts_oldest_first() {
    let donor = ResultStore::unbounded();
    for i in 0..12 {
        donor.insert(key(i), dummy(i));
    }
    let snapshot = donor.snapshot_json();

    // Recover the snapshot's (digest-sorted) cell order, which is the
    // restore's insertion order and therefore its recency order.
    let parsed = serde::json::parse(&snapshot).expect("snapshot parses");
    let order: Vec<Scenario> = parsed
        .get("cells")
        .and_then(|c| c.as_seq())
        .expect("cells array")
        .iter()
        .map(|cell| {
            serde::Deserialize::from_value(cell.get("scenario").expect("scenario field"))
                .expect("scenario deserializes")
        })
        .collect();
    assert_eq!(order.len(), 12);

    let small = ResultStore::with_shards(Some(5), 16);
    assert_eq!(small.restore_json(&snapshot), Ok(12));
    assert_eq!(small.len(), 5, "restore must land exactly at capacity");
    assert_eq!(small.evictions(), 7);
    assert_eq!(small.warm_loaded(), 12);
    for (i, s) in order.iter().enumerate() {
        assert_eq!(
            small.contains(s),
            i >= 7,
            "cell {i} of 12: the oldest 7 must go, the newest 5 must stay"
        );
    }
}

#[test]
fn poisoned_leader_unblocks_streaming_waiters() {
    let store = Arc::new(ResultStore::unbounded());
    let cell = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    std::thread::scope(|scope| {
        // A leader takes the cell's flight and dies mid-simulation.
        let leader = scope.spawn(|| {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                store.get_or_compute(cell, || {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    panic!("poisoned leader");
                })
            }));
            assert!(result.is_err(), "the leader's panic propagates to it");
        });
        // Wait until the doomed flight is actually open, then stream a
        // grid containing the poisoned cell: the streaming worker must
        // coalesce onto the flight, survive its failure, retake the
        // lead, and finish the stream.
        while store.stats().in_flight == 0 {
            std::thread::yield_now();
        }
        let runner = Runner::with_store(2, store.clone());
        let runs: Vec<TimedRun> = runner.run_grid_streaming(vec![cell], 2).collect();
        assert_eq!(runs.len(), 1, "the stream must not hang or drop the cell");
        assert!(!runs[0].cached, "the retrying waiter recomputed the cell");
        leader.join().unwrap();
    });
    let stats = store.stats();
    assert_eq!(stats.misses, 1, "exactly the retry simulated: {stats:?}");
    assert!(
        stats.dedup_waits >= 1,
        "the stream coalesced first: {stats:?}"
    );
    assert_eq!(
        store
            .get_or_compute(cell, || panic!("must be cached"))
            .provenance,
        Provenance::Cached
    );
}
