//! Concurrency tests for the shared [`ResultStore`] under the streaming
//! grid executor: overlapping streams dedupe to one simulation per
//! unique cell, capacity bounds hold under streaming churn, and a
//! poisoned (panicking) single-flight leader still unblocks streaming
//! waiters.

use std::sync::Arc;

use mcdla::core::{
    Provenance, ResultStore, Runner, Scenario, ScenarioGrid, SystemDesign, TimedRun,
};
use mcdla::dnn::Benchmark;
use mcdla::parallel::ParallelStrategy;

fn overlap_grid() -> Vec<Scenario> {
    ScenarioGrid::paper_default()
        .designs(&[SystemDesign::DcDla, SystemDesign::McDlaBwAware])
        .benchmarks(&[Benchmark::AlexNet])
        .device_counts(&[8, 16])
        .scenarios()
}

#[test]
fn overlapping_streams_simulate_each_unique_cell_once() {
    let store = Arc::new(ResultStore::unbounded());
    let cells = overlap_grid();
    let unique = cells.len();
    let threads = 4;
    std::thread::scope(|scope| {
        for offset in 0..threads {
            let store = store.clone();
            let mut grid = cells.clone();
            // Every thread streams the same cells in a different order,
            // so leaders and waiters interleave across the whole grid.
            grid.rotate_left(offset * 2);
            scope.spawn(move || {
                let runner = Runner::with_store(2, store);
                let runs: Vec<TimedRun> = runner.run_grid_streaming(grid, 2).collect();
                assert_eq!(runs.len(), unique);
            });
        }
    });
    let stats = store.stats();
    assert_eq!(
        stats.misses, unique as u64,
        "{threads} overlapping streams must simulate each unique cell exactly once: {stats:?}"
    );
    assert_eq!(stats.hits, (threads * unique - unique) as u64);
    assert_eq!(stats.entries, unique as u64);
    assert_eq!(stats.in_flight, 0, "no flight survives the streams");
}

#[test]
fn lru_bound_holds_under_streaming_churn() {
    // 2 shards x 2 per-shard slots = at most 4 resident cells, churned
    // by two concurrent streams over 16 distinct cells.
    let store = Arc::new(ResultStore::with_shards(Some(4), 2));
    let cells: Vec<Scenario> = ScenarioGrid::paper_default()
        .designs(&[SystemDesign::DcDla, SystemDesign::McDlaBwAware])
        .benchmarks(&[Benchmark::AlexNet, Benchmark::RnnGemv])
        .device_counts(&[8, 16])
        .scenarios();
    assert_eq!(cells.len(), 16);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let store = store.clone();
            let grid = cells.clone();
            scope.spawn(move || {
                let runner = Runner::with_store(2, store.clone());
                for _run in runner.run_grid_streaming(grid, 1) {
                    assert!(
                        store.len() <= 4,
                        "LRU bound exceeded mid-stream: {} resident",
                        store.len()
                    );
                }
            });
        }
    });
    let stats = store.stats();
    assert!(
        stats.entries <= 4,
        "bound exceeded after the streams: {stats:?}"
    );
    assert!(
        stats.evictions > 0,
        "churn over capacity must evict: {stats:?}"
    );
}

#[test]
fn poisoned_leader_unblocks_streaming_waiters() {
    let store = Arc::new(ResultStore::unbounded());
    let cell = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    std::thread::scope(|scope| {
        // A leader takes the cell's flight and dies mid-simulation.
        let leader = scope.spawn(|| {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                store.get_or_compute(cell, || {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    panic!("poisoned leader");
                })
            }));
            assert!(result.is_err(), "the leader's panic propagates to it");
        });
        // Wait until the doomed flight is actually open, then stream a
        // grid containing the poisoned cell: the streaming worker must
        // coalesce onto the flight, survive its failure, retake the
        // lead, and finish the stream.
        while store.stats().in_flight == 0 {
            std::thread::yield_now();
        }
        let runner = Runner::with_store(2, store.clone());
        let runs: Vec<TimedRun> = runner.run_grid_streaming(vec![cell], 2).collect();
        assert_eq!(runs.len(), 1, "the stream must not hang or drop the cell");
        assert!(!runs[0].cached, "the retrying waiter recomputed the cell");
        leader.join().unwrap();
    });
    let stats = store.stats();
    assert_eq!(stats.misses, 1, "exactly the retry simulated: {stats:?}");
    assert!(
        stats.dedup_waits >= 1,
        "the stream coalesced first: {stats:?}"
    );
    assert_eq!(
        store
            .get_or_compute(cell, || panic!("must be cached"))
            .provenance,
        Provenance::Cached
    );
}
