//! Golden-report harness: the paper-default 96-cell grid is pinned by a
//! committed JSON snapshot (`tests/golden/paper_default.json`) carrying
//! each cell's scenario digest and simulated numbers, plus the headline
//! harmonic-mean speedup. With the scenario space opened up to
//! thousands of scale-out cells, these snapshots are what keeps the
//! paper-default numbers from drifting silently: the ~2.84x headline
//! becomes one of many pinned values instead of the only one.
//!
//! Regenerating after an *intentional* model change:
//!
//! ```console
//! $ MCDLA_BLESS=1 cargo test --test golden_reports
//! $ git diff tests/golden/   # review every changed cell, then commit
//! ```
//!
//! On main, regeneration must produce a zero diff.

use std::path::{Path, PathBuf};

use mcdla::core::scenario::global_runner;
use mcdla::core::{experiment, ScenarioGrid};
use serde::{json, Value};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/paper_default.json")
}

/// Renders the paper-default grid into the golden snapshot value. The
/// cell order is the grid's deterministic expansion order; every field
/// is a pure function of the simulator, so two runs of the same code
/// produce byte-identical snapshots.
fn current_golden() -> Value {
    let scenarios = ScenarioGrid::paper_default().scenarios();
    let runs = global_runner().run_grid(&scenarios);
    let cells: Vec<Value> = scenarios
        .iter()
        .zip(&runs)
        .map(|(s, r)| {
            Value::Map(vec![
                ("label".into(), Value::Str(s.label())),
                ("digest".into(), Value::Str(format!("{:016x}", s.digest()))),
                (
                    "iteration_time".into(),
                    serde::Serialize::to_value(&r.iteration_time),
                ),
                ("performance".into(), Value::F64(r.performance())),
            ])
        })
        .collect();
    Value::Map(vec![
        (
            "generated_by".into(),
            Value::Str("MCDLA_BLESS=1 cargo test --test golden_reports".into()),
        ),
        ("grid".into(), Value::Str("paper_default".into())),
        (
            "headline_speedup".into(),
            Value::F64(experiment::headline_speedup()),
        ),
        ("cells".into(), Value::Seq(cells)),
    ])
}

fn bless_requested() -> bool {
    std::env::var("MCDLA_BLESS").is_ok_and(|v| v == "1")
}

#[test]
fn paper_default_grid_matches_the_golden_snapshot() {
    let path = golden_path();
    let current = format!("{}\n", json::to_string_pretty(&current_golden()));

    if bless_requested() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, &current).expect("write golden snapshot");
        eprintln!("blessed {} ({} bytes)", path.display(), current.len());
        return;
    }

    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             generate it with `MCDLA_BLESS=1 cargo test --test golden_reports`",
            path.display()
        )
    });

    // Structured diff first, so a drift names the offending cells
    // instead of dumping two 30 KB strings.
    let committed_value = json::parse(&committed).expect("golden snapshot is valid JSON");
    let current_value = json::parse(&current).expect("current snapshot serializes");
    let cells_of = |v: &Value| -> Vec<Value> {
        v.get("cells")
            .and_then(|c| c.as_seq())
            .expect("snapshot has a cells array")
            .to_vec()
    };
    let want = cells_of(&committed_value);
    let got = cells_of(&current_value);
    assert_eq!(
        want.len(),
        got.len(),
        "paper-default grid changed size: committed {} cells, current {} \
         (if intentional, re-bless with MCDLA_BLESS=1)",
        want.len(),
        got.len()
    );
    let mut drifted = Vec::new();
    for (w, g) in want.iter().zip(&got) {
        if w != g {
            drifted.push(format!(
                "  {}:\n    committed: {}\n    current:   {}",
                w.get("label").and_then(|l| l.as_str()).unwrap_or("?"),
                json::to_string(w),
                json::to_string(g),
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "{} of {} paper-default cells drifted from the golden snapshot:\n{}\n\
         if this change is intentional, regenerate with \
         `MCDLA_BLESS=1 cargo test --test golden_reports` and commit the diff",
        drifted.len(),
        want.len(),
        drifted.join("\n")
    );
    assert_eq!(
        committed_value.get("headline_speedup"),
        current_value.get("headline_speedup"),
        "headline harmonic-mean speedup drifted from the golden snapshot"
    );
    // Belt and braces: the snapshot is byte-stable end to end.
    assert_eq!(
        committed, current,
        "golden snapshot bytes differ (field order or formatting changed); \
         re-bless with MCDLA_BLESS=1 if intentional"
    );
}

#[test]
fn golden_digests_discriminate_every_cell() {
    // The digest is the join key consumers use to pair streamed cells
    // with golden entries — it must be unique across the default grid.
    let scenarios = ScenarioGrid::paper_default().scenarios();
    let mut digests: Vec<u64> = scenarios.iter().map(|s| s.digest()).collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), scenarios.len());
}

#[test]
fn golden_headline_stays_in_the_paper_band() {
    // The snapshot pins the exact value; this keeps the *meaning*
    // honest too (paper: 2.8x, our calibration: ~2.84x).
    let headline = experiment::headline_speedup();
    assert!(
        (2.7..=3.0).contains(&headline),
        "headline speedup {headline} left the paper's band"
    );
}
