//! Integration tests for the scenario subsystem: serde round-trips,
//! memoization, parallel-vs-serial determinism, and the paper-headline
//! regression pin.

use std::sync::Arc;

use mcdla::core::scenario::global_runner;
use mcdla::core::{
    experiment, DeviceModel, ResultStore, Runner, Scenario, ScenarioGrid, SystemDesign,
};
use mcdla::dnn::Benchmark;
use mcdla::parallel::ParallelStrategy;
use serde::json;

fn fancy_scenario() -> Scenario {
    Scenario::new(
        SystemDesign::McDlaBwAware,
        Benchmark::RnnGru,
        ParallelStrategy::ModelParallel,
    )
    .with_devices(4)
    .with_batch(256)
    .with_pcie_gen4()
    .with_device_model(DeviceModel::Dgx2Like)
    .with_compression(2.6)
}

#[test]
fn scenario_round_trips_through_json() {
    for s in [
        Scenario::new(
            SystemDesign::DcDla,
            Benchmark::AlexNet,
            ParallelStrategy::DataParallel,
        ),
        fancy_scenario(),
    ] {
        let text = json::to_string(&s);
        let back: Scenario = json::from_str(&text).expect("parse back");
        assert_eq!(s, back, "round-trip changed the scenario: {text}");
        // Pretty form round-trips too.
        let pretty = json::to_string_pretty(&s);
        assert_eq!(s, json::from_str::<Scenario>(&pretty).unwrap());
    }
}

#[test]
fn scenario_grid_round_trips_through_json() {
    let grid = ScenarioGrid::paper_default()
        .benchmarks(&[Benchmark::VggE, Benchmark::RnnGru])
        .batches(&[128, 512])
        .device_counts(&[2, 8]);
    let back: ScenarioGrid = json::from_str(&json::to_string(&grid)).expect("parse back");
    assert_eq!(grid, back);
    assert_eq!(grid.scenarios(), back.scenarios());
}

#[test]
fn missing_optional_fields_deserialize_as_defaults() {
    // A hand-written spec may omit the optional axes entirely — even the
    // overrides object itself (`POST /simulate` bodies usually do).
    let s: Scenario = json::from_str(
        r#"{"design": "McDlaBwAware", "benchmark": "VggE",
            "strategy": "DataParallel"}"#,
    )
    .expect("sparse scenario parses");
    assert_eq!(s.devices, None);
    assert_eq!(s.batch, None);
    assert_eq!(s.generation, None);
    assert!(!s.overrides.pcie_gen4);
    assert_eq!(s.overrides.device_model, None);
    assert_eq!(s.overrides.compression, None);
    assert_eq!(
        s,
        Scenario::new(
            SystemDesign::McDlaBwAware,
            Benchmark::VggE,
            ParallelStrategy::DataParallel
        )
    );
}

#[test]
fn wire_validation_rejects_hostile_knobs() {
    // Builder methods can't construct these, but wire payloads can say
    // anything; `validate` is the service's guard.
    let base = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    assert!(base.validate().is_ok());
    let mut s = base;
    s.devices = Some(0);
    assert!(s.validate().unwrap_err().contains("devices"));
    let mut s = base;
    s.batch = Some(0);
    assert!(s.validate().unwrap_err().contains("batch"));
    let mut s = base;
    s.overrides.compression = Some(f64::NAN);
    assert!(s.validate().unwrap_err().contains("compression"));
}

#[test]
fn cache_serves_repeat_cells_without_resimulating() {
    let runner = Runner::with_threads(2);
    let s = Scenario::new(
        SystemDesign::HcDla,
        Benchmark::GoogLeNet,
        ParallelStrategy::DataParallel,
    );
    let a = runner.run(s);
    assert_eq!(runner.cache_misses(), 1);
    assert_eq!(runner.cache_hits(), 0);
    let b = runner.run(s);
    assert_eq!(runner.cache_misses(), 1, "second run must not simulate");
    assert_eq!(runner.cache_hits(), 1);
    assert_eq!(a, b);
    // A grid containing the cell also hits the cache.
    let grid = runner.run_grid(&[s, s.with_batch(128), s]);
    assert_eq!(grid[0], a);
    assert_eq!(grid[2], a);
    assert_eq!(runner.cache_misses(), 2, "only the new batch-128 cell runs");
}

#[test]
fn parallel_grid_results_are_bit_identical_to_serial() {
    // The determinism guarantee behind `--threads N`: any thread count
    // produces exactly the same reports in exactly the same order.
    let scenarios = ScenarioGrid::paper_default()
        .benchmarks(&[Benchmark::AlexNet, Benchmark::VggE, Benchmark::RnnLstm2])
        .batches(&[256, 512])
        .scenarios();
    let serial = Runner::with_threads(1).run_grid(&scenarios);
    for threads in [2usize, 4, 8] {
        let parallel = Runner::with_threads(threads).run_grid(&scenarios);
        assert_eq!(
            serial, parallel,
            "{threads}-thread grid differs from serial"
        );
    }
}

#[test]
fn thread_counts_resolve_and_clamp() {
    // Explicit counts win and are clamped to >= 1. (The MCDLA_THREADS
    // env resolution itself is covered by mcdla-core's unit tests on the
    // pure `threads_from` helper — mutating the process environment from
    // a parallel test binary would race with sibling tests.)
    assert_eq!(Runner::with_threads(0).threads(), 1);
    assert_eq!(Runner::with_threads(5).threads(), 5);
    assert!(Runner::new().threads() >= 1);
}

#[test]
fn global_runner_memoizes_across_experiment_calls() {
    // Fig. 13 and Fig. 11 span the same 96-cell matrix: after both run,
    // the shared cache holds each cell once and the second figure's cells
    // were all hits.
    let _ = experiment::fig13(ParallelStrategy::DataParallel);
    let misses_after_fig13 = global_runner().cache_misses();
    let _ = experiment::fig11(ParallelStrategy::DataParallel);
    assert_eq!(
        global_runner().cache_misses(),
        misses_after_fig13,
        "fig11 re-simulated cells fig13 already ran"
    );
}

#[test]
fn headline_speedup_stays_near_2_8x() {
    // Regression pin for the paper's headline claim (§I: "an average
    // 2.8x training speedup"). The seed calibration lands at ~2.84x;
    // hold future PRs to a tight band around it.
    let headline = experiment::headline_speedup();
    assert!(
        (2.6..=3.1).contains(&headline),
        "headline speedup drifted to {headline:.3}x (expected ~2.8x)"
    );
}

#[test]
fn runners_share_a_store_and_bounded_stores_evict() {
    // Two runners over one bounded store: what one simulates, the other
    // hits; past the capacity, LRU eviction keeps the footprint flat and
    // the eviction counter visible (the `sweep`/`GET /stats` payloads).
    let store = Arc::new(ResultStore::with_shards(Some(2), 1));
    let a = Runner::with_store(1, store.clone());
    let b = Runner::with_store(2, store);
    let cells: Vec<Scenario> = [Benchmark::AlexNet, Benchmark::RnnGemv, Benchmark::RnnLstm1]
        .iter()
        .map(|&bm| Scenario::new(SystemDesign::DcDla, bm, ParallelStrategy::DataParallel))
        .collect();

    let first = a.run(cells[0]);
    assert_eq!(b.run(cells[0]), first, "store is shared across runners");
    assert_eq!(b.cache_hits(), 1);
    assert_eq!(b.cache_misses(), 1);

    // Two more distinct cells through a 2-cap store: something evicts.
    let _ = a.run(cells[1]);
    let _ = a.run(cells[2]);
    assert!(a.cache_len() <= 2, "cap 2 exceeded: {}", a.cache_len());
    assert!(a.cache_evictions() >= 1);
    // The evicted cell re-simulates on the next request.
    let again = a.run(cells[0]);
    assert_eq!(again, first, "re-simulated cell must be bit-identical");
}

#[test]
fn store_snapshot_warms_a_fresh_runner() {
    let hot = Runner::with_threads(1);
    let s = Scenario::new(
        SystemDesign::McDlaStar,
        Benchmark::RnnGemv,
        ParallelStrategy::DataParallel,
    );
    let report = hot.run(s);
    let snapshot = hot.store().snapshot_json();

    let warmed = Arc::new(ResultStore::unbounded());
    assert_eq!(warmed.restore_json(&snapshot), Ok(1));
    let cold = Runner::with_store(1, warmed);
    assert_eq!(cold.run(s), report, "warm-started cell must be identical");
    assert_eq!(cold.cache_misses(), 0, "warm start must not re-simulate");
    assert_eq!(cold.cache_hits(), 1);
}

#[test]
fn scenario_digest_is_stable_across_processes() {
    // The digest feeds BENCH_scenarios.json; pin one value so accidental
    // encoding changes surface in review.
    let s = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    assert_eq!(format!("{:016x}", s.digest()), "a8f7c57156f141b7");
}
