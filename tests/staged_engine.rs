//! Property tests for the staged engine: the memoized pipeline must be
//! **bit-identical** to a from-scratch monolithic compute for *any*
//! scenario (seeded in-repo RNG across every axis, the workspace's
//! proptest idiom), and the generic [`StageCache`] must honor its
//! global capacity bound under the same concurrent op mixes
//! `tests/streaming_store.rs` drives through the [`ResultStore`].

use std::sync::Arc;

use mcdla::accel::DeviceGeneration;
use mcdla::core::{DeviceModel, Scenario, StageCache, SystemDesign};
use mcdla::dnn::Benchmark;
use mcdla::parallel::ParallelStrategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One random scenario with every axis populated at random: design,
/// benchmark, strategy, device count, global batch, device generation,
/// PCIe gen4, device model, and activation compression. Knob
/// combinations always satisfy [`Scenario::validate`] (the batch pool
/// starts at the device-count ceiling).
fn random_scenario(rng: &mut StdRng) -> Scenario {
    const DEVICES: [usize; 4] = [4, 8, 16, 32];
    const BATCHES: [u64; 4] = [64, 256, 1024, 4096];
    let design = SystemDesign::ALL[rng.gen_range(0..SystemDesign::ALL.len())];
    let benchmark = Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())];
    let strategy = ParallelStrategy::ALL[rng.gen_range(0..ParallelStrategy::ALL.len())];
    let mut cell = Scenario::new(design, benchmark, strategy)
        .with_devices(DEVICES[rng.gen_range(0..DEVICES.len())])
        .with_batch(BATCHES[rng.gen_range(0..BATCHES.len())]);
    if rng.gen_bool(0.5) {
        let gens = DeviceGeneration::ALL;
        cell = cell.with_generation(gens[rng.gen_range(0..gens.len())]);
    }
    if rng.gen_bool(0.25) {
        cell = cell.with_pcie_gen4();
    }
    if rng.gen_bool(0.25) {
        cell = cell.with_device_model(if rng.gen_bool(0.5) {
            DeviceModel::TpuV2Like
        } else {
            DeviceModel::Dgx2Like
        });
    }
    if rng.gen_bool(0.5) {
        cell = cell.with_compression(1.0 + rng.gen_range(0.0..3.0));
    }
    cell
}

/// The staged pipeline's acceptance property: for random cells across
/// every axis, `Scenario::simulate` (memo tables, shared artifacts,
/// possibly warm from earlier cells) returns a report bit-identical to
/// `Scenario::simulate_monolithic` (every artifact rebuilt from
/// scratch). Each cell runs through the staged path twice — cold-ish
/// and warm — so both a miss-filled and a hit-served table are pinned.
#[test]
fn staged_pipeline_is_bit_identical_to_from_scratch_compute() {
    let mut rng = StdRng::seed_from_u64(0x5eed_57a6);
    for i in 0..96 {
        let cell = random_scenario(&mut rng);
        assert_eq!(cell.validate(), Ok(()), "generator made an invalid cell");
        let fresh = cell.simulate_monolithic();
        assert_eq!(
            cell.simulate(),
            fresh,
            "staged != monolithic on random cell {i}: {}",
            cell.label()
        );
        assert_eq!(
            cell.simulate(),
            fresh,
            "warm staged pass diverged on random cell {i}: {}",
            cell.label()
        );
    }
}

/// Seeded random op mix (inserts, gets, get-or-computes) across
/// threads, mirroring `tests/streaming_store.rs`: a bounded
/// [`StageCache`] is never observed over its configured capacity, for
/// capacities both above and below the shard count.
#[test]
fn stage_cache_bound_holds_under_random_op_mix() {
    for (cap, shards, seed) in [(3usize, 16usize, 7u64), (7, 4, 11), (20, 8, 13)] {
        let cache = Arc::new(StageCache::<u64, u64>::with_shards(Some(cap), shards));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = cache.clone();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed * 100 + t);
                    for _ in 0..500 {
                        let k = rng.gen_range(0..64u64);
                        match rng.gen_range(0..3u32) {
                            0 => cache.insert(k, k * 10),
                            1 => {
                                if let Some(v) = cache.get(&k) {
                                    assert_eq!(v, k * 10, "stage entry corrupted");
                                }
                            }
                            _ => {
                                let (v, _) = cache.get_or_compute(k, || k * 10);
                                assert_eq!(v, k * 10, "stage entry corrupted");
                            }
                        }
                        let resident = cache.len();
                        assert!(
                            resident <= cap,
                            "cap {cap} x {shards} shards: observed {resident} resident"
                        );
                    }
                });
            }
        });
        let stats = cache.stats("test");
        assert!(stats.entries <= cap as u64, "{stats:?}");
        assert!(stats.evictions > 0, "64 keys through cap {cap}: {stats:?}");
        assert_eq!(
            stats.hits + stats.misses,
            cache.hits() + cache.misses(),
            "stats snapshot and counters agree"
        );
    }
}
