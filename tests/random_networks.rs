//! Full-stack fuzzing: every randomly generated (but structurally valid)
//! network must flow through the complete pipeline — overlay analysis,
//! residency replay, worker planning, and iteration simulation on every
//! design point — without panicking, and the core invariants must hold on
//! all of them.

use mcdla::core::{IterationSim, SystemConfig, SystemDesign};
use mcdla::dnn::generator::random_network;
use mcdla::dnn::DataType;
use mcdla::parallel::{ParallelStrategy, WorkerPlan};
use mcdla::vmem::{ResidencyProfile, VirtPolicy, VirtSchedule};

const SEEDS: u64 = 40;

#[test]
fn random_networks_survive_the_whole_pipeline() {
    for seed in 0..SEEDS {
        let net = random_network(seed);
        let sched = VirtSchedule::analyze(&net, 32, DataType::F32, VirtPolicy::paper_default());
        let profile = ResidencyProfile::replay(&net, &sched);
        assert!(profile.peak_bytes >= profile.static_bytes, "seed {seed}");

        for strategy in ParallelStrategy::ALL {
            let plan = WorkerPlan::plan(&net, strategy, 8, 64, DataType::F32);
            assert!(plan.macs_scale > 0.0 && plan.macs_scale <= 1.0);
            for design in [
                SystemDesign::DcDla,
                SystemDesign::McDlaBwAware,
                SystemDesign::DcDlaOracle,
            ] {
                let r = IterationSim::new(SystemConfig::new(design).with_batch(64), &net, strategy)
                    .run();
                assert!(
                    r.iteration_time.as_ps() > 0,
                    "seed {seed} {design}/{strategy}: zero-time iteration"
                );
                assert!(
                    r.compute_busy <= r.iteration_time,
                    "seed {seed} {design}/{strategy}: compute exceeds iteration"
                );
            }
        }
    }
}

#[test]
fn virtualization_reduces_peak_on_every_random_network() {
    for seed in 0..SEEDS {
        let net = random_network(seed);
        let on = VirtSchedule::analyze(&net, 64, DataType::F32, VirtPolicy::paper_default());
        let off = VirtSchedule::analyze(&net, 64, DataType::F32, VirtPolicy::disabled());
        let p_on = ResidencyProfile::replay(&net, &on).peak_bytes;
        let p_off = ResidencyProfile::replay(&net, &off).peak_bytes;
        assert!(
            p_on <= p_off,
            "seed {seed}: virtualized peak {p_on} above resident {p_off}"
        );
    }
}

#[test]
fn oracle_bounds_every_random_network() {
    for seed in 0..SEEDS {
        let net = random_network(seed);
        let mc = IterationSim::new(
            SystemConfig::new(SystemDesign::McDlaBwAware).with_batch(64),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run();
        let oracle = IterationSim::new(
            SystemConfig::new(SystemDesign::DcDlaOracle).with_batch(64),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run();
        assert!(
            oracle.iteration_time <= mc.iteration_time,
            "seed {seed}: oracle slower than MC-DLA(B)"
        );
    }
}

#[test]
fn engine_accounting_holds_on_random_networks() {
    for seed in 0..SEEDS / 2 {
        let net = random_network(seed);
        let cfg = SystemConfig::new(SystemDesign::DcDla).with_batch(64);
        let plan = WorkerPlan::plan(
            &net,
            ParallelStrategy::DataParallel,
            cfg.devices,
            cfg.global_batch,
            cfg.dtype,
        );
        let sched = VirtSchedule::analyze(
            &net,
            plan.virt_batch(),
            cfg.dtype,
            VirtPolicy::paper_default(),
        );
        let r = IterationSim::new(cfg, &net, ParallelStrategy::DataParallel).run();
        assert_eq!(
            r.virt_bytes.as_u64(),
            sched.offload_bytes() + sched.prefetch_bytes(),
            "seed {seed}"
        );
        assert_eq!(
            r.sync_bytes.as_u64(),
            plan.total_sync_bytes(),
            "seed {seed}"
        );
    }
}
