//! Property-based tests over the iteration engine: monotonicity and
//! sanity invariants that must hold for *any* configuration, not just the
//! paper's operating point.
//!
//! The offline build environment cannot fetch `proptest`, so these sweep
//! the design/benchmark/batch product exhaustively (it is small) instead
//! of sampling it — strictly stronger coverage than the original 24
//! sampled cases.

use mcdla::core::{IterationSim, SystemConfig, SystemDesign};
use mcdla::dnn::Benchmark;
use mcdla::parallel::ParallelStrategy;

fn run(design: SystemDesign, bm: Benchmark, batch: u64) -> mcdla::core::IterationReport {
    let net = bm.build();
    IterationSim::new(
        SystemConfig::new(design).with_batch(batch),
        &net,
        ParallelStrategy::DataParallel,
    )
    .run()
}

/// Larger batches never make an iteration faster.
#[test]
fn iteration_time_monotone_in_batch() {
    for design in SystemDesign::ALL {
        for bm in Benchmark::ALL {
            let mut prev = 0.0f64;
            for batch in [64u64, 128, 256, 512] {
                let t = run(design, bm, batch).iteration_time.as_secs_f64();
                assert!(
                    t >= prev * 0.999,
                    "{design}/{bm}: batch {batch} got faster: {t} < {prev}"
                );
                prev = t;
            }
        }
    }
}

/// The oracle lower-bounds every virtualizing design.
#[test]
fn oracle_is_a_lower_bound() {
    for bm in Benchmark::ALL {
        for batch in [128u64, 256, 512] {
            let oracle = run(SystemDesign::DcDlaOracle, bm, batch).iteration_time;
            for design in SystemDesign::ALL {
                let t = run(design, bm, batch).iteration_time;
                assert!(
                    oracle <= t,
                    "{design}/{bm}@{batch}: oracle {oracle} slower than {t}"
                );
            }
        }
    }
}

/// Compression never hurts, and never changes compute time.
#[test]
fn compression_is_monotone() {
    for bm in Benchmark::ALL {
        let net = bm.build();
        let base = IterationSim::new(
            SystemConfig::new(SystemDesign::DcDla),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run();
        for ratio in [1.0f64, 1.3, 1.7, 2.2, 2.6, 3.1, 3.9] {
            let compressed = IterationSim::new(
                SystemConfig::new(SystemDesign::DcDla).with_compression(ratio),
                &net,
                ParallelStrategy::DataParallel,
            )
            .run();
            assert!(
                compressed.iteration_time <= base.iteration_time,
                "{bm}@x{ratio}: compression slowed the iteration"
            );
            assert_eq!(
                compressed.compute_busy, base.compute_busy,
                "{bm}@x{ratio}: compression changed compute time"
            );
        }
    }
}

/// Faster virtualization paths never lose: MC-DLA(B) >= MC-DLA(L) >=
/// MC-DLA(S) on every workload/batch (150 vs 75 vs 50 GB/s with the
/// same balanced-or-better rings).
#[test]
fn more_virt_bandwidth_never_hurts() {
    for bm in Benchmark::ALL {
        for batch in [128u64, 512, 1024] {
            let s = run(SystemDesign::McDlaStar, bm, batch).iteration_time;
            let l = run(SystemDesign::McDlaLocal, bm, batch).iteration_time;
            let b = run(SystemDesign::McDlaBwAware, bm, batch).iteration_time;
            assert!(b <= l, "{bm}@{batch}: BW_AWARE slower than LOCAL");
            assert!(l <= s, "{bm}@{batch}: LOCAL slower than star");
        }
    }
}
