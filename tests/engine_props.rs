//! Property-based tests over the iteration engine: monotonicity and
//! sanity invariants that must hold for *any* configuration, not just the
//! paper's operating point.

use mcdla::core::{IterationSim, SystemConfig, SystemDesign};
use mcdla::dnn::Benchmark;
use mcdla::parallel::ParallelStrategy;
use proptest::prelude::*;

fn designs() -> impl Strategy<Value = SystemDesign> {
    prop_oneof![
        Just(SystemDesign::DcDla),
        Just(SystemDesign::HcDla),
        Just(SystemDesign::McDlaStar),
        Just(SystemDesign::McDlaLocal),
        Just(SystemDesign::McDlaBwAware),
        Just(SystemDesign::DcDlaOracle),
    ]
}

fn benchmarks() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::AlexNet),
        Just(Benchmark::GoogLeNet),
        Just(Benchmark::VggE),
        Just(Benchmark::ResNet),
        Just(Benchmark::RnnGemv),
        Just(Benchmark::RnnLstm1),
        Just(Benchmark::RnnLstm2),
        Just(Benchmark::RnnGru),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Larger batches never make an iteration faster.
    #[test]
    fn iteration_time_monotone_in_batch(
        design in designs(),
        bm in benchmarks(),
    ) {
        let net = bm.build();
        let mut prev = 0.0f64;
        for batch in [64u64, 128, 256, 512] {
            let r = IterationSim::new(
                SystemConfig::new(design).with_batch(batch),
                &net,
                ParallelStrategy::DataParallel,
            )
            .run();
            let t = r.iteration_time.as_secs_f64();
            prop_assert!(t >= prev * 0.999, "{design}/{bm}: batch {batch} got faster: {t} < {prev}");
            prev = t;
        }
    }

    /// The oracle lower-bounds every virtualizing design.
    #[test]
    fn oracle_is_a_lower_bound(
        design in designs(),
        bm in benchmarks(),
        batch in prop_oneof![Just(128u64), Just(256), Just(512)],
    ) {
        let net = bm.build();
        let r = IterationSim::new(
            SystemConfig::new(design).with_batch(batch),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run();
        let o = IterationSim::new(
            SystemConfig::new(SystemDesign::DcDlaOracle).with_batch(batch),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run();
        prop_assert!(
            o.iteration_time <= r.iteration_time,
            "{design}/{bm}@{batch}: oracle {} slower than {}",
            o.iteration_time,
            r.iteration_time
        );
    }

    /// Compression never hurts, and never changes compute time.
    #[test]
    fn compression_is_monotone(
        bm in benchmarks(),
        ratio in 1.0f64..4.0,
    ) {
        let net = bm.build();
        let base = IterationSim::new(
            SystemConfig::new(SystemDesign::DcDla),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run();
        let compressed = IterationSim::new(
            SystemConfig::new(SystemDesign::DcDla).with_compression(ratio),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run();
        prop_assert!(compressed.iteration_time <= base.iteration_time);
        prop_assert_eq!(compressed.compute_busy, base.compute_busy);
    }

    /// Faster virtualization paths never lose: MC-DLA(B) >= MC-DLA(L) >=
    /// MC-DLA(S) on every workload/batch (150 vs 75 vs 50 GB/s with the
    /// same balanced-or-better rings).
    #[test]
    fn more_virt_bandwidth_never_hurts(
        bm in benchmarks(),
        batch in prop_oneof![Just(128u64), Just(512), Just(1024)],
    ) {
        let net = bm.build();
        let run = |design| {
            IterationSim::new(
                SystemConfig::new(design).with_batch(batch),
                &net,
                ParallelStrategy::DataParallel,
            )
            .run()
            .iteration_time
        };
        let s = run(SystemDesign::McDlaStar);
        let l = run(SystemDesign::McDlaLocal);
        let b = run(SystemDesign::McDlaBwAware);
        prop_assert!(b <= l, "{bm}@{batch}: BW_AWARE slower than LOCAL");
        prop_assert!(l <= s, "{bm}@{batch}: LOCAL slower than star");
    }
}
