//! Cross-crate accounting consistency: the quantities reported by the
//! iteration engine must reconcile exactly with the substrate crates that
//! produced them.

use mcdla::core::{experiment, IterationSim, SystemConfig, SystemDesign};
use mcdla::dnn::{Benchmark, DataType};
use mcdla::parallel::{ParallelStrategy, WorkerPlan};
use mcdla::vmem::{VirtPolicy, VirtSchedule};

#[test]
fn engine_virt_bytes_match_overlay_schedule() {
    // Report bytes = offload + prefetch of the schedule the vmem crate
    // derives independently.
    for bm in Benchmark::ALL {
        let net = bm.build();
        let cfg = SystemConfig::new(SystemDesign::McDlaBwAware);
        let plan = WorkerPlan::plan(
            &net,
            ParallelStrategy::DataParallel,
            cfg.devices,
            cfg.global_batch,
            cfg.dtype,
        );
        let sched = VirtSchedule::analyze(
            &net,
            plan.virt_batch(),
            cfg.dtype,
            VirtPolicy::paper_default(),
        );
        let r = IterationSim::new(cfg, &net, ParallelStrategy::DataParallel).run();
        assert_eq!(
            r.virt_bytes.as_u64(),
            sched.offload_bytes() + sched.prefetch_bytes(),
            "{bm}: engine bytes disagree with schedule"
        );
    }
}

#[test]
fn engine_sync_bytes_match_worker_plan() {
    for strategy in ParallelStrategy::ALL {
        let net = Benchmark::ResNet.build();
        let cfg = SystemConfig::new(SystemDesign::DcDla);
        let plan = WorkerPlan::plan(&net, strategy, cfg.devices, cfg.global_batch, cfg.dtype);
        let r = IterationSim::new(cfg, &net, strategy).run();
        assert_eq!(r.sync_bytes.as_u64(), plan.total_sync_bytes());
    }
}

#[test]
fn compression_scales_virt_bytes_exactly() {
    let net = Benchmark::VggE.build();
    let base = IterationSim::new(
        SystemConfig::new(SystemDesign::DcDla),
        &net,
        ParallelStrategy::DataParallel,
    )
    .run();
    let compressed = IterationSim::new(
        SystemConfig::new(SystemDesign::DcDla).with_compression(2.0),
        &net,
        ParallelStrategy::DataParallel,
    )
    .run();
    // 2x compression halves every transfer (up to per-op rounding).
    let ratio = base.virt_bytes.as_f64() / compressed.virt_bytes.as_f64();
    assert!((ratio - 2.0).abs() < 1e-3, "ratio {ratio}");
}

#[test]
fn dp_virt_traffic_shrinks_with_worker_count() {
    // Per-worker batch (and thus overlay traffic) divides by p.
    let net = Benchmark::GoogLeNet.build();
    let mk = |devices| {
        IterationSim::new(
            SystemConfig::new(SystemDesign::McDlaBwAware).with_devices(devices),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run()
        .virt_bytes
        .as_u64()
    };
    let one = mk(1);
    assert_eq!(mk(2), one / 2);
    assert_eq!(mk(4), one / 4);
    assert_eq!(mk(8), one / 8);
}

#[test]
fn breakdown_components_bound_iteration_time() {
    // Each busy-time component is a lower bound on the iteration (they all
    // fit inside it), and the iteration never exceeds their serialized sum
    // plus stalls.
    for design in SystemDesign::ALL {
        for bm in [Benchmark::AlexNet, Benchmark::RnnLstm2] {
            let r = experiment::simulate(design, bm, ParallelStrategy::DataParallel);
            let total = r.iteration_time.as_secs_f64();
            for part in r.breakdown_secs() {
                assert!(
                    part <= total * (1.0 + 1e-9),
                    "{design}/{bm}: component {part} exceeds iteration {total}"
                );
            }
            let serialized: f64 =
                r.breakdown_secs().iter().sum::<f64>() + r.memory_stall.as_secs_f64();
            assert!(
                total <= serialized * (1.0 + 1e-9) + 1e-12,
                "{design}/{bm}: iteration {total} exceeds serialized bound {serialized}"
            );
        }
    }
}

#[test]
fn oracle_time_equals_pure_compute_for_single_device() {
    // With no sync and no virtualization, the iteration is exactly the
    // accel model's compute total.
    use mcdla::accel::AccelTimingModel;
    let net = Benchmark::AlexNet.build();
    let cfg = SystemConfig::new(SystemDesign::DcDlaOracle).with_devices(1);
    let model = AccelTimingModel::new(cfg.device.clone(), cfg.dtype);
    let r = IterationSim::new(cfg, &net, ParallelStrategy::DataParallel).run();
    // Backward adds recompute time for cheap layers; reconstruct it.
    let mut expect = 0.0f64;
    for l in net.layers() {
        expect += model.forward_time(l, 512).as_secs_f64();
        expect += model.backward_time(l, 512).as_secs_f64();
        if l.is_cheap() {
            expect += model.recompute_time(l, 512).as_secs_f64();
        }
    }
    // The oracle does not virtualize, so no recompute either.
    let mut expect_no_recompute = 0.0f64;
    for l in net.layers() {
        expect_no_recompute += model.forward_time(l, 512).as_secs_f64();
        expect_no_recompute += model.backward_time(l, 512).as_secs_f64();
    }
    let got = r.iteration_time.as_secs_f64();
    assert!(
        (got - expect_no_recompute).abs() < 1e-9,
        "oracle {got} != compute sum {expect_no_recompute} (with recompute: {expect})"
    );
}

#[test]
fn footprints_justify_virtualization_at_paper_batch() {
    // §II-B: at batch 512, the CNNs exceed a 16 GiB device without
    // virtualization.
    for bm in [Benchmark::GoogLeNet, Benchmark::VggE, Benchmark::ResNet] {
        let fp = bm.build().footprint(512, DataType::F32);
        assert!(
            fp.total_unvirtualized() > 16 * (1u64 << 30),
            "{bm} unexpectedly fits"
        );
    }
}
