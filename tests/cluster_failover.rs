//! Failover semantics under real process death: workers run as child
//! `mcdla serve` processes and die by SIGKILL — no graceful shutdown, no
//! connection draining — while an in-process gateway routes across them.
//!
//! Pinned here:
//! * kill -9 the owner **mid-simulate traffic**: the gateway answers
//!   point queries via retry + next-replica failover, bit-identically;
//! * kill -9 a worker **mid-stream**: the gateway honors the
//!   close-without-terminal-chunk contract (the client sees truncation,
//!   never a silent clean end);
//! * gateway grid output is cell-for-cell identical to a single node
//!   (modulo `cached`).

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mcdla::cluster::{Gateway, GatewayConfig, Topology};
use mcdla::core::Scenario;
use mcdla::serve::client::{request_once, Connection, Timeouts};
use serde::Value;

/// A worker child process; SIGKILLed on drop so failed tests never leak
/// servers.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl WorkerProc {
    /// Spawns `mcdla serve` on an ephemeral port and waits for it to
    /// answer `/healthz`.
    fn spawn() -> WorkerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mcdla"))
            .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn mcdla serve");
        // `mcdla serve` prints `mcdla-serve listening on HOST:PORT (...)`
        // before entering the accept loop.
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("worker banner line")
            .expect("read worker banner");
        let addr = banner
            .split_whitespace()
            .find(|tok| {
                tok.contains(':')
                    && tok
                        .split(':')
                        .nth(1)
                        .is_some_and(|p| p.parse::<u16>().is_ok())
            })
            .unwrap_or_else(|| panic!("no address in banner `{banner}`"))
            .to_owned();
        let deadline = Instant::now() + Duration::from_secs(20);
        let probe_timeouts = Timeouts::all(Duration::from_millis(500));
        loop {
            if let Ok(resp) = mcdla::serve::client::request_once_with(
                &addr,
                "GET",
                "/healthz",
                None,
                probe_timeouts,
            ) {
                if resp.is_ok() {
                    break;
                }
            }
            assert!(
                Instant::now() < deadline,
                "worker at {addr} never became healthy"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        WorkerProc { child, addr }
    }

    /// SIGKILL — the process dies mid-whatever-it-was-doing.
    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL worker");
        self.child.wait().expect("reap worker");
    }
}

fn spawn_gateway(backends: Vec<String>) -> mcdla::cluster::GatewayHandle {
    Gateway::bind(&GatewayConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        backends,
        // Short deadlines keep the failover path snappy in tests; a
        // kill -9'd loopback worker answers connects with RST anyway.
        timeouts: Timeouts::all(Duration::from_secs(30)),
        probe_interval: None,
        max_idle_per_worker: 4,
        ..GatewayConfig::default()
    })
    .expect("bind gateway")
    .spawn()
    .expect("spawn gateway")
}

fn report_of(body: &str) -> String {
    let Value::Map(entries) = serde::json::parse(body).expect("cell JSON") else {
        panic!("cell is not an object")
    };
    let report = entries
        .into_iter()
        .find(|(k, _)| k == "report")
        .expect("cell has a report")
        .1;
    serde::json::to_string(&report)
}

#[test]
fn kill9_owner_mid_traffic_point_queries_fail_over() {
    let mut workers = [WorkerProc::spawn(), WorkerProc::spawn()];
    let backends: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let gateway = spawn_gateway(backends.clone());
    let addr = gateway.addr().to_string();

    let cell = Scenario::default().with_batch(640);
    let body = serde::json::to_string(&cell);
    let owner = Topology::new(backends).unwrap().owner_of(&cell);

    // Warm through the gateway: the owner computes the cell.
    let warm = request_once(&addr, "POST", "/simulate", Some(&body)).expect("warm");
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert!(warm.body.contains("\"cached\": false"));

    // SIGKILL the owner, then keep querying: every answer must arrive
    // via the surviving replica — recomputed, bit-identical report.
    workers[owner].kill9();
    let mut conn = Connection::open(&addr).expect("open gateway connection");
    for round in 0..3 {
        let resp = conn
            .request("POST", "/simulate", Some(&body))
            .expect("failover simulate");
        assert_eq!(resp.status, 200, "round {round}: {}", resp.body);
        assert_eq!(
            report_of(&warm.body),
            report_of(&resp.body),
            "round {round}"
        );
    }
    // The survivor answered from its own cache after the first recompute.
    let last = conn.request("POST", "/simulate", Some(&body)).unwrap();
    assert!(last.body.contains("\"cached\": true"));
    gateway.shutdown();
}

#[test]
fn kill9_worker_mid_stream_truncates_the_merged_stream() {
    let mut workers = [WorkerProc::spawn(), WorkerProc::spawn()];
    let backends: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let gateway = spawn_gateway(backends);
    let addr = gateway.addr().to_string();

    // A grid big and slow enough (heavier nets, a devices axis) that
    // neither worker can finish its slice before the kill lands. The
    // gateway drains worker 0's sub-stream first, so killing worker 0
    // right after the first merged lines guarantees pending cells die
    // with it.
    let grid = r#"{"benchmarks": ["VggE", "GoogLeNet", "ResNet"], "devices": [2, 4, 6, 8]}"#;
    let mut conn = Connection::open(&addr).expect("open gateway connection");
    let mut stream = conn
        .request_stream("POST", "/grid?stream=1", Some(grid))
        .expect("open merged stream");
    assert_eq!(stream.status, 200);

    let first = stream
        .next_line()
        .expect("at least one line")
        .expect("clean first line");
    assert!(first.contains("\"report\""), "not a cell line: {first}");
    workers[0].kill9();

    // Drain the rest: the stream must END IN AN ERROR (truncation), and
    // must never pretend to be a complete grid.
    let mut lines = 1usize;
    let mut truncated = false;
    while let Some(line) = stream.next_line() {
        match line {
            Ok(_) => lines += 1,
            Err(e) => {
                truncated = true;
                assert!(e.contains("truncated"), "error does not say truncated: {e}");
                break;
            }
        }
    }
    let total_cells = 6 * 3 * 2 * 4;
    assert!(
        truncated,
        "stream ended cleanly with {lines}/{total_cells} cells after a worker was SIGKILLed"
    );
    assert!(lines < total_cells, "somehow saw every cell");
    gateway.shutdown();
}

#[test]
fn kill9_then_gateway_grid_still_matches_a_single_node() {
    let mut workers = [
        WorkerProc::spawn(),
        WorkerProc::spawn(),
        WorkerProc::spawn(),
    ];
    let backends: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let gateway = spawn_gateway(backends);
    let addr = gateway.addr().to_string();

    // Take a worker out *before* the request: the buffered scatter must
    // fail its slice over and still assemble the full grid.
    workers[1].kill9();
    let body = r#"{"benchmarks": ["AlexNet"]}"#;
    let via_gateway = request_once(&addr, "POST", "/grid", Some(body)).expect("gateway grid");
    assert_eq!(via_gateway.status, 200, "{}", via_gateway.body);

    // Reference: one surviving worker, asked directly.
    let via_single =
        request_once(&workers[0].addr, "POST", "/grid", Some(body)).expect("single grid");
    assert_eq!(via_single.status, 200);

    let cells = |body: &str| -> Vec<String> {
        let Value::Map(entries) = serde::json::parse(body).unwrap() else {
            panic!("grid answer is not an object")
        };
        let Some((_, Value::Seq(cells))) = entries.into_iter().find(|(k, _)| k == "cells") else {
            panic!("no cells")
        };
        cells
            .iter()
            .map(|cell| {
                let Value::Map(entries) = cell else {
                    panic!("cell is not an object")
                };
                let kept: Vec<(String, Value)> = entries
                    .iter()
                    .filter(|(k, _)| k != "cached")
                    .cloned()
                    .collect();
                serde::json::to_string(&Value::Map(kept))
            })
            .collect()
    };
    assert_eq!(cells(&via_gateway.body), cells(&via_single.body));
    gateway.shutdown();
}
