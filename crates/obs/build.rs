//! Bakes a git-ish build id into the crate at compile time so a
//! restarted worker is distinguishable from a long-lived one: the id is
//! exposed through `mcdla_obs::build_id()`, `/healthz`, `/stats`, and
//! the `mcdla_build_info` metric. Falls back to `"unknown"` outside a
//! git checkout (e.g. a source tarball).

use std::process::Command;

fn git_build_id() -> Option<String> {
    let out = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let id = String::from_utf8(out.stdout).ok()?;
    let id = id.trim();
    if id.is_empty() {
        None
    } else {
        Some(id.to_string())
    }
}

fn main() {
    let id = git_build_id().unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=MCDLA_BUILD_ID={id}");
    // Re-stamp when HEAD moves (best effort: the .git dir sits at the
    // workspace root, two levels up from this crate).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
