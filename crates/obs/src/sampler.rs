//! The background telemetry sampler: one thread, one closure, one
//! tick per `MCDLA_SAMPLE_MS`.
//!
//! The sampler owns no metrics itself — each server wires a `FnMut`
//! collector that snapshots its counters, computes windowed deltas,
//! and records into a [`crate::History`]. Keeping the closure on the
//! server side means the obs crate stays dependency-free and the
//! sampler stays generic across tiers (worker and gateway sample
//! different series sets through the same machinery).
//!
//! Shutdown is prompt: [`Sampler::stop`] (and `Drop`) signals a
//! condvar, so tearing a server down never waits out a full sample
//! interval.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default sampler cadence, in milliseconds.
pub const DEFAULT_SAMPLE_MS: u64 = 1000;

/// Reads `MCDLA_SAMPLE_MS` for the sampler cadence: unset or
/// unparsable → [`DEFAULT_SAMPLE_MS`]; `0` → `None` (sampling
/// disabled).
pub fn sample_ms_from_env() -> Option<u64> {
    match std::env::var("MCDLA_SAMPLE_MS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => Some(DEFAULT_SAMPLE_MS),
        },
        Err(_) => Some(DEFAULT_SAMPLE_MS),
    }
}

/// The current wall clock as unix milliseconds (0 before the epoch).
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Resident set size of this process in bytes, read from
/// `/proc/self/statm` (Linux). `None` where /proc is unavailable —
/// callers should then report 0 rather than omit the series.
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    // Page size is a boot-time constant; 4 KiB everywhere we run, and
    // an RSS gauge tolerates being off by a fixed factor on exotica.
    Some(resident_pages * 4096)
}

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// A background sampling thread driving a tick closure at a fixed
/// cadence until stopped (see module docs).
pub struct Sampler {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
    interval_ms: u64,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("interval_ms", &self.interval_ms)
            .field("running", &self.thread.is_some())
            .finish()
    }
}

impl Sampler {
    /// Spawns the sampler thread. `tick` runs once immediately (so a
    /// just-bound server has a first sample) and then once per
    /// `interval_ms` until [`Sampler::stop`] or drop.
    pub fn spawn(interval_ms: u64, mut tick: impl FnMut() + Send + 'static) -> Sampler {
        let interval_ms = interval_ms.max(1);
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("mcdla-sampler".into())
            .spawn(move || {
                let interval = Duration::from_millis(interval_ms);
                loop {
                    tick();
                    let guard = thread_shared.stop.lock().expect("sampler flag poisoned");
                    let (guard, _timeout) = thread_shared
                        .wake
                        .wait_timeout_while(guard, interval, |stop| !*stop)
                        .expect("sampler flag poisoned");
                    if *guard {
                        return;
                    }
                }
            })
            .expect("spawning sampler thread");
        Sampler {
            shared,
            thread: Some(thread),
            interval_ms,
        }
    }

    /// The configured cadence, in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Signals the thread and joins it. Idempotent via `Drop`.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            *self.shared.stop.lock().expect("sampler flag poisoned") = true;
            self.shared.wake.notify_all();
            let _ = thread.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn ticks_at_least_once_and_stops_promptly() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&ticks);
        let sampler = Sampler::spawn(10, move || {
            t.fetch_add(1, Ordering::Relaxed);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(ticks.load(Ordering::Relaxed) >= 3, "sampler never ticked");
        // A long interval must not delay shutdown.
        let slow = Sampler::spawn(60_000, || {});
        let start = std::time::Instant::now();
        slow.stop();
        assert!(start.elapsed() < Duration::from_secs(5));
        sampler.stop();
    }

    #[test]
    fn rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = rss_bytes().expect("/proc/self/statm readable");
            assert!(rss > 0);
        }
    }

    #[test]
    fn env_cadence_parses_with_default_and_disable() {
        std::env::remove_var("MCDLA_SAMPLE_MS");
        assert_eq!(sample_ms_from_env(), Some(DEFAULT_SAMPLE_MS));
        std::env::set_var("MCDLA_SAMPLE_MS", "250");
        assert_eq!(sample_ms_from_env(), Some(250));
        std::env::set_var("MCDLA_SAMPLE_MS", "0");
        assert_eq!(sample_ms_from_env(), None);
        std::env::set_var("MCDLA_SAMPLE_MS", "junk");
        assert_eq!(sample_ms_from_env(), Some(DEFAULT_SAMPLE_MS));
        std::env::remove_var("MCDLA_SAMPLE_MS");
    }
}
