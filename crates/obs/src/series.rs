//! Retained time-series telemetry: fixed-capacity per-series rings.
//!
//! A [`History`] holds one ring of sample timestamps plus one parallel
//! ring of `f64` values per named series, all bounded by the same
//! capacity (`MCDLA_HISTORY_CAP`, default 600 samples — ten minutes at
//! the default 1 s cadence). The series set is fixed at construction:
//! every tick appends exactly one value per series, so the rings stay
//! aligned and a reader can zip any series against the shared
//! timestamp column. Writers (the sampler thread) and readers (the
//! `/metrics/history` handler) share one mutex; at a 1 Hz sample rate
//! contention is unmeasurable.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default number of retained samples per series.
pub const DEFAULT_HISTORY_CAP: usize = 600;

/// Reads `MCDLA_HISTORY_CAP` for the per-series retention: unset,
/// zero, or unparsable → [`DEFAULT_HISTORY_CAP`].
pub fn history_cap_from_env() -> usize {
    std::env::var("MCDLA_HISTORY_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_HISTORY_CAP)
}

/// A point-in-time copy of a [`History`]: the shared timestamp column
/// plus the selected series, aligned index-for-index.
#[derive(Debug, Clone)]
pub struct HistoryDump {
    /// Sample timestamps, unix milliseconds, oldest first.
    pub timestamps_ms: Vec<u64>,
    /// `(name, values)` per selected series; every `values` vector has
    /// the same length as `timestamps_ms`.
    pub series: Vec<(String, Vec<f64>)>,
    /// The configured retention bound (samples per series).
    pub capacity: usize,
    /// The sampler cadence that feeds this history, in milliseconds.
    pub interval_ms: u64,
}

struct Inner {
    timestamps_ms: VecDeque<u64>,
    values: Vec<VecDeque<f64>>,
}

/// Bounded, named time-series rings (see module docs). Shared between
/// the sampler thread and HTTP readers behind `&self`.
pub struct History {
    names: Vec<String>,
    capacity: usize,
    interval_ms: u64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for History {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("History")
            .field("names", &self.names.len())
            .field("capacity", &self.capacity)
            .field("interval_ms", &self.interval_ms)
            .field("len", &self.len())
            .finish()
    }
}

impl History {
    /// A history retaining `capacity` samples (clamped to at least 1)
    /// for the given fixed series set. `interval_ms` is advertised in
    /// dumps so readers can convert sample counts to wall time.
    pub fn new(names: Vec<String>, capacity: usize, interval_ms: u64) -> History {
        let capacity = capacity.max(1);
        let values = names.iter().map(|_| VecDeque::new()).collect();
        History {
            names,
            capacity,
            interval_ms,
            inner: Mutex::new(Inner {
                timestamps_ms: VecDeque::new(),
                values,
            }),
        }
    }

    /// The fixed series names, in registration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The configured retention bound (samples per series).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The advertised sampler cadence, in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("history poisoned")
            .timestamps_ms
            .len()
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one sample: a timestamp plus one value per series.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the registered series
    /// count — that is a wiring bug, not a runtime condition.
    pub fn record(&self, timestamp_ms: u64, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.names.len(),
            "history sample arity must match the registered series"
        );
        let mut inner = self.inner.lock().expect("history poisoned");
        inner.timestamps_ms.push_back(timestamp_ms);
        if inner.timestamps_ms.len() > self.capacity {
            inner.timestamps_ms.pop_front();
        }
        for (ring, &v) in inner.values.iter_mut().zip(values) {
            ring.push_back(v);
            if ring.len() > self.capacity {
                ring.pop_front();
            }
        }
    }

    /// Copies out the retained samples, oldest first. `filter` selects
    /// series by exact name (`None` = all, unknown names are ignored);
    /// `last` keeps only the newest N samples.
    pub fn dump(&self, filter: Option<&[&str]>, last: Option<usize>) -> HistoryDump {
        let inner = self.inner.lock().expect("history poisoned");
        let len = inner.timestamps_ms.len();
        let keep = last.unwrap_or(len).min(len);
        let skip = len - keep;
        let timestamps_ms: Vec<u64> = inner.timestamps_ms.iter().skip(skip).copied().collect();
        let series = self
            .names
            .iter()
            .zip(&inner.values)
            .filter(|(name, _)| filter.is_none_or(|f| f.contains(&name.as_str())))
            .map(|(name, ring)| (name.clone(), ring.iter().skip(skip).copied().collect()))
            .collect();
        HistoryDump {
            timestamps_ms,
            series,
            capacity: self.capacity,
            interval_ms: self.interval_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> History {
        History::new(vec!["a".into(), "b".into()], 4, 1000)
    }

    #[test]
    fn rings_stay_aligned_and_bounded() {
        let h = history();
        for i in 0..10u64 {
            h.record(i * 1000, &[i as f64, -(i as f64)]);
        }
        assert_eq!(h.len(), 4);
        let d = h.dump(None, None);
        assert_eq!(d.timestamps_ms, vec![6000, 7000, 8000, 9000]);
        assert_eq!(d.series.len(), 2);
        assert_eq!(d.series[0].1, vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(d.series[1].1, vec![-6.0, -7.0, -8.0, -9.0]);
        assert_eq!(d.capacity, 4);
        assert_eq!(d.interval_ms, 1000);
    }

    #[test]
    fn dump_filters_series_and_truncates_to_last() {
        let h = history();
        for i in 0..3u64 {
            h.record(i, &[i as f64, 0.0]);
        }
        let d = h.dump(Some(&["b", "nope"]), Some(2));
        assert_eq!(d.timestamps_ms, vec![1, 2]);
        assert_eq!(d.series.len(), 1);
        assert_eq!(d.series[0].0, "b");
        assert_eq!(d.series[0].1, vec![0.0, 0.0]);
        // `last` larger than retention answers everything.
        assert_eq!(h.dump(None, Some(99)).timestamps_ms.len(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_is_a_wiring_bug() {
        history().record(0, &[1.0]);
    }

    #[test]
    fn env_cap_parses_with_default() {
        // Serialized via the single-threaded test: only this test reads
        // the variable.
        std::env::remove_var("MCDLA_HISTORY_CAP");
        assert_eq!(history_cap_from_env(), DEFAULT_HISTORY_CAP);
        std::env::set_var("MCDLA_HISTORY_CAP", "42");
        assert_eq!(history_cap_from_env(), 42);
        std::env::set_var("MCDLA_HISTORY_CAP", "0");
        assert_eq!(history_cap_from_env(), DEFAULT_HISTORY_CAP);
        std::env::remove_var("MCDLA_HISTORY_CAP");
    }
}
