//! The flight recorder: a bounded, lock-striped ring buffer of the
//! last N completed request traces.
//!
//! Each server instance owns one recorder (worker and gateway keep
//! separate recorders even when co-resident in one process, so
//! `/debug/trace/<id>` answers per tier). Records are struck across
//! a fixed set of stripes by a global sequence number: concurrent
//! handler threads contend on different stripe mutexes, and each
//! stripe holds an equal share of the capacity, so the recorder as a
//! whole keeps exactly the last `capacity` traces (± nothing: each
//! stripe inserts in sequence order and evicts its smallest sequence
//! number, so the retained set is exactly the `capacity` newest
//! sequence numbers even when racing writers reach the stripe lock
//! out of sequence order).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::span::TraceRecord;

const STRIPES: usize = 8;

/// Default recorder capacity (completed traces retained).
pub const DEFAULT_TRACE_CAP: usize = 1024;

/// Reads `MCDLA_TRACE_CAP` for the recorder capacity: unset, zero, or
/// unparsable → [`DEFAULT_TRACE_CAP`].
pub fn trace_cap_from_env() -> usize {
    std::env::var("MCDLA_TRACE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_TRACE_CAP)
}

/// A bounded ring buffer of completed [`TraceRecord`]s (see module
/// docs). Shared across handler threads behind `&self`.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<VecDeque<Arc<TraceRecord>>>>,
    caps: Vec<usize>,
    seq: AtomicU64,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` traces (`capacity` is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        let stripes = STRIPES.min(capacity);
        // Distribute the capacity exactly: stripe i gets an extra slot
        // while i < capacity % stripes.
        let caps: Vec<usize> = (0..stripes)
            .map(|i| capacity / stripes + usize::from(i < capacity % stripes))
            .collect();
        FlightRecorder {
            stripes: (0..stripes).map(|_| Mutex::new(VecDeque::new())).collect(),
            caps,
            seq: AtomicU64::new(0),
            capacity,
        }
    }

    /// A recorder sized from `MCDLA_TRACE_CAP` (default 1024).
    pub fn from_env() -> FlightRecorder {
        FlightRecorder::new(trace_cap_from_env())
    }

    /// Admits a completed trace, assigning its recorder sequence
    /// number, and returns the shared record.
    pub fn record(&self, mut rec: TraceRecord) -> Arc<TraceRecord> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        rec.seq = seq;
        let rec = Arc::new(rec);
        let stripe = (seq as usize) % self.stripes.len();
        let mut ring = self.stripes[stripe]
            .lock()
            .expect("recorder stripe poisoned");
        // Sequence numbers are assigned before the stripe lock, so two
        // writers can reach the lock out of order. Insert in sequence
        // order (almost always a plain push_back) and evict from the
        // front: the stripe then always drops its *oldest* trace, and
        // the recorder as a whole retains exactly the newest
        // `capacity` sequence numbers.
        let at = ring.partition_point(|r| r.seq < seq);
        ring.insert(at, Arc::clone(&rec));
        while ring.len() > self.caps[stripe] {
            ring.pop_front();
        }
        rec
    }

    /// Finds the most recent trace with the given request id.
    pub fn lookup(&self, id: &str) -> Option<Arc<TraceRecord>> {
        self.stripes
            .iter()
            .filter_map(|s| {
                s.lock()
                    .expect("recorder stripe poisoned")
                    .iter()
                    .rev()
                    .find(|r| r.id == id)
                    .cloned()
            })
            .max_by_key(|r| r.seq)
    }

    /// Every retained trace, newest first.
    pub fn recent(&self) -> Vec<Arc<TraceRecord>> {
        let mut all: Vec<Arc<TraceRecord>> = self
            .stripes
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("recorder stripe poisoned")
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|t| std::cmp::Reverse(t.seq));
        all
    }

    /// The configured retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("recorder stripe poisoned").len())
            .sum()
    }

    /// Whether the recorder holds no traces yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, endpoint: &str, total_us: u64) -> TraceRecord {
        TraceRecord {
            id: id.to_string(),
            endpoint: endpoint.to_string(),
            status: 200,
            started_unix_ms: 0,
            total_us,
            spans: Vec::new(),
            seq: 0,
        }
    }

    #[test]
    fn holds_exactly_the_last_capacity_traces() {
        let r = FlightRecorder::new(16);
        for i in 0..100 {
            r.record(rec(&format!("id-{i}"), "simulate", i));
        }
        assert_eq!(r.len(), 16);
        let recent = r.recent();
        assert_eq!(recent.len(), 16);
        // Newest first, and exactly the last 16 sequence numbers.
        let seqs: Vec<u64> = recent.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (84..100).rev().collect::<Vec<u64>>());
    }

    #[test]
    fn lookup_answers_the_latest_record_for_an_id() {
        let r = FlightRecorder::new(64);
        r.record(rec("dup", "simulate", 10));
        r.record(rec("other", "grid", 20));
        r.record(rec("dup", "grid", 30));
        let hit = r.lookup("dup").expect("dup is retained");
        assert_eq!(hit.endpoint, "grid");
        assert_eq!(hit.total_us, 30);
        assert!(r.lookup("missing").is_none());
    }

    #[test]
    fn tiny_capacities_survive() {
        let r = FlightRecorder::new(1);
        r.record(rec("a", "x", 1));
        r.record(rec("b", "x", 2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.recent()[0].id, "b");
        assert_eq!(FlightRecorder::new(0).capacity(), 1);
    }

    #[test]
    fn concurrent_recording_keeps_the_bound() {
        let r = std::sync::Arc::new(FlightRecorder::new(128));
        std::thread::scope(|s| {
            for t in 0..8 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..200 {
                        r.record(rec(&format!("t{t}-{i}"), "simulate", i));
                    }
                });
            }
        });
        assert_eq!(r.len(), 128);
    }

    /// The observability contract under contention: with writers racing
    /// at capacity, eviction must keep exactly the newest `capacity`
    /// sequence numbers — a dashboard reading `recent()` after a burst
    /// sees the burst's tail, never a random survivor set.
    #[test]
    fn concurrent_eviction_keeps_exactly_the_newest_n() {
        const CAP: usize = 64;
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        let r = std::sync::Arc::new(FlightRecorder::new(CAP));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        r.record(rec(&format!("t{t}-{i}"), "simulate", i));
                    }
                });
            }
        });
        let total = THREADS * PER_THREAD;
        let mut seqs: Vec<u64> = r.recent().iter().map(|t| t.seq).collect();
        // `recent()` is already newest first and strictly ordered…
        let mut sorted = seqs.clone();
        sorted.sort_by_key(|&s| std::cmp::Reverse(s));
        assert_eq!(seqs, sorted, "recent() must be newest-first");
        // …and holds exactly the top `CAP` sequence numbers.
        seqs.sort_unstable();
        let expect: Vec<u64> = (total - CAP as u64..total).collect();
        assert_eq!(seqs, expect, "eviction must keep the newest {CAP}");
    }

    /// Records are admitted whole (one Arc swap under the stripe lock):
    /// a reader scanning during a write burst must never observe a
    /// half-written record. Encode a checksum across fields and verify
    /// every observed record while writers run.
    #[test]
    fn readers_never_observe_torn_records() {
        let r = std::sync::Arc::new(FlightRecorder::new(32));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let total_us = t * 10_000 + i;
                        // id mirrors total_us: a torn record breaks the pairing.
                        r.record(rec(&format!("us-{total_us}"), "simulate", total_us));
                    }
                });
            }
            for _ in 0..2 {
                let r = std::sync::Arc::clone(&r);
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        for t in r.recent() {
                            assert_eq!(
                                t.id,
                                format!("us-{}", t.total_us),
                                "record fields must be mutually consistent"
                            );
                            assert_eq!(t.endpoint, "simulate");
                        }
                    }
                });
            }
            // Writers finish first (scope ordering is manual here).
            std::thread::sleep(std::time::Duration::from_millis(50));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(r.len(), 32);
    }
}
