//! # `mcdla-obs` — hand-rolled observability substrate
//!
//! Zero-dependency tracing and latency instrumentation for the mcdla
//! stack, threaded through every tier (engine stages, the serve
//! worker, the cluster gateway):
//!
//! * [`Span`] / [`TraceScope`] — RAII timed sections with a
//!   thread-local span stack; a request handler opens a scope, the
//!   code under it enters spans, and the finished [`TraceRecord`]
//!   carries the whole parent/child tree.
//! * [`FlightRecorder`] — a bounded, lock-striped ring buffer of the
//!   last N completed traces per server (default 1024, tunable via
//!   `MCDLA_TRACE_CAP`), behind `GET /debug/trace/<id>` and
//!   `GET /debug/requests`.
//! * [`Histogram`] — fixed 1-2-5 log-bucket latency histograms with
//!   atomic buckets, rendered as Prometheus `_bucket`/`_sum`/`_count`
//!   families and backing the bench percentiles.
//! * [`request_id`] — `X-Mcdla-Request-Id` generation at the edge.
//! * [`History`] / [`Sampler`] — retained time-series telemetry: a
//!   background thread (`MCDLA_SAMPLE_MS`, default 1 s) records
//!   counter deltas and windowed quantiles into fixed-capacity
//!   per-series rings (`MCDLA_HISTORY_CAP`, default 600 samples),
//!   behind `GET /metrics/history` and `GET /cluster/history`.
//! * [`log`] — leveled, rate-limited structured logging (`MCDLA_LOG`):
//!   one JSON object per line on stderr, including the per-request
//!   *wide events* emitted by the serve and gateway tiers.
//!
//! Span recording is disabled by default ([`set_enabled`]) so batch
//! paths pay one atomic load per would-be span; servers enable it at
//! bind time. Direct [`Histogram`] handles (the bench harness) always
//! record.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hist;
pub mod log;
mod recorder;
mod sampler;
mod series;
mod span;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

pub use hist::{Histogram, HistogramSnapshot, BUCKETS, BUCKET_BOUNDS};
pub use recorder::{trace_cap_from_env, FlightRecorder, DEFAULT_TRACE_CAP};
pub use sampler::{rss_bytes, sample_ms_from_env, unix_ms, Sampler, DEFAULT_SAMPLE_MS};
pub use series::{history_cap_from_env, History, HistoryDump, DEFAULT_HISTORY_CAP};
pub use span::{enabled, set_enabled, Span, SpanRecord, TraceRecord, TraceScope};

/// The crate (and workspace) version baked in at compile time.
pub fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// A git-ish build id (`git rev-parse --short=12 HEAD` at compile
/// time; `"unknown"` outside a checkout). See `build.rs`.
pub fn build_id() -> &'static str {
    env!("MCDLA_BUILD_ID")
}

/// splitmix64: a tiny, well-distributed 64-bit mixer — good enough to
/// make request ids unguessably distinct across processes and time.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = std::process::id() as u64;
        // The address of a static adds per-ASLR-image entropy.
        let aslr = &SEED as *const _ as u64;
        splitmix64(nanos ^ (pid << 32) ^ aslr)
    })
}

/// Generates a fresh request id: 16 lowercase hex characters, unique
/// per process (atomic counter) and distinct across processes and
/// restarts (time/pid-seeded mix).
pub fn request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}", splitmix64(process_seed() ^ n))
}

/// Whether `s` is acceptable as a propagated request id: 1–64
/// characters from `[A-Za-z0-9._-]`. Anything else (huge values,
/// whitespace, JSON-breaking bytes) is discarded at the edge and
/// replaced by a fresh [`request_id`].
pub fn valid_request_id(s: &str) -> bool {
    (1..=64).contains(&s.len())
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_distinct_well_formed_hex() {
        let a = request_id();
        let b = request_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|c| c.is_ascii_hexdigit()));
            assert!(valid_request_id(id));
        }
    }

    #[test]
    fn id_validation_rejects_hostile_values() {
        assert!(valid_request_id("abc-DEF_123.z"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"x".repeat(65)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("quote\"break"));
        assert!(!valid_request_id("new\nline"));
    }

    #[test]
    fn build_info_is_present() {
        assert!(!build_version().is_empty());
        assert!(!build_id().is_empty());
    }
}
