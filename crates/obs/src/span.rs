//! RAII spans and per-request traces.
//!
//! A request handler opens a [`TraceScope`]; any code it calls (down
//! through the engine's stage pipeline) wraps timed sections in
//! [`Span::enter`] guards. Spans record into a thread-local span stack
//! — parent/child nesting falls out of guard scoping — and
//! [`TraceScope::finish`] assembles the completed [`TraceRecord`],
//! ready for the flight recorder.
//!
//! Tracing is **off by default** so batch paths (sweeps, the mega-grid
//! stage bench) pay only one relaxed atomic load per would-be span.
//! Servers flip it on at bind time with [`set_enabled`]; a `Span`
//! created while disabled is a no-op (no `Instant::now`, no
//! allocation).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::hist::Histogram;

/// Global observation switch. Relaxed is enough: the flag is a
/// performance gate, not a synchronization point.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span recording and histogram observation from [`Span`] guards
/// on or off process-wide. Servers enable it at bind; batch tools
/// leave it off and skip the instrumentation entirely.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is enabled (see [`set_enabled`]).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One completed span inside a trace: a named timed section with a
/// parent index into the same trace's span list (`None` for children
/// of the request root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Section name, e.g. `"stage.layer_timing"`.
    pub name: String,
    /// Index of the enclosing span in [`TraceRecord::spans`], or
    /// `None` when the span sits directly under the request root.
    pub parent: Option<usize>,
    /// Microseconds from the start of the trace to span entry.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// One completed request trace: identity, outcome, and the span tree
/// (spans in entry order; parents always precede children).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The request id (`X-Mcdla-Request-Id`).
    pub id: String,
    /// The endpoint label, e.g. `"simulate"`.
    pub endpoint: String,
    /// HTTP status of the response.
    pub status: u16,
    /// Wall-clock trace start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Total request duration in microseconds.
    pub total_us: u64,
    /// The span tree, in entry order.
    pub spans: Vec<SpanRecord>,
    /// Recorder sequence number, assigned by
    /// [`FlightRecorder::record`](crate::FlightRecorder::record)
    /// (0 until recorded).
    pub seq: u64,
}

struct ActiveTrace {
    started: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// The per-request tracing scope. Create one per request with
/// [`TraceScope::begin`], close it with [`TraceScope::finish`]; while
/// it is open, every [`Span`] entered on the same thread lands in its
/// span tree. Dropping an unfinished scope (panic paths) discards the
/// partial trace.
#[derive(Debug)]
pub struct TraceScope {
    started: Instant,
    started_unix_ms: u64,
    /// Whether this scope installed the thread-local trace (false when
    /// tracing is disabled or a scope was already open on the thread).
    activated: bool,
    finished: bool,
}

impl TraceScope {
    /// Opens a trace on the current thread. When tracing is disabled,
    /// or another scope is already open on this thread, the returned
    /// scope still measures the total duration but collects no spans.
    pub fn begin() -> TraceScope {
        let activated = enabled()
            && ACTIVE.with(|a| {
                let mut slot = a.borrow_mut();
                if slot.is_some() {
                    return false;
                }
                *slot = Some(ActiveTrace {
                    started: Instant::now(),
                    spans: Vec::new(),
                    stack: Vec::new(),
                });
                true
            });
        TraceScope {
            started: Instant::now(),
            started_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
                .unwrap_or(0),
            activated,
            finished: false,
        }
    }

    /// Closes the trace and assembles the record. Spans still open at
    /// finish (early returns, panics caught mid-span) are closed at
    /// the trace end.
    pub fn finish(mut self, id: String, endpoint: &str, status: u16) -> TraceRecord {
        self.finished = true;
        let total_us = us(self.started.elapsed());
        let spans = if self.activated {
            ACTIVE
                .with(|a| a.borrow_mut().take())
                .map_or_else(Vec::new, |mut t| {
                    for &idx in &t.stack {
                        if t.spans[idx].dur_us == 0 {
                            t.spans[idx].dur_us = total_us.saturating_sub(t.spans[idx].start_us);
                        }
                    }
                    t.spans
                })
        } else {
            Vec::new()
        };
        TraceRecord {
            id,
            endpoint: endpoint.to_string(),
            status,
            started_unix_ms: self.started_unix_ms,
            total_us,
            spans,
            seq: 0,
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.activated && !self.finished {
            ACTIVE.with(|a| a.borrow_mut().take());
        }
    }
}

/// An RAII timed section. While a [`TraceScope`] is open on the
/// thread, entering a span pushes a node under the innermost open span
/// and dropping the guard closes it; with a histogram handle attached
/// ([`Span::enter_timed`]), the duration is also observed there. When
/// tracing is disabled the guard is free.
#[derive(Debug)]
#[must_use = "a span times the scope it lives in; dropping it immediately records nothing"]
pub struct Span {
    start: Option<Instant>,
    idx: Option<usize>,
    hist: Option<Arc<Histogram>>,
}

impl Span {
    /// Enters a named span (trace-only, no histogram).
    pub fn enter(name: &str) -> Span {
        Span::record(name, None)
    }

    /// Enters a named span whose duration is also observed into
    /// `hist` on drop.
    pub fn enter_timed(name: &str, hist: &Arc<Histogram>) -> Span {
        Span::record(name, Some(hist))
    }

    fn record(name: &str, hist: Option<&Arc<Histogram>>) -> Span {
        if !enabled() {
            return Span {
                start: None,
                idx: None,
                hist: None,
            };
        }
        let idx = ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let trace = slot.as_mut()?;
            let idx = trace.spans.len();
            trace.spans.push(SpanRecord {
                name: name.to_string(),
                parent: trace.stack.last().copied(),
                start_us: us(trace.started.elapsed()),
                dur_us: 0,
            });
            trace.stack.push(idx);
            Some(idx)
        });
        Span {
            start: Some(Instant::now()),
            idx,
            hist: hist.cloned(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        if let Some(hist) = &self.hist {
            hist.observe_duration(elapsed);
        }
        if let Some(idx) = self.idx {
            ACTIVE.with(|a| {
                let mut slot = a.borrow_mut();
                if let Some(trace) = slot.as_mut() {
                    if let Some(span) = trace.spans.get_mut(idx) {
                        span.dur_us = us(elapsed).max(1);
                    }
                    // Guards drop LIFO; tolerate a mismatched stack
                    // (a leaked guard) by popping through it.
                    while let Some(top) = trace.stack.pop() {
                        if top == idx {
                            break;
                        }
                    }
                }
            });
        }
    }
}

fn us(d: std::time::Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_reconcile() {
        set_enabled(true);
        let scope = TraceScope::begin();
        {
            let _outer = Span::enter("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = Span::enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let _sibling = Span::enter("sibling");
        drop(_sibling);
        let rec = scope.finish("id-1".into(), "simulate", 200);
        assert_eq!(rec.id, "id-1");
        assert_eq!(rec.endpoint, "simulate");
        assert_eq!(rec.status, 200);
        assert_eq!(rec.spans.len(), 3);
        let outer = &rec.spans[0];
        let inner = &rec.spans[1];
        let sibling = &rec.spans[2];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(0), "inner nests under outer");
        assert_eq!(sibling.parent, None);
        assert!(inner.dur_us >= 1000, "inner slept 2ms: {}", inner.dur_us);
        assert!(outer.dur_us >= inner.dur_us);
        assert!(rec.total_us >= outer.dur_us);
        assert!(inner.start_us >= outer.start_us);
    }

    #[test]
    fn nested_scopes_do_not_clobber_the_outer_trace() {
        set_enabled(true);
        let outer = TraceScope::begin();
        let _span = Span::enter("outer-span");
        let inner = TraceScope::begin();
        let rec = inner.finish("inner".into(), "x", 200);
        assert!(rec.spans.is_empty(), "inert scope collects no spans");
        drop(_span);
        let rec = outer.finish("outer".into(), "y", 200);
        assert_eq!(rec.spans.len(), 1, "outer trace survived the inner scope");
    }

    #[test]
    fn unfinished_scope_clears_the_thread_slot() {
        set_enabled(true);
        {
            let _scope = TraceScope::begin();
            let _span = Span::enter("left-open");
            // Dropped unfinished (the panic path).
        }
        let scope = TraceScope::begin();
        let rec = scope.finish("clean".into(), "z", 200);
        assert!(
            rec.spans.is_empty(),
            "no spans leaked from the dropped scope"
        );
    }

    #[test]
    fn spans_without_a_scope_only_feed_histograms() {
        set_enabled(true);
        let hist = Arc::new(Histogram::new());
        {
            let _s = Span::enter_timed("free-standing", &hist);
        }
        assert_eq!(hist.snapshot().count(), 1);
    }
}
