//! Leveled, rate-limited structured logging: one JSON object per line
//! on stderr.
//!
//! `MCDLA_LOG` selects the level — `error|warn|info|debug|off`, default
//! `info` — optionally with per-target overrides in env_logger style:
//! `MCDLA_LOG=warn,serve=debug` keeps the fleet quiet but turns on the
//! worker's per-request wide events. Targets are short static strings
//! (`"serve"`, `"gateway"`, `"cluster"`) matched exactly.
//!
//! Every line is a flat JSON object: `ts_ms`, `level`, `target`, `msg`,
//! then the caller's fields in order. Lines are emitted with a single
//! `eprintln!`, so concurrent writers interleave only at line
//! granularity.
//!
//! A global token window caps emission at `MCDLA_LOG_LIMIT` lines per
//! second (default 500, `0` = unlimited). Overflow is dropped, counted,
//! and confessed by a `log_dropped` warn line when the next window
//! opens — a log flood degrades to a rate, never to unbounded stderr.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error,
    /// Degraded but self-healing conditions.
    Warn,
    /// Operator-relevant lifecycle events; the default.
    Info,
    /// Per-request wide events and other high-volume detail.
    Debug,
}

impl Level {
    fn rank(self) -> u8 {
        match self {
            Level::Error => 1,
            Level::Warn => 2,
            Level::Info => 3,
            Level::Debug => 4,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Default emission cap, lines per second.
pub const DEFAULT_LOG_LIMIT: u64 = 500;

/// A typed field value for structured lines. Built via `From`, so call
/// sites read `("cells", loaded.into())`.
#[derive(Debug, Clone)]
pub enum LogValue {
    /// A string field (JSON-escaped on emission).
    Str(String),
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A float field (non-finite values emit as `null`).
    F64(f64),
    /// A boolean field.
    Bool(bool),
}

impl From<&str> for LogValue {
    fn from(v: &str) -> LogValue {
        LogValue::Str(v.to_string())
    }
}
impl From<String> for LogValue {
    fn from(v: String) -> LogValue {
        LogValue::Str(v)
    }
}
impl From<u64> for LogValue {
    fn from(v: u64) -> LogValue {
        LogValue::U64(v)
    }
}
impl From<usize> for LogValue {
    fn from(v: usize) -> LogValue {
        LogValue::U64(v as u64)
    }
}
impl From<u32> for LogValue {
    fn from(v: u32) -> LogValue {
        LogValue::U64(u64::from(v))
    }
}
impl From<u16> for LogValue {
    fn from(v: u16) -> LogValue {
        LogValue::U64(u64::from(v))
    }
}
impl From<i64> for LogValue {
    fn from(v: i64) -> LogValue {
        LogValue::I64(v)
    }
}
impl From<f64> for LogValue {
    fn from(v: f64) -> LogValue {
        LogValue::F64(v)
    }
}
impl From<bool> for LogValue {
    fn from(v: bool) -> LogValue {
        LogValue::Bool(v)
    }
}

/// Parsed `MCDLA_LOG` configuration: a default rank plus per-target
/// overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogConfig {
    default_rank: u8,
    overrides: Vec<(String, u8)>,
}

fn parse_rank(s: &str) -> Option<u8> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => Some(0),
        "error" => Some(1),
        "warn" | "warning" => Some(2),
        "info" => Some(3),
        "debug" | "trace" => Some(4),
        _ => None,
    }
}

impl LogConfig {
    /// Parses a spec like `info` or `warn,serve=debug`. Unknown levels
    /// fall back to `info`; malformed clauses are ignored.
    pub fn parse(spec: &str) -> LogConfig {
        let mut default_rank = 3;
        let mut overrides = Vec::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            match clause.split_once('=') {
                None => {
                    if let Some(rank) = parse_rank(clause) {
                        default_rank = rank;
                    }
                }
                Some((target, level)) => {
                    if let Some(rank) = parse_rank(level) {
                        overrides.push((target.trim().to_string(), rank));
                    }
                }
            }
        }
        LogConfig {
            default_rank,
            overrides,
        }
    }

    /// Whether `level` passes the filter for `target`.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let rank = self
            .overrides
            .iter()
            .find(|(t, _)| t == target)
            .map(|&(_, r)| r)
            .unwrap_or(self.default_rank);
        level.rank() <= rank
    }
}

fn config() -> &'static LogConfig {
    static CONFIG: OnceLock<LogConfig> = OnceLock::new();
    CONFIG.get_or_init(|| {
        LogConfig::parse(&std::env::var("MCDLA_LOG").unwrap_or_else(|_| "info".to_string()))
    })
}

fn limit() -> u64 {
    static LIMIT: OnceLock<u64> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        std::env::var("MCDLA_LOG_LIMIT")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_LOG_LIMIT)
    })
}

/// Whether a line at `level` for `target` would be emitted (cheap; use
/// to skip field construction on hot paths).
pub fn log_enabled(level: Level, target: &str) -> bool {
    config().enabled(level, target)
}

/// Appends `s` to `out` as a JSON string literal.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one structured line (without emitting it). Public so tests
/// and the wide-event path can pin the exact wire shape.
pub fn format_line(
    ts_ms: u64,
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, LogValue)],
) -> String {
    let mut out = String::with_capacity(96 + fields.len() * 24);
    out.push_str("{\"ts_ms\":");
    out.push_str(&ts_ms.to_string());
    out.push_str(",\"level\":\"");
    out.push_str(level.label());
    out.push_str("\",\"target\":");
    push_json_str(&mut out, target);
    out.push_str(",\"msg\":");
    push_json_str(&mut out, msg);
    for (key, value) in fields {
        out.push(',');
        push_json_str(&mut out, key);
        out.push(':');
        match value {
            LogValue::Str(s) => push_json_str(&mut out, s),
            LogValue::U64(v) => out.push_str(&v.to_string()),
            LogValue::I64(v) => out.push_str(&v.to_string()),
            LogValue::F64(v) if v.is_finite() => out.push_str(&format!("{v:.6}")),
            LogValue::F64(_) => out.push_str("null"),
            LogValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

/// A per-second emission window; the global limiter plus any test
/// instance. Lock-free: the window rolls via compare-exchange.
#[derive(Debug, Default)]
pub struct RateWindow {
    window_s: AtomicU64,
    emitted: AtomicU64,
    dropped: AtomicU64,
}

impl RateWindow {
    /// A fresh window.
    pub const fn new() -> RateWindow {
        RateWindow {
            window_s: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Charges one line at time `now_s` against `limit` lines/sec.
    /// Returns `(admit, drops_to_confess)`: when a new window opens,
    /// the previous window's drop count is handed to the caller to
    /// report.
    pub fn admit(&self, now_s: u64, limit: u64) -> (bool, u64) {
        if limit == 0 {
            return (true, 0);
        }
        let current = self.window_s.load(Ordering::Relaxed);
        let mut confess = 0;
        if now_s != current
            && self
                .window_s
                .compare_exchange(current, now_s, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            confess = self.dropped.swap(0, Ordering::Relaxed);
            self.emitted.store(0, Ordering::Relaxed);
        }
        if self.emitted.fetch_add(1, Ordering::Relaxed) < limit {
            (true, confess)
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            (false, confess)
        }
    }
}

static GLOBAL_WINDOW: RateWindow = RateWindow::new();

/// Emits one structured line if `level` passes the `MCDLA_LOG` filter
/// for `target` and the rate limiter admits it.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    if !log_enabled(level, target) {
        return;
    }
    let ts_ms = crate::sampler::unix_ms();
    let (admit, confess) = GLOBAL_WINDOW.admit(ts_ms / 1000, limit());
    if confess > 0 {
        eprintln!(
            "{}",
            format_line(
                ts_ms,
                Level::Warn,
                "obs",
                "log_dropped",
                &[
                    ("dropped", confess.into()),
                    ("limit_per_sec", limit().into())
                ],
            )
        );
    }
    if admit {
        eprintln!("{}", format_line(ts_ms, level, target, msg, fields));
    }
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    log(Level::Error, target, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    log(Level::Debug, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_default_and_target_overrides() {
        let c = LogConfig::parse("warn,serve=debug, gateway = error ,bogus=nope");
        assert!(c.enabled(Level::Warn, "cluster"));
        assert!(!c.enabled(Level::Info, "cluster"));
        assert!(c.enabled(Level::Debug, "serve"));
        assert!(c.enabled(Level::Error, "gateway"));
        assert!(!c.enabled(Level::Warn, "gateway"));
        // Unknown levels fall back to info; empty spec is info.
        assert!(LogConfig::parse("verbose").enabled(Level::Info, "x"));
        assert!(!LogConfig::parse("").enabled(Level::Debug, "x"));
        assert!(!LogConfig::parse("off").enabled(Level::Error, "x"));
    }

    #[test]
    fn lines_are_valid_flat_json() {
        let line = format_line(
            1723000000123,
            Level::Info,
            "serve",
            "snapshot \"warmed\"\n",
            &[
                ("cells", 1024usize.into()),
                ("path", "/tmp/a\\b.json".into()),
                ("rate", 0.5f64.into()),
                ("nan", f64::NAN.into()),
                ("neg", LogValue::I64(-3)),
                ("ok", true.into()),
            ],
        );
        assert_eq!(
            line,
            "{\"ts_ms\":1723000000123,\"level\":\"info\",\"target\":\"serve\",\
             \"msg\":\"snapshot \\\"warmed\\\"\\n\",\"cells\":1024,\
             \"path\":\"/tmp/a\\\\b.json\",\"rate\":0.500000,\"nan\":null,\
             \"neg\":-3,\"ok\":true}"
        );
    }

    #[test]
    fn rate_window_caps_and_confesses_drops() {
        let w = RateWindow::new();
        let mut admitted = 0;
        for _ in 0..10 {
            if w.admit(100, 4).0 {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 4);
        // Rolling into the next second confesses the 6 drops exactly once.
        let (ok, confess) = w.admit(101, 4);
        assert!(ok);
        assert_eq!(confess, 6);
        let (ok, confess) = w.admit(101, 4);
        assert!(ok);
        assert_eq!(confess, 0);
        // Unlimited never drops.
        let unlimited = RateWindow::new();
        for _ in 0..1000 {
            assert!(unlimited.admit(7, 0).0);
        }
    }
}
