//! Fixed log-bucket latency histograms with atomic buckets.
//!
//! One shared bucket layout for every latency family in the system: a
//! 1-2-5 decade ladder from 1 µs to 10 s (22 finite bounds) plus the
//! `+Inf` overflow bucket. A fixed layout keeps [`Histogram::observe`]
//! lock-free (a scan over 22 integer bounds and two `fetch_add`s), lets
//! snapshots from different processes be compared bucket-for-bucket,
//! and renders directly as a Prometheus `histogram` family
//! (`_bucket`/`_sum`/`_count`) — see `MetricsBuilder::histogram` in
//! `mcdla-serve`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The finite bucket upper bounds, in seconds: a 1-2-5 ladder per
/// decade from 1 µs through 10 s. Observations above 10 s land in the
/// implicit `+Inf` bucket.
pub const BUCKET_BOUNDS: [f64; 22] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
    2e-1, 5e-1, 1.0, 2.0, 5.0, 10.0,
];

/// The same bounds in integer nanoseconds: the hot-path comparison
/// avoids float conversion per observation.
const BOUNDS_NANOS: [u64; 22] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Total bucket count including `+Inf`.
pub const BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// A fixed-layout latency histogram with atomic buckets: `observe` is
/// lock-free and wait-free apart from two relaxed `fetch_add`s, so one
/// histogram handle can be shared across every serve/gateway thread.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the array element by element.
        // The const is a repeat-element seed, not shared state.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation, in seconds. Negative and non-finite
    /// values clamp to zero (first bucket) — a histogram must never
    /// lose a count to a NaN.
    pub fn observe(&self, seconds: f64) {
        let nanos = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e9).round().min(u64::MAX as f64) as u64
        } else {
            0
        };
        self.observe_nanos(nanos);
    }

    /// Records one observation from a [`Duration`].
    pub fn observe_duration(&self, d: Duration) {
        self.observe_nanos(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    fn observe_nanos(&self, nanos: u64) {
        let idx = BOUNDS_NANOS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. Concurrent observers may
    /// land between the bucket reads and the count read, so the
    /// snapshot re-derives `count` from the buckets to stay internally
    /// consistent (`+Inf` cumulative == count, always).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_seconds: self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// An immutable copy of a [`Histogram`]'s counters, with per-bucket
/// (non-cumulative) counts. [`HistogramSnapshot::cumulative`] yields
/// the Prometheus view.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; the last entry is the `+Inf` bucket.
    pub buckets: [u64; BUCKETS],
    /// Sum of all observations, in seconds.
    pub sum_seconds: f64,
}

impl HistogramSnapshot {
    /// Total observation count (the sum of every bucket).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The Prometheus view: `(upper_bound_seconds, cumulative_count)`
    /// per bucket in ascending `le` order, ending with
    /// `(f64::INFINITY, count)`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                cum += c;
                let bound = BUCKET_BOUNDS.get(i).copied().unwrap_or(f64::INFINITY);
                (bound, cum)
            })
            .collect()
    }

    /// Estimates the `q`-quantile (0.0..=1.0) in seconds by linear
    /// interpolation inside the bucket holding the target rank; the
    /// `+Inf` bucket answers its lower bound (the largest finite
    /// bound). Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                cum += c;
                continue;
            }
            let before = cum;
            cum += c;
            if cum >= target {
                let upper = match BUCKET_BOUNDS.get(i) {
                    Some(&b) => b,
                    // +Inf bucket: answer the largest finite bound.
                    None => return BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1],
                };
                let lower = if i == 0 { 0.0 } else { BUCKET_BOUNDS[i - 1] };
                let frac = (target - before) as f64 / c as f64;
                return lower + (upper - lower) * frac;
            }
        }
        BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]
    }

    /// The observations recorded since `earlier` was taken: per-bucket
    /// saturating differences. Both snapshots must come from the same
    /// (monotonically growing) histogram; the sampler uses this to
    /// compute *windowed* quantiles between ticks instead of
    /// lifetime-cumulative ones.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, (now, then)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *out = now.saturating_sub(*then);
        }
        HistogramSnapshot {
            buckets,
            sum_seconds: (self.sum_seconds - earlier.sum_seconds).max(0.0),
        }
    }

    /// The upper bound of the highest non-empty bucket, in seconds —
    /// a conservative estimate of the maximum observation. Returns 0.0
    /// for an empty histogram.
    pub fn max_estimate(&self) -> f64 {
        for i in (0..BUCKETS).rev() {
            if self.buckets[i] > 0 {
                return BUCKET_BOUNDS
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]);
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_ascending_and_match_nanos() {
        for w in BUCKET_BOUNDS.windows(2) {
            assert!(w[0] < w[1], "bounds must ascend: {w:?}");
        }
        for (b, n) in BUCKET_BOUNDS.iter().zip(BOUNDS_NANOS) {
            let from_secs = (b * 1e9).round() as u64;
            assert_eq!(from_secs, n, "nanos table disagrees at {b}");
        }
    }

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::new();
        h.observe(0.5e-6); // <= 1µs
        h.observe(1e-6); // boundary: still the 1µs bucket
        h.observe(3e-6); // 5µs bucket
        h.observe(0.3); // 0.5s bucket
        h.observe(1e9); // +Inf
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[17], 1);
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_count() {
        let h = Histogram::new();
        for i in 0..1000 {
            h.observe(i as f64 * 1e-5);
        }
        let s = h.snapshot();
        let cum = s.cumulative();
        assert_eq!(cum.len(), BUCKETS);
        for w in cum.windows(2) {
            assert!(w[0].1 <= w[1].1, "cumulative counts must not decrease");
            assert!(w[0].0 < w[1].0, "le bounds must ascend");
        }
        let (last_bound, last_count) = cum[cum.len() - 1];
        assert!(last_bound.is_infinite());
        assert_eq!(last_count, s.count());
    }

    #[test]
    fn degenerate_observations_never_lose_counts() {
        let h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(-1.0);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.buckets[0], 3);
    }

    #[test]
    fn quantiles_bracket_a_uniform_load() {
        let h = Histogram::new();
        // 100 observations spread 1ms..100ms.
        for i in 1..=100 {
            h.observe(i as f64 * 1e-3);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((0.02..=0.1).contains(&p50), "p50 ~50ms, got {p50}");
        assert!((0.05..=0.2).contains(&p99), "p99 ~99ms, got {p99}");
        assert!(p50 <= p99);
        assert!(s.max_estimate() >= 0.1);
        assert_eq!(s.quantile(0.0), s.quantile(1e-9));
    }

    #[test]
    fn delta_isolates_the_window() {
        let h = Histogram::new();
        h.observe(1e-3);
        h.observe(1e-3);
        let before = h.snapshot();
        h.observe(0.3);
        h.observe(0.3);
        h.observe(0.3);
        let after = h.snapshot();
        let window = after.delta(&before);
        assert_eq!(window.count(), 3);
        assert_eq!(window.buckets[17], 3, "all window observations ~0.3s");
        assert!((window.sum_seconds - 0.9).abs() < 1e-9);
        // The window quantile reflects only the new observations.
        assert!(window.quantile(0.5) > 0.1);
        // Empty window: identical snapshots.
        assert_eq!(after.delta(&after).count(), 0);
    }

    #[test]
    fn sum_tracks_observations() {
        let h = Histogram::new();
        h.observe_duration(Duration::from_millis(10));
        h.observe_duration(Duration::from_millis(30));
        let s = h.snapshot();
        assert!((s.sum_seconds - 0.04).abs() < 1e-9);
    }
}
