//! # `rand` (vendored workspace subset)
//!
//! A tiny, dependency-free replacement for the slice of the `rand 0.8`
//! API this workspace uses (the build environment has no crates.io
//! access). Backed by the SplitMix64 generator — statistically solid for
//! test-case generation, deterministic per seed, and *not* suitable for
//! cryptography.
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is ChaCha12
//! based); everything in this workspace only relies on per-seed
//! determinism, never on a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen_f64() < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from a range. The output type is inferred from
    /// the call site, as in `rand 0.8`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Range types accepted by [`Rng::gen_range`], parameterized by the
/// sampled value type so it participates in inference.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[lo, hi_inclusive]` by rejection-free Lemire-style
/// widening multiply (negligible bias is unacceptable for crypto but fine
/// for test-case generation; the span here is far below 2^32).
fn uniform_u64<R: Rng>(rng: &mut R, lo: u64, hi_inclusive: u64) -> u64 {
    let span = hi_inclusive - lo + 1; // overflow-free: callers keep spans small
    let wide = (rng.next_u64() as u128) * (span as u128);
    lo + (wide >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                uniform_u64(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                uniform_u64(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + uniform_u64(rng, 0, span - 1) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64 - lo as i64) as u64;
                (lo as i64 + uniform_u64(rng, 0, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// Generator namespaces, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // Sebastiano Vigna's SplitMix64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(0..4usize);
            assert!(x < 4);
            let y = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(1.0f64..4.0);
            assert!((1.0..4.0).contains(&f));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
