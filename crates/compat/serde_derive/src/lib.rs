//! # `serde_derive` (vendored workspace subset)
//!
//! `#[derive(Serialize, Deserialize)]` for the sibling vendored `serde`
//! crate, implemented directly on `proc_macro` token streams (the build
//! environment has no crates.io access, so `syn`/`quote` are unavailable).
//!
//! Supported input shapes: non-generic structs (named, tuple, unit) and
//! enums whose variants are unit, tuple, or struct-like. Unsupported
//! shapes (generics, unions, `#[serde(...)]` attributes) produce a
//! compile-time panic with a clear message instead of silently wrong
//! code.
//!
//! Representation matches serde's defaults: named structs are maps,
//! newtype structs are transparent, unit enum variants are strings, and
//! data-carrying variants are externally tagged single-entry maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Input {
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);` with the field count.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Map(vec![{}])", entries.join(", ")),
            )
        }
        Input::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Seq(vec![{}])", items.join(", ")),
            )
        }
        Input::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            impl_serialize(name, &format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    body.parse().expect("serialize impl must be valid Rust")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__m, \"{f}\")?"))
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "let __m = __v.as_map().ok_or_else(|| \
                     ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Input::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        ),
        Input::TupleStruct { name, arity } => impl_deserialize(
            name,
            &format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::Error::expected(\"array\", \"{name}\"))?;\n\
                 if __s.len() != {arity} {{ return ::std::result::Result::Err(\
                 ::serde::Error::expected(\"{arity}-element array\", \"{name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
        Input::UnitStruct { name } => impl_deserialize(
            name,
            &format!("let _ = __v; ::std::result::Result::Ok({name})"),
        ),
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| deserialize_data_arm(name, v))
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                        {units}\n\
                        __other => ::std::result::Result::Err(::serde::Error::custom(\
                            format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                        let (__tag, __inner) = &__m[0];\n\
                        match __tag.as_str() {{\n\
                            {data}\n\
                            __other => ::std::result::Result::Err(::serde::Error::custom(\
                                format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                        }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"variant string or single-entry map\", \"{name}\")),\n\
                     }}",
                    units = unit_arms.join("\n"),
                    data = data_arms.join("\n"),
                ),
            )
        }
    };
    body.parse().expect("deserialize impl must be valid Rust")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(ty: &str, v: &Variant) -> String {
    let name = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{ty}::{name} => ::serde::Value::Str(\"{name}\".to_string()),")
        }
        VariantShape::Tuple(1) => format!(
            "{ty}::{name}(__a0) => ::serde::Value::Map(vec![(\"{name}\".to_string(), \
             ::serde::Serialize::to_value(__a0))]),"
        ),
        VariantShape::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("__a{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{ty}::{name}({binds}) => ::serde::Value::Map(vec![(\"{name}\".to_string(), \
                 ::serde::Value::Seq(vec![{items}]))]),",
                binds = binds.join(", "),
                items = items.join(", "),
            )
        }
        VariantShape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                .collect();
            format!(
                "{ty}::{name} {{ {fields} }} => ::serde::Value::Map(vec![(\"{name}\".to_string(), \
                 ::serde::Value::Map(vec![{entries}]))]),",
                fields = fields.join(", "),
                entries = entries.join(", "),
            )
        }
    }
}

fn deserialize_data_arm(ty: &str, v: &Variant) -> String {
    let name = &v.name;
    match &v.shape {
        VariantShape::Unit => unreachable!("unit variants handled in the string arm"),
        VariantShape::Tuple(1) => format!(
            "\"{name}\" => ::std::result::Result::Ok({ty}::{name}(\
             ::serde::Deserialize::from_value(__inner)?)),"
        ),
        VariantShape::Tuple(arity) => format!(
            "\"{name}\" => {{\n\
                let __s = __inner.as_seq().ok_or_else(|| \
                    ::serde::Error::expected(\"array\", \"{ty}::{name}\"))?;\n\
                if __s.len() != {arity} {{ return ::std::result::Result::Err(\
                    ::serde::Error::expected(\"{arity}-element array\", \"{ty}::{name}\")); }}\n\
                ::std::result::Result::Ok({ty}::{name}({items}))\n\
             }},",
            items = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect::<Vec<_>>()
                .join(", "),
        ),
        VariantShape::Named(fields) => format!(
            "\"{name}\" => {{\n\
                let __fm = __inner.as_map().ok_or_else(|| \
                    ::serde::Error::expected(\"map\", \"{ty}::{name}\"))?;\n\
                ::std::result::Result::Ok({ty}::{name} {{ {inits} }})\n\
             }},",
            inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__fm, \"{f}\")?"))
                .collect::<Vec<_>>()
                .join(", "),
        ),
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is unsupported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!("serde derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: expected enum body, found {other:?}"),
        },
        "union" => panic!("serde derive (vendored): unions are unsupported"),
        kw => panic!("serde derive: unexpected keyword `{kw}`"),
    }
}

/// Advances past outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, ...).
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if g.stream().to_string().starts_with("serde") {
                            panic!(
                                "serde derive (vendored): #[serde(...)] attributes are unsupported"
                            );
                        }
                        *i += 1;
                    }
                    other => panic!("serde derive: malformed attribute {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(super) / ...
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: T, b: U, ...` field names from a brace group, skipping the
/// types (angle-bracket depth tracked so generic argument commas do not
/// split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!(
                "serde derive: expected field name, found {:?}",
                tokens.get(i)
            );
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Counts the top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

/// Advances past one type, stopping at a top-level `,` (or the end).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    *i += 1;
                }
                '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                    *i += 1;
                }
                ',' if angle_depth == 0 => return,
                _ => *i += 1,
            },
            _ => *i += 1,
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma before the closing brace
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!(
                "serde derive: expected variant name, found {:?}",
                tokens.get(i)
            );
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
