//! JSON text encoding and decoding for the [`Value`](crate::Value) data
//! model — the `serde_json` subset the workspace needs.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parses JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        let s = format!("{n}");
        out.push_str(&s);
        // `{}` prints integral floats without a decimal point; keep the
        // round-trip type-faithful by marking them as floats.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; serde_json emits null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are unsupported (the writer
                            // never emits them); map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_and_pretty() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v), r#"{"a":1,"b":[true,null]}"#);
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_numbers_exactly() {
        assert_eq!(parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(parse("-12").unwrap(), Value::I64(-12));
        assert_eq!(parse("2.5e3").unwrap(), Value::F64(2500.0));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64), "3.0");
        assert_eq!(parse("3.0").unwrap(), Value::F64(3.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tend\\".to_owned();
        let json = to_string(&s);
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_seq().unwrap().len(), 2);
    }
}
