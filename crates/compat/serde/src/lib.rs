//! # `serde` (vendored workspace subset)
//!
//! A self-contained, dependency-free replacement for the parts of the
//! `serde` + `serde_json` API surface this workspace uses. The build
//! environment has no network access to crates.io, so the workspace
//! vendors a minimal-but-real implementation instead of stubbing the
//! derives out: `#[derive(Serialize, Deserialize)]` expands (via the
//! sibling `serde_derive` proc-macro crate) to genuine field-by-field
//! conversions through the [`Value`] data model, and the [`json`] module
//! provides a complete JSON writer and parser on top of it.
//!
//! Supported shapes — everything the `mcdla` crates derive:
//!
//! * structs with named fields → JSON objects;
//! * newtype / tuple structs → the inner value / a JSON array;
//! * unit enum variants → JSON strings (`"Gen3"`);
//! * data-carrying enum variants → externally tagged objects
//!   (`{"Chw": {"c": 3, "h": 224, "w": 224}}`), matching serde's default
//!   representation;
//! * the primitive/container impls listed in this module.
//!
//! Unsupported (panics at derive time rather than silently drifting):
//! generic types, borrowed fields, and `#[serde(...)]` attributes.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// The self-describing data model every serializable type converts
/// through — a superset of JSON with integers kept exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (emitted as a JSON number, no precision loss).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Numeric view as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric view as `u64` (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            Value::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) => i64::try_from(n).ok(),
            Value::I64(n) => Some(n),
            Value::F64(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(n as i64),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure with a human-readable path-free
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} while deserializing {ty}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for types with a natural default when their field is absent
    /// (`Option<T>` deserializes missing fields as `None`, like serde).
    #[doc(hidden)]
    fn from_missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

/// Derive-macro helper: extracts and deserializes one named field.
#[doc(hidden)]
pub fn __field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::from_missing_field(name),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::expected("unsigned integer", stringify!($t))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::expected("integer", stringify!($t))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                let s = v.as_seq().ok_or_else(|| Error::expected("array", "tuple"))?;
                if s.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected {LEN}-element array, got {}", s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("object", "map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()), Ok(big));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u64, f64)>::from_value(&v.to_value()), Ok(v));
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()), Ok(arr));
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u64>::from_value(&Value::U64(9)), Ok(Some(9)));
    }

    #[test]
    fn missing_option_field_is_none() {
        let m = vec![("present".to_owned(), Value::U64(1))];
        assert_eq!(__field::<Option<u64>>(&m, "absent"), Ok(None));
        assert_eq!(__field::<Option<u64>>(&m, "present"), Ok(Some(1)));
        assert!(__field::<u64>(&m, "absent").is_err());
    }

    #[test]
    fn narrowing_checks_range() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
