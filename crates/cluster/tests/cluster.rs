//! End-to-end cluster behaviour over real loopback sockets: routing,
//! scatter-gather identity with a single node, failover, error mapping,
//! stats aggregation, and metrics — all with in-process fleets.
//! (Kill -9 failure injection lives in the workspace-root
//! `tests/cluster_failover.rs`, which spawns real worker processes.)

use mcdla_cluster::{spawn_local_fleet, FleetConfig, Topology};
use mcdla_core::{Scenario, SystemDesign};
use mcdla_dnn::Benchmark;
use mcdla_parallel::ParallelStrategy;
use mcdla_serve::client::Connection;
use mcdla_serve::{ServeConfig, Server};
use serde::Value;

fn fleet(workers: usize) -> mcdla_cluster::LocalFleet {
    spawn_local_fleet(&FleetConfig {
        workers,
        worker_threads: 2,
        gateway_threads: 4,
        probe_interval: None,
        ..FleetConfig::default()
    })
    .expect("spawn fleet")
}

fn scenario_json(scenario: &Scenario) -> String {
    serde::json::to_string(scenario)
}

/// Drops `cached` (and optionally `wall_ms`, which cell payloads don't
/// carry but sweep payloads do) from a cell object for identity checks.
fn strip_cached(cell: &Value) -> Value {
    match cell {
        Value::Map(entries) => Value::Map(
            entries
                .iter()
                .filter(|(k, _)| k != "cached" && k != "wall_ms")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        ),
        other => other.clone(),
    }
}

fn grid_cells(body: &str) -> Vec<Value> {
    let parsed = serde::json::parse(body).expect("grid JSON");
    let Value::Map(entries) = parsed else {
        panic!("grid answer is not an object")
    };
    let Some((_, Value::Seq(cells))) = entries.into_iter().find(|(k, _)| k == "cells") else {
        panic!("grid answer has no cells array")
    };
    cells
}

#[test]
fn simulate_routes_to_the_rendezvous_owner_and_passes_through() {
    let fleet = fleet(3);
    let addr = fleet.gateway_addr().to_string();
    let topology = Topology::new(fleet.worker_addrs()).unwrap();
    let cell = Scenario::new(
        SystemDesign::McDlaBwAware,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    let owner = topology.owner_of(&cell);
    let body = scenario_json(&cell);

    let mut conn = Connection::open(&addr).expect("open gateway connection");
    let first = conn.request("POST", "/simulate", Some(&body)).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert!(first.body.contains("\"cached\": false"));
    let second = conn.request("POST", "/simulate", Some(&body)).unwrap();
    assert!(second.body.contains("\"cached\": true"));

    // Exactly the rendezvous owner simulated (and holds) the cell.
    for (i, worker) in fleet.workers.iter().enumerate() {
        let expected = usize::from(i == owner);
        assert_eq!(
            worker.store().len(),
            expected,
            "worker {i} holds the wrong cell count"
        );
    }

    // Passthrough: the gateway answer is byte-identical to asking the
    // owning worker directly (both cached now).
    let direct = mcdla_serve::client::request_once(
        &fleet.worker_addrs()[owner],
        "POST",
        "/simulate",
        Some(&body),
    )
    .unwrap();
    assert_eq!(second.body, direct.body);
    fleet.shutdown();
}

#[test]
fn buffered_grid_matches_a_single_node_cell_for_cell() {
    let single = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_cap: None,
        snapshot: None,
        ..ServeConfig::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let fleet = fleet(3);
    let body = r#"{"benchmarks": ["AlexNet", "GoogLeNet"]}"#;

    let via_gateway = mcdla_serve::client::request_once(
        &fleet.gateway_addr().to_string(),
        "POST",
        "/grid",
        Some(body),
    )
    .unwrap();
    assert_eq!(via_gateway.status, 200, "{}", via_gateway.body);
    let via_single =
        mcdla_serve::client::request_once(&single.addr().to_string(), "POST", "/grid", Some(body))
            .unwrap();
    assert_eq!(via_single.status, 200);

    let gateway_cells = grid_cells(&via_gateway.body);
    let single_cells = grid_cells(&via_single.body);
    assert_eq!(gateway_cells.len(), 24);
    assert_eq!(gateway_cells.len(), single_cells.len());
    // Same cells, same order (the gateway merges back into grid order),
    // same payloads modulo the per-store `cached` flag.
    for (g, s) in gateway_cells.iter().zip(&single_cells) {
        assert_eq!(strip_cached(g), strip_cached(s));
    }
    // The scatter really spread work: no single worker computed it all.
    let per_worker: Vec<usize> = fleet.workers.iter().map(|w| w.store().len()).collect();
    assert_eq!(per_worker.iter().sum::<usize>(), 24);
    assert!(
        per_worker.iter().all(|&n| n < 24),
        "one worker owned the whole grid: {per_worker:?}"
    );
    fleet.shutdown();
    single.shutdown();
}

#[test]
fn streamed_grid_merges_every_partition_and_stays_reusable() {
    let fleet = fleet(2);
    let addr = fleet.gateway_addr().to_string();
    let mut conn = Connection::open(&addr).expect("open gateway connection");
    let stream = conn
        .request_stream("POST", "/grid?stream=1", Some("{}"))
        .unwrap();
    assert_eq!(stream.status, 200);
    let lines = stream.collect_lines().expect("clean merged stream");
    assert_eq!(lines.len(), 96);

    // Streamed lines match the buffered grid cells payload-for-payload.
    let buffered = conn.request("POST", "/grid", Some("{}")).unwrap();
    let mut buffered_cells: Vec<String> = grid_cells(&buffered.body)
        .iter()
        .map(|c| serde::json::to_string(&strip_cached(c)))
        .collect();
    let mut streamed_cells: Vec<String> = lines
        .iter()
        .map(|l| serde::json::to_string(&strip_cached(&serde::json::parse(l).unwrap())))
        .collect();
    buffered_cells.sort();
    streamed_cells.sort();
    assert_eq!(buffered_cells, streamed_cells);

    // The keep-alive connection stays framed after a clean stream.
    let health = conn.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    fleet.shutdown();
}

#[test]
fn gateway_deduplicates_repeated_cells_before_the_scatter() {
    let fleet = fleet(2);
    let addr = fleet.gateway_addr().to_string();
    let a = Scenario::new(
        SystemDesign::McDlaBwAware,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    let b = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::GoogLeNet,
        ParallelStrategy::DataParallel,
    );
    let body = format!(
        r#"{{"cells": [{a}, {b}, {a}, {a}]}}"#,
        a = scenario_json(&a),
        b = scenario_json(&b)
    );

    let mut conn = Connection::open(&addr).expect("open gateway connection");
    let resp = conn.request("POST", "/grid", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let cells = grid_cells(&resp.body);
    assert_eq!(cells.len(), 4, "one output cell per input cell");
    assert_eq!(strip_cached(&cells[0]), strip_cached(&cells[2]));
    assert_eq!(strip_cached(&cells[0]), strip_cached(&cells[3]));
    // Only the two distinct cells reached the fleet: no worker saw the
    // duplicates, so no worker-store lookup hit a just-computed entry.
    let (hits, entries) = fleet.workers.iter().fold((0, 0), |(h, n), w| {
        let stats = w.store().stats();
        (h + stats.hits, n + stats.entries)
    });
    assert_eq!(entries, 2, "the fleet holds one entry per distinct cell");
    assert_eq!(hits, 0, "duplicates were scattered to the fleet");

    // Streaming dedupe keeps the line-per-input-cell contract too.
    let stream = conn
        .request_stream("POST", "/grid?stream=1", Some(&body))
        .unwrap();
    assert_eq!(stream.status, 200);
    let lines = stream.collect_lines().expect("clean merged stream");
    assert_eq!(lines.len(), 4, "one streamed line per input cell");
    let parse = |l: &String| serde::json::to_string(&strip_cached(&serde::json::parse(l).unwrap()));
    let payloads: Vec<String> = lines.iter().map(parse).collect();
    let a_payload = serde::json::to_string(&strip_cached(&cells[0]));
    assert_eq!(payloads.iter().filter(|p| **p == a_payload).count(), 3);
    fleet.shutdown();
}

#[test]
fn worker_grid_accepts_explicit_cells_and_rejects_mixtures() {
    let single = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_cap: None,
        snapshot: None,
        ..ServeConfig::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let addr = single.addr().to_string();
    let a = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    let b = a.with_batch(1024);
    let body = format!(
        r#"{{"cells": [{}, {}]}}"#,
        scenario_json(&a),
        scenario_json(&b)
    );
    let resp = mcdla_serve::client::request_once(&addr, "POST", "/grid", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let cells = grid_cells(&resp.body);
    assert_eq!(cells.len(), 2);
    // Cells answer in list order.
    let digest_of = |v: &Value| match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == "digest")
            .map(|(_, v)| serde::json::to_string(v))
            .unwrap(),
        _ => panic!("cell is not an object"),
    };
    assert_eq!(digest_of(&cells[0]), format!("\"{:016x}\"", a.digest()));
    assert_eq!(digest_of(&cells[1]), format!("\"{:016x}\"", b.digest()));

    let mixed = format!(
        r#"{{"cells": [{}], "benchmarks": ["AlexNet"]}}"#,
        scenario_json(&a)
    );
    let resp = mcdla_serve::client::request_once(&addr, "POST", "/grid", Some(&mixed)).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("cannot be combined"), "{}", resp.body);
    let empty = r#"{"cells": []}"#;
    let resp = mcdla_serve::client::request_once(&addr, "POST", "/grid", Some(empty)).unwrap();
    assert_eq!(resp.status, 400);
    single.shutdown();
}

#[test]
fn point_queries_fail_over_when_the_owner_goes_down() {
    let mut fleet = fleet(3);
    let addr = fleet.gateway_addr().to_string();
    let topology = Topology::new(fleet.worker_addrs()).unwrap();
    let cell = Scenario::new(
        SystemDesign::HcDla,
        Benchmark::VggE,
        ParallelStrategy::ModelParallel,
    );
    let owner = topology.owner_of(&cell);
    let body = scenario_json(&cell);

    // Warm through the gateway, then take the owner down.
    let warm = mcdla_serve::client::request_once(&addr, "POST", "/simulate", Some(&body)).unwrap();
    assert_eq!(warm.status, 200);
    fleet.workers.remove(owner).shutdown();

    // The gateway must answer via the next replica — which recomputes
    // the cell (its store never saw it) to a bit-identical report.
    let failed_over =
        mcdla_serve::client::request_once(&addr, "POST", "/simulate", Some(&body)).unwrap();
    assert_eq!(failed_over.status, 200, "{}", failed_over.body);
    let report_of = |body: &str| {
        let Value::Map(entries) = serde::json::parse(body).unwrap() else {
            panic!("not an object")
        };
        let report = entries.into_iter().find(|(k, _)| k == "report").unwrap().1;
        serde::json::to_string(&report)
    };
    assert_eq!(report_of(&warm.body), report_of(&failed_over.body));

    // The fleet view reflects the outage.
    let stats = mcdla_serve::client::request_once(&addr, "GET", "/cluster/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    let parsed = serde::json::parse(&stats.body).unwrap();
    let up = {
        let Value::Map(entries) = &parsed else {
            panic!("not an object")
        };
        let Some((_, Value::Map(fleet))) = entries.iter().find(|(k, _)| k == "fleet") else {
            panic!("no fleet section")
        };
        match fleet.iter().find(|(k, _)| k == "up") {
            Some((_, Value::U64(n))) => *n,
            other => panic!("no fleet.up: {other:?}"),
        }
    };
    assert_eq!(up, 2);
    fleet.shutdown();
}

#[test]
fn grids_fail_over_and_an_all_dead_fleet_is_a_502_naming_workers() {
    let mut fleet = fleet(2);
    let addr = fleet.gateway_addr().to_string();
    let worker_addrs = fleet.worker_addrs();

    // Kill one worker: the buffered grid reroutes its slice.
    fleet.workers.remove(1).shutdown();
    let resp = mcdla_serve::client::request_once(
        &addr,
        "POST",
        "/grid",
        Some(r#"{"benchmarks": ["AlexNet"]}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(grid_cells(&resp.body).len(), 12);

    // Kill the last worker: point and grid queries answer 502 and name
    // the unreachable workers.
    fleet.workers.remove(0).shutdown();
    let cell = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    let resp =
        mcdla_serve::client::request_once(&addr, "POST", "/simulate", Some(&scenario_json(&cell)))
            .unwrap();
    assert_eq!(resp.status, 502, "{}", resp.body);
    assert!(
        worker_addrs.iter().any(|w| resp.body.contains(w)),
        "502 does not name a worker: {}",
        resp.body
    );
    let resp = mcdla_serve::client::request_once(&addr, "POST", "/grid", Some("{}")).unwrap();
    assert_eq!(resp.status, 502);
    let resp =
        mcdla_serve::client::request_once(&addr, "POST", "/grid?stream=1", Some("{}")).unwrap();
    assert_eq!(
        resp.status, 502,
        "stream open failure must be a buffered 502"
    );
    fleet.shutdown();
}

#[test]
fn gateway_rejects_bad_requests_locally() {
    let fleet = fleet(1);
    let addr = fleet.gateway_addr().to_string();
    for (path, body, needle) in [
        ("/simulate", "not json", "bad scenario JSON"),
        (
            "/simulate",
            r#"{"dessign": "DcDla"}"#,
            "unknown Scenario field",
        ),
        ("/grid", r#"{"batches": [0]}"#, "batch sizes"),
        ("/grid", r#"{"designs": []}"#, "zero cells"),
    ] {
        let resp = mcdla_serve::client::request_once(&addr, "POST", path, Some(body)).unwrap();
        assert_eq!(resp.status, 400, "{path} with `{body}`");
        assert!(resp.body.contains(needle), "{}", resp.body);
    }
    // Nothing reached the fleet.
    assert_eq!(fleet.workers[0].store().len(), 0);
    let resp = mcdla_serve::client::request_once(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(resp.status, 404);
    let resp = mcdla_serve::client::request_once(&addr, "POST", "/healthz", None).unwrap();
    assert_eq!(resp.status, 405);
    fleet.shutdown();
}

#[test]
fn metrics_expose_gateway_and_worker_counters() {
    let fleet = fleet(2);
    let addr = fleet.gateway_addr().to_string();
    let cell = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    let _ =
        mcdla_serve::client::request_once(&addr, "POST", "/simulate", Some(&scenario_json(&cell)))
            .unwrap();

    let metrics = mcdla_serve::client::request_once(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("mcdla_gateway_up 1"));
    assert!(metrics
        .body
        .contains("mcdla_gateway_requests_total{endpoint=\"simulate\"} 1"));
    for worker in fleet.worker_addrs() {
        assert!(
            metrics
                .body
                .contains(&format!("mcdla_gateway_worker_up{{worker=\"{worker}\"}} 1")),
            "missing worker_up for {worker}"
        );
    }

    // The worker's own exposition (the satellite endpoint).
    let worker_metrics =
        mcdla_serve::client::request_once(&fleet.worker_addrs()[0], "GET", "/metrics", None)
            .unwrap();
    assert_eq!(worker_metrics.status, 200);
    assert!(worker_metrics
        .body
        .contains("# TYPE mcdla_store_hits_total counter"));
    assert!(worker_metrics.body.contains("mcdla_store_entries"));
    assert!(worker_metrics
        .body
        .contains("mcdla_requests_total{endpoint=\"metrics\"} 1"));
    fleet.shutdown();
}

#[test]
fn background_prober_revives_a_worker_marked_down() {
    let fleet = spawn_local_fleet(&FleetConfig {
        workers: 1,
        worker_threads: 2,
        gateway_threads: 2,
        probe_interval: Some(std::time::Duration::from_millis(100)),
        ..FleetConfig::default()
    })
    .expect("spawn fleet");
    fleet.gateway.router().workers()[0].mark_down("injected outage");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !fleet.gateway.router().workers()[0].is_up() {
        assert!(
            std::time::Instant::now() < deadline,
            "prober never revived the worker"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    fleet.shutdown();
}

#[test]
fn traced_simulate_carries_one_request_id_through_every_hop() {
    let fleet = fleet(3);
    let addr = fleet.gateway_addr().to_string();
    let cell = Scenario::new(
        SystemDesign::McDlaBwAware,
        Benchmark::VggE,
        ParallelStrategy::ModelParallel,
    );
    let body = scenario_json(&cell);
    let rid = "fleet-trace-1";

    let mut conn = Connection::open(&addr).expect("open gateway connection");
    let resp = conn
        .request_with(
            "POST",
            "/simulate?trace=1",
            &[("x-mcdla-request-id", rid)],
            Some(&body),
        )
        .expect("traced simulate");
    assert_eq!(resp.status, 200, "{}", resp.body);
    // The gateway echoes the propagated id.
    assert_eq!(resp.header("x-mcdla-request-id"), Some(rid));

    let parsed = serde::json::parse(&resp.body).expect("simulate JSON");
    assert!(parsed.get("report").is_some(), "{}", resp.body);
    let trace = parsed.get("trace").expect("gateway trace grafted");
    assert_eq!(trace.get("id").and_then(|v| v.as_str()), Some(rid));
    assert_eq!(
        trace.get("service").and_then(|v| v.as_str()),
        Some("mcdla-gateway")
    );
    let gateway_spans: Vec<&str> = trace
        .get("spans")
        .and_then(|s| s.as_seq())
        .expect("gateway spans")
        .iter()
        .map(|s| s.get("name").and_then(|v| v.as_str()).unwrap())
        .collect();
    assert!(
        gateway_spans.contains(&"gateway.route"),
        "{gateway_spans:?}"
    );
    assert!(
        gateway_spans.contains(&"pool.checkout"),
        "{gateway_spans:?}"
    );
    assert!(
        gateway_spans
            .iter()
            .any(|n| n.starts_with("gateway.upstream.")),
        "{gateway_spans:?}"
    );

    // The grafted upstream block names the worker that answered and
    // carries its sub-trace under the very same id.
    let upstream = trace
        .get("upstream")
        .and_then(|u| u.as_seq())
        .expect("upstream block");
    assert_eq!(upstream.len(), 1);
    let hop = &upstream[0];
    let worker_idx = hop.get("worker").and_then(|v| v.as_u64()).expect("worker") as usize;
    assert!(worker_idx < 3);
    let sub = hop.get("trace").expect("worker sub-trace");
    assert_eq!(sub.get("id").and_then(|v| v.as_str()), Some(rid));
    let worker_spans: Vec<&str> = sub
        .get("spans")
        .and_then(|s| s.as_seq())
        .expect("worker spans")
        .iter()
        .map(|s| s.get("name").and_then(|v| v.as_str()).unwrap())
        .collect();
    assert!(
        worker_spans.contains(&"engine.simulate"),
        "{worker_spans:?}"
    );
    assert!(
        worker_spans.iter().any(|n| n.starts_with("stage.")),
        "{worker_spans:?}"
    );

    // Exactly the answering worker recorded the trace; the others 404.
    let mut hits = Vec::new();
    for (i, worker_addr) in fleet.worker_addrs().iter().enumerate() {
        let mut wconn = Connection::open(worker_addr).expect("open worker");
        let replay = wconn
            .request("GET", &format!("/debug/trace/{rid}"), None)
            .expect("worker debug trace");
        if replay.status == 200 {
            assert!(replay.body.contains(rid));
            hits.push(i);
        } else {
            assert_eq!(replay.status, 404);
        }
    }
    assert_eq!(hits, vec![worker_idx], "trace recorded on the wrong worker");

    // The gateway's own flight recorder replays the trace too.
    let replay = conn
        .request("GET", &format!("/debug/trace/{rid}"), None)
        .expect("gateway debug trace");
    assert_eq!(replay.status, 200, "{}", replay.body);
    assert!(replay.body.contains("mcdla-gateway"), "{}", replay.body);
    let listing = conn
        .request("GET", "/debug/requests?endpoint=simulate", None)
        .expect("gateway debug requests");
    assert_eq!(listing.status, 200);
    assert!(listing.body.contains(rid), "{}", listing.body);

    fleet.shutdown();
}

#[test]
fn gateway_metrics_expose_latency_histograms_and_build_info() {
    let fleet = fleet(2);
    let addr = fleet.gateway_addr().to_string();
    let cell = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::ResNet,
        ParallelStrategy::DataParallel,
    );
    let mut conn = Connection::open(&addr).expect("open gateway connection");
    let resp = conn
        .request("POST", "/simulate", Some(&scenario_json(&cell)))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    let metrics = conn.request("GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let text = &metrics.body;
    for needle in [
        "# TYPE mcdla_gateway_request_seconds histogram",
        "mcdla_gateway_request_seconds_bucket{endpoint=\"simulate\",le=\"+Inf\"}",
        "mcdla_gateway_request_seconds_count{endpoint=\"simulate\"}",
        "# TYPE mcdla_gateway_upstream_seconds histogram",
        "mcdla_gateway_upstream_seconds_bucket{worker=",
        "mcdla_build_info{",
    ] {
        assert!(
            text.contains(needle),
            "gateway metrics missing `{needle}`:\n{text}"
        );
    }

    fleet.shutdown();
}

#[test]
fn gateway_502_body_names_the_request_id() {
    // A backend address with nothing listening: bind, learn the port,
    // drop the listener. No prober, so the gateway only learns of the
    // outage from the request itself.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let gateway = mcdla_cluster::Gateway::bind(&mcdla_cluster::GatewayConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        backends: vec![dead],
        probe_interval: None,
        ..mcdla_cluster::GatewayConfig::default()
    })
    .expect("bind gateway");
    let handle = gateway.spawn().expect("spawn gateway");
    let addr = handle.addr().to_string();

    let cell = Scenario::new(
        SystemDesign::HcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    let mut conn = Connection::open(&addr).expect("open gateway connection");
    let resp = conn
        .request_with(
            "POST",
            "/simulate",
            &[("x-mcdla-request-id", "dead-fleet-1")],
            Some(&scenario_json(&cell)),
        )
        .expect("simulate against dead fleet");
    assert_eq!(resp.status, 502, "{}", resp.body);
    assert_eq!(resp.header("x-mcdla-request-id"), Some("dead-fleet-1"));
    assert!(resp.body.contains("\"request_id\""), "{}", resp.body);
    assert!(resp.body.contains("dead-fleet-1"), "{}", resp.body);

    handle.shutdown();
}

/// The ISSUE-10 acceptance scenario: a cold fleet warms up, and
/// `GET /cluster/history` shows the hit-rate climb — a cold sample
/// window with misses and no hits, then a later window with hits and a
/// strictly higher hit rate — with tail-aligned fleet series and
/// monotone timestamps.
#[test]
fn cluster_history_shows_the_warmup_hit_rate_climb() {
    let fleet = spawn_local_fleet(&FleetConfig {
        workers: 2,
        worker_threads: 2,
        gateway_threads: 4,
        probe_interval: None,
        sample_ms: Some(40),
        ..FleetConfig::default()
    })
    .expect("spawn fleet");
    let addr = fleet.gateway_addr().to_string();
    let mut conn = Connection::open(&addr).expect("open gateway connection");

    let cells: Vec<String> = (0..6)
        .map(|i| {
            scenario_json(
                &Scenario::new(
                    SystemDesign::DcDla,
                    Benchmark::AlexNet,
                    ParallelStrategy::DataParallel,
                )
                .with_batch(3_000 + i),
            )
        })
        .collect();

    // Cold phase: every cell misses. Then let the sampler tick a few
    // windows so the misses land in their own samples.
    for body in &cells {
        let resp = conn.request("POST", "/simulate", Some(body)).expect("cold");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    std::thread::sleep(std::time::Duration::from_millis(150));

    // Warm phase: the same cells, three rounds — pure hits.
    for _ in 0..3 {
        for body in &cells {
            let resp = conn.request("POST", "/simulate", Some(body)).expect("warm");
            assert_eq!(resp.status, 200, "{}", resp.body);
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(150));

    let resp = conn
        .request("GET", "/cluster/history", None)
        .expect("cluster history");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = serde::json::parse(&resp.body).expect("cluster history JSON");

    // The gateway's own ring is present and sampling.
    let gateway_samples = parsed
        .get("gateway")
        .and_then(|g| g.get("samples"))
        .and_then(|v| v.as_u64())
        .expect("gateway.samples");
    assert!(gateway_samples > 0, "gateway sampler must have ticked");

    let fleet_block = parsed.get("fleet").expect("fleet block");
    assert_eq!(
        fleet_block.get("up").and_then(|v| v.as_u64()),
        Some(2),
        "both workers reachable: {}",
        resp.body
    );
    let stamps: Vec<u64> = fleet_block
        .get("timestamps_ms")
        .and_then(|v| v.as_seq())
        .expect("fleet.timestamps_ms")
        .iter()
        .map(|v| v.as_u64().expect("timestamp"))
        .collect();
    assert!(!stamps.is_empty(), "fleet history must hold samples");
    assert!(
        stamps.windows(2).all(|w| w[0] <= w[1]),
        "fleet timestamps must be monotone: {stamps:?}"
    );

    let series = |name: &str| -> Vec<f64> {
        fleet_block
            .get("series")
            .and_then(|s| s.get(name))
            .and_then(|v| v.as_seq())
            .unwrap_or_else(|| panic!("fleet series {name} missing"))
            .iter()
            .map(|v| v.as_f64().expect("sample"))
            .collect()
    };
    let hits = series("store.hits_per_s");
    let misses = series("store.misses_per_s");
    let hit_rate = series("store.hit_rate");
    assert_eq!(hits.len(), stamps.len());
    assert_eq!(hit_rate.len(), stamps.len());

    // The climb: a cold window saw misses and no hits (rate 0), and a
    // strictly later window saw hits at a strictly higher rate.
    let cold = (0..stamps.len())
        .find(|&j| misses[j] > 0.0 && hits[j] == 0.0)
        .expect("a cold all-miss sample window");
    let warm = (0..stamps.len())
        .rfind(|&j| hits[j] > 0.0)
        .expect("a warm sample window with hits");
    assert!(
        cold < warm,
        "cold window {cold} must precede warm window {warm}"
    );
    assert!(
        hit_rate[warm] > hit_rate[cold],
        "hit rate must climb from warm-up: {hit_rate:?}"
    );

    // Per-worker rings ride along, marked up.
    let workers = parsed
        .get("workers")
        .and_then(|v| v.as_seq())
        .expect("workers array");
    assert_eq!(workers.len(), 2);
    for worker in workers {
        assert!(
            matches!(worker.get("up"), Some(Value::Bool(true))),
            "worker must be up: {}",
            resp.body
        );
        let samples = worker
            .get("history")
            .and_then(|h| h.get("samples"))
            .and_then(|v| v.as_u64())
            .expect("worker history samples");
        assert!(samples > 0, "worker sampler must have ticked");
    }

    // `?last=` bounds every ring in the answer.
    let resp = conn
        .request("GET", "/cluster/history?last=2", None)
        .expect("bounded cluster history");
    let parsed = serde::json::parse(&resp.body).expect("bounded JSON");
    let bounded = parsed
        .get("fleet")
        .and_then(|f| f.get("samples"))
        .and_then(|v| v.as_u64())
        .expect("bounded fleet samples");
    assert!(
        bounded <= 2,
        "last=2 must bound fleet samples, got {bounded}"
    );

    fleet.shutdown();
}
