//! The cluster gateway: an HTTP server (the same epoll event loop as
//! `mcdla-serve`, see [`mcdla_serve::accept`]) that owns a [`Router`]
//! over the worker fleet and exposes the single-node endpoints at fleet
//! scale — `POST /simulate` with retry + failover, scatter-gather
//! `POST /grid` (buffered and `?stream=1`), `GET /cluster/stats`
//! aggregation, and Prometheus `GET /metrics`. Locally answered
//! endpoints run on the loop thread; anything that talks to a backend
//! detaches to the bounded worker pool (and sheds 429 beyond the
//! admission queue).

use std::collections::BTreeSet;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcdla_core::Scenario;
use mcdla_obs::{
    rss_bytes, unix_ms, FlightRecorder, HistogramSnapshot, History, Sampler, TraceRecord,
    TraceScope,
};
use mcdla_serve::accept::{
    spawn_event_loop, FastAnswer, LoopConfig, LoopHandle, LoopStats, Service,
};
use mcdla_serve::client::Timeouts;
use mcdla_serve::http::{
    error_body, finish_chunked, query_flag, query_param, split_target, write_chunk,
    write_chunked_head_with, write_response_with, Request, WireError,
};
use mcdla_serve::metrics::MetricsBuilder;
use mcdla_serve::trace::{self, LatencyFamily, REQUEST_ID_HEADER};
use mcdla_serve::{
    GridRequest, ServeConfig, Server, ServerHandle, MAX_GRID_CELLS, MAX_STREAM_CELLS,
};
use serde::{Deserialize, Value};

use crate::merge::{partition_pending, scatter_buffered};
use crate::router::{GatewayError, Router};

/// Idle keep-alive client connections are dropped after this long
/// (same bound as the worker).
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything `mcdla gateway` configures.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size: concurrent gateway→fleet round trips
    /// (forwards, scatters, stats scrapes). Client connection I/O is
    /// not bounded by this — the event loop multiplexes every
    /// connection.
    pub threads: usize,
    /// Worker addresses (`host:port`), in stable index order.
    pub backends: Vec<String>,
    /// Deadlines for gateway→worker requests.
    pub timeouts: Timeouts,
    /// Background health-probe period (`None` disables the prober;
    /// health is then tracked passively from request outcomes only).
    pub probe_interval: Option<Duration>,
    /// Parked keep-alive connections kept per worker.
    pub max_idle_per_worker: usize,
    /// Event-loop threads (one epoll instance each).
    pub loops: usize,
    /// Admission-queue bound: fleet-bound requests waiting beyond the
    /// worker pool; the next one is answered 429 + `Retry-After`.
    pub queue_depth: usize,
    /// Telemetry sampling cadence in milliseconds. `None` defers to
    /// `MCDLA_SAMPLE_MS` (default 1s); `Some(0)` disables the sampler.
    pub sample_ms: Option<u64>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:7900".to_owned(),
            threads: 8,
            backends: Vec::new(),
            timeouts: Timeouts::default(),
            probe_interval: Some(Duration::from_secs(2)),
            max_idle_per_worker: 16,
            loops: 1,
            queue_depth: 128,
            sample_ms: None,
        }
    }
}

/// Per-endpoint request counters, reported by `GET /cluster/stats` and
/// `GET /metrics`.
#[derive(Debug, Default)]
struct GatewayCounters {
    healthz: AtomicU64,
    cluster_stats: AtomicU64,
    metrics: AtomicU64,
    simulate: AtomicU64,
    grid: AtomicU64,
    debug: AtomicU64,
    errors: AtomicU64,
}

impl GatewayCounters {
    fn snapshot(&self) -> [(&'static str, u64); 7] {
        [
            ("healthz", self.healthz.load(Ordering::Relaxed)),
            ("cluster_stats", self.cluster_stats.load(Ordering::Relaxed)),
            ("metrics", self.metrics.load(Ordering::Relaxed)),
            ("simulate", self.simulate.load(Ordering::Relaxed)),
            ("grid", self.grid.load(Ordering::Relaxed)),
            ("debug", self.debug.load(Ordering::Relaxed)),
            ("errors", self.errors.load(Ordering::Relaxed)),
        ]
    }

    fn to_value(&self) -> Value {
        Value::Map(
            self.snapshot()
                .into_iter()
                .map(|(name, count)| (name.into(), Value::U64(count)))
                .collect(),
        )
    }
}

/// Endpoint labels for the gateway's request-latency histograms and the
/// flight-recorder listing.
const ENDPOINT_LABELS: &[&str] = &[
    "healthz",
    "cluster_stats",
    "metrics",
    "simulate",
    "grid",
    "debug",
    "other",
];

/// The histogram/recorder label for a request path.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/cluster/stats" | "/cluster/history" => "cluster_stats",
        "/metrics" | "/metrics/history" => "metrics",
        "/simulate" => "simulate",
        "/grid" => "grid",
        p if p.starts_with("/debug/") => "debug",
        _ => "other",
    }
}

/// The gateway's retained series, in record order. This list and
/// [`GatewayTick::series_values`] must enumerate the same series in the
/// same order — [`History::record`] panics on any arity drift.
fn gateway_series_names() -> Vec<String> {
    let mut names = vec!["req_per_s".to_string(), "err_per_s".to_string()];
    for ep in ENDPOINT_LABELS {
        names.push(format!("{ep}.req_per_s"));
        names.push(format!("{ep}.p50_ms"));
        names.push(format!("{ep}.p99_ms"));
    }
    names.extend(
        [
            "conns.open",
            "conns.shed_per_s",
            "conns.timeouts_per_s",
            "fleet.failovers_per_s",
            "fleet.retries_per_s",
            "fleet.workers_up",
            "rss_bytes",
            "uptime_seconds",
        ]
        .map(String::from),
    );
    names
}

/// One sampler tick's snapshot of every monotone counter the gateway
/// series derive from; consecutive ticks difference into windowed
/// rates and quantiles.
struct GatewayTick {
    at: Instant,
    errors: u64,
    shed: u64,
    timeouts: u64,
    open: u64,
    failovers: u64,
    retries: u64,
    workers_up: u64,
    uptime_s: f64,
    latency: Vec<HistogramSnapshot>,
}

impl GatewayTick {
    fn capture(state: &GatewayState) -> GatewayTick {
        GatewayTick {
            at: Instant::now(),
            errors: state.requests.errors.load(Ordering::Relaxed),
            shed: state.loop_stats.shed(),
            timeouts: state.loop_stats.request_timeouts(),
            open: state.loop_stats.open(),
            failovers: state.router.failovers.load(Ordering::Relaxed),
            retries: state.router.retries(),
            workers_up: state.router.up_count() as u64,
            uptime_s: state.started.elapsed().as_secs_f64(),
            latency: state
                .latency
                .snapshots()
                .into_iter()
                .map(|(_, s)| s)
                .collect(),
        }
    }

    /// The values for one history sample, in [`gateway_series_names`]
    /// order, windowed against the previous tick.
    fn series_values(&self, prev: &GatewayTick) -> Vec<f64> {
        let dt = self.at.duration_since(prev.at).as_secs_f64().max(1e-3);
        let rate = |now: u64, then: u64| now.saturating_sub(then) as f64 / dt;
        let windows: Vec<HistogramSnapshot> = self
            .latency
            .iter()
            .zip(&prev.latency)
            .map(|(now, then)| now.delta(then))
            .collect();
        let total: u64 = windows.iter().map(HistogramSnapshot::count).sum();
        let mut values = vec![total as f64 / dt, rate(self.errors, prev.errors)];
        for w in &windows {
            values.push(w.count() as f64 / dt);
            values.push(w.quantile(0.5) * 1e3);
            values.push(w.quantile(0.99) * 1e3);
        }
        values.extend([
            self.open as f64,
            rate(self.shed, prev.shed),
            rate(self.timeouts, prev.timeouts),
            rate(self.failovers, prev.failovers),
            rate(self.retries, prev.retries),
            self.workers_up as f64,
            rss_bytes().unwrap_or(0) as f64,
            self.uptime_s,
        ]);
        values
    }
}

#[derive(Debug)]
struct GatewayState {
    router: Router,
    shutdown: AtomicBool,
    /// Event-loop counters (open/accepted/shed/timeouts).
    loop_stats: Arc<LoopStats>,
    started: Instant,
    requests: GatewayCounters,
    /// This gateway's flight recorder — separate from any co-hosted
    /// worker's (`mcdla cluster` runs both tiers in one process).
    recorder: FlightRecorder,
    latency: LatencyFamily,
    slow_ms: Option<u64>,
    /// Retained telemetry rings, fed by the background sampler.
    history: Arc<History>,
}

/// Finishes the request trace: records it and observes the endpoint
/// latency. The wide event is emitted by the call site — only it knows
/// the queue time and byte count.
fn finish_trace(
    state: &GatewayState,
    scope: TraceScope,
    rid: &str,
    endpoint: &'static str,
    status: u16,
) -> Arc<TraceRecord> {
    let record = scope.finish(rid.to_owned(), endpoint, status);
    if let Some(hist) = state.latency.get(endpoint) {
        hist.observe(record.total_us as f64 / 1e6);
    }
    state.recorder.record(record)
}

/// A bound-but-not-yet-serving gateway.
#[derive(Debug)]
pub struct Gateway {
    listener: TcpListener,
    loop_config: LoopConfig,
    probe_interval: Option<Duration>,
    sample_ms: Option<u64>,
    state: Arc<GatewayState>,
}

/// Handle to a running gateway: resolved address, router view, clean
/// shutdown.
#[derive(Debug)]
pub struct GatewayHandle {
    addr: SocketAddr,
    state: Arc<GatewayState>,
    loops: LoopHandle,
    prober: Option<std::thread::JoinHandle<()>>,
    sampler: Option<Sampler>,
}

impl Gateway {
    /// Binds the listener and builds the router over the backends.
    pub fn bind(config: &GatewayConfig) -> Result<Gateway, String> {
        if config.threads == 0 {
            return Err("thread count must be >= 1 (got `0`)".into());
        }
        let router = Router::new(
            config.backends.iter().cloned(),
            config.timeouts,
            config.max_idle_per_worker,
        )?;
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        // Serving turns tracing on process-wide (spans are otherwise
        // inert so batch runs pay nothing).
        mcdla_obs::set_enabled(true);
        let sample_ms = match config.sample_ms {
            Some(0) => None,
            Some(n) => Some(n),
            None => mcdla_obs::sample_ms_from_env(),
        };
        let history = Arc::new(History::new(
            gateway_series_names(),
            mcdla_obs::history_cap_from_env(),
            sample_ms.unwrap_or(0),
        ));
        Ok(Gateway {
            listener,
            loop_config: LoopConfig {
                loops: config.loops.max(1),
                workers: config.threads,
                queue_depth: config.queue_depth.max(1),
                idle_timeout: READ_TIMEOUT,
                request_timeout: READ_TIMEOUT,
            },
            probe_interval: config.probe_interval,
            sample_ms,
            state: Arc::new(GatewayState {
                router,
                shutdown: AtomicBool::new(false),
                loop_stats: Arc::new(LoopStats::default()),
                started: Instant::now(),
                requests: GatewayCounters::default(),
                recorder: FlightRecorder::from_env(),
                latency: LatencyFamily::new(ENDPOINT_LABELS),
                slow_ms: trace::slow_ms_from_env(),
                history,
            }),
        })
    }

    /// The resolved listen address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The routing core (topology + worker health).
    pub fn router(&self) -> &Router {
        &self.state.router
    }

    /// Starts the event loop and worker pool (and the health prober) in
    /// background threads and returns a handle.
    pub fn spawn(self) -> std::io::Result<GatewayHandle> {
        let addr = self.listener.local_addr()?;
        let service = Arc::new(GatewayService {
            state: self.state.clone(),
        });
        let loops = spawn_event_loop(
            self.listener,
            service,
            &self.loop_config,
            self.state.loop_stats.clone(),
        )?;
        let prober = match self.probe_interval {
            Some(interval) => Some(
                std::thread::Builder::new()
                    .name("mcdla-gateway-probe".to_owned())
                    .spawn({
                        let state = self.state.clone();
                        move || probe_loop(&state, interval)
                    })?,
            ),
            None => None,
        };
        let sampler = self.sample_ms.map(|interval_ms| {
            let state = self.state.clone();
            let mut previous = GatewayTick::capture(&state);
            Sampler::spawn(interval_ms, move || {
                let current = GatewayTick::capture(&state);
                state
                    .history
                    .record(unix_ms(), &current.series_values(&previous));
                previous = current;
            })
        });
        Ok(GatewayHandle {
            addr,
            state: self.state,
            loops,
            prober,
            sampler,
        })
    }

    /// Runs the gateway on background threads and parks the calling
    /// thread until they exit — the `mcdla gateway` entry point (it
    /// runs until the process is killed).
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        handle.loops.join();
        if let Some(p) = handle.prober {
            let _ = p.join();
        }
        Ok(())
    }
}

impl GatewayHandle {
    /// The resolved listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing core (topology + worker health).
    pub fn router(&self) -> &Router {
        &self.state.router
    }

    /// Stops the event loop and worker pool and joins every thread
    /// (including the prober). In-flight responses finish first; idle
    /// keep-alive connections close immediately — the loop owns them,
    /// so no thread is parked in a blocking read anywhere.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(sampler) = self.sampler {
            sampler.stop();
        }
        self.loops.shutdown();
        if let Some(p) = self.prober {
            let _ = p.join();
        }
    }
}

/// The background health prober: probes every worker each `interval`,
/// waking often enough that shutdown never waits a full period.
fn probe_loop(state: &GatewayState, interval: Duration) {
    let tick = Duration::from_millis(50).min(interval);
    let mut last = Instant::now();
    // First probe immediately: a fleet spawned against a dead backend
    // should learn so before the first request.
    state.router.probe_all();
    while !state.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        if last.elapsed() >= interval {
            last = Instant::now();
            state.router.probe_all();
            // Probes may take a while against black-holed workers; check
            // the flag right after rather than sleeping first.
        }
    }
}

/// The gateway's [`Service`]: locally answered endpoints run on the
/// loop thread, anything that makes a gateway→fleet round trip
/// detaches to the worker pool.
struct GatewayService {
    state: Arc<GatewayState>,
}

impl Service for GatewayService {
    fn fast(&self, request: &Request) -> Option<FastAnswer> {
        respond_fast(&self.state, request)
    }

    fn handle(&self, request: &Request, stream: &mut TcpStream, queued: Duration) -> bool {
        respond_heavy(&self.state, request, stream, queued)
    }

    fn shed(&self, request: &Request) -> FastAnswer {
        shed_answer(&self.state, request)
    }

    fn wire_error(&self, error: &WireError) -> Vec<u8> {
        self.state.requests.errors.fetch_add(1, Ordering::Relaxed);
        trace::wire_error_answer("gateway", "mcdla-gateway", error)
    }
}

/// Builds the 429 + `Retry-After` load-shedding answer and records it
/// like any other request (error counter, latency histogram, trace).
fn shed_answer(state: &GatewayState, request: &Request) -> FastAnswer {
    state.requests.errors.fetch_add(1, Ordering::Relaxed);
    let (path, _) = split_target(&request.path);
    let endpoint = endpoint_label(path);
    let rid = trace::request_trace_id(request);
    let scope = TraceScope::begin();
    let record = scope.finish(rid.clone(), endpoint, 429);
    if let Some(hist) = state.latency.get(endpoint) {
        hist.observe(record.total_us as f64 / 1e6);
    }
    trace::wide_event(
        "gateway",
        "mcdla-gateway",
        state.slow_ms,
        &record,
        None,
        0,
        0,
        &[],
    );
    state.recorder.record(record);
    let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
    let mut out = Vec::new();
    let _ = write_response_with(
        &mut out,
        429,
        "application/json",
        &[("retry-after", "1"), (REQUEST_ID_HEADER, &rid)],
        &error_body("request queue is full; retry shortly"),
        keep_alive,
    );
    FastAnswer {
        bytes: out,
        keep_alive,
    }
}

/// Answers a request inline on the loop thread when it never leaves
/// this process: health, metrics, debug endpoints, and the 405/404
/// rejections. Forwards, scatters, and fleet-stats scrapes return
/// `None` — the loop thread must never block on a backend round trip.
fn respond_fast(state: &Arc<GatewayState>, request: &Request) -> Option<FastAnswer> {
    let (path, query) = split_target(&request.path);
    if matches!(
        (request.method.as_str(), path),
        ("POST", "/simulate")
            | ("POST", "/grid")
            | ("GET", "/cluster/stats")
            | ("GET", "/cluster/history")
    ) {
        return None;
    }
    let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
    let endpoint = endpoint_label(path);
    let rid = trace::request_trace_id(request);
    let traced = query_flag(query, "trace");
    let scope = TraceScope::begin();
    // A panicking handler must not take the loop thread down.
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(request, state, &rid)))
            .unwrap_or_else(|_| Outcome::error(500, "internal error handling the request"));
    if outcome.status >= 400 {
        state.requests.errors.fetch_add(1, Ordering::Relaxed);
    }
    let record = finish_trace(state, scope, &rid, endpoint, outcome.status);
    let body = if traced && outcome.status < 400 && outcome.content_type == "application/json" {
        // Fast outcomes never carry an upstream worker (forwards are
        // heavy), so the graft is the gateway's own span tree alone.
        trace::graft_json(
            &outcome.body,
            "trace",
            trace::trace_value("mcdla-gateway", &record),
        )
    } else {
        outcome.body
    };
    trace::wide_event(
        "gateway",
        "mcdla-gateway",
        state.slow_ms,
        &record,
        None,
        0,
        body.len() as u64,
        &[],
    );
    let mut out = Vec::new();
    let _ = write_response_with(
        &mut out,
        outcome.status,
        outcome.content_type,
        &[(REQUEST_ID_HEADER, &rid)],
        &body,
        keep_alive,
    );
    Some(FastAnswer {
        bytes: out,
        keep_alive,
    })
}

/// Handles one fleet-bound request on a pool worker with a blocking
/// stream: `/simulate` forwards, `/grid` scatters (buffered and
/// streamed), and `/cluster/stats` scrapes. Returns whether the
/// connection should stay open.
fn respond_heavy(
    state: &Arc<GatewayState>,
    request: &Request,
    writer: &mut TcpStream,
    queued: Duration,
) -> bool {
    let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
    let (path, query) = split_target(&request.path);
    let endpoint = endpoint_label(path);
    let rid = trace::request_trace_id(request);
    let traced = query_flag(query, "trace");
    let queue_us = queued.as_micros().min(u128::from(u64::MAX)) as u64;
    let scope = TraceScope::begin();
    if request.method == "POST" && path == "/grid" && query_flag(query, "stream") {
        state.requests.grid.fetch_add(1, Ordering::Relaxed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stream_grid(&request.body, state, writer, keep_alive, &rid)
        }));
        let status = match &outcome {
            Ok(StreamOutcome::Rejected(o)) => o.status,
            Ok(StreamOutcome::Streamed { .. }) => 200,
            Err(_) => 500,
        };
        let record = finish_trace(state, scope, &rid, endpoint, status);
        return match outcome {
            Ok(StreamOutcome::Rejected(outcome)) => {
                state.requests.errors.fetch_add(1, Ordering::Relaxed);
                trace::wide_event(
                    "gateway",
                    "mcdla-gateway",
                    state.slow_ms,
                    &record,
                    None,
                    queue_us,
                    outcome.body.len() as u64,
                    &[("stream", true.into())],
                );
                write_response_with(
                    writer,
                    outcome.status,
                    outcome.content_type,
                    &[(REQUEST_ID_HEADER, &rid)],
                    &outcome.body,
                    keep_alive,
                )
                .is_ok()
                    && keep_alive
            }
            Ok(StreamOutcome::Streamed { bytes, clean }) => {
                trace::wide_event(
                    "gateway",
                    "mcdla-gateway",
                    state.slow_ms,
                    &record,
                    None,
                    queue_us,
                    bytes,
                    &[("stream", true.into()), ("clean", clean.into())],
                );
                let _ = writer.flush();
                clean && keep_alive
            }
            // A panic after the 200 head: close without the terminal
            // chunk, exactly like the worker.
            Err(_) => {
                state.requests.errors.fetch_add(1, Ordering::Relaxed);
                trace::wide_event(
                    "gateway",
                    "mcdla-gateway",
                    state.slow_ms,
                    &record,
                    None,
                    queue_us,
                    0,
                    &[("stream", true.into()), ("panic", true.into())],
                );
                false
            }
        };
    }
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(request, state, &rid)))
            .unwrap_or_else(|_| Outcome::error(500, "internal error handling the request"));
    if outcome.status >= 400 {
        state.requests.errors.fetch_add(1, Ordering::Relaxed);
    }
    let upstream = outcome.upstream;
    let record = finish_trace(state, scope, &rid, endpoint, outcome.status);
    let body = if traced && outcome.status < 400 && outcome.content_type == "application/json" {
        let mut tv = trace::trace_value("mcdla-gateway", &record);
        if let (Value::Map(entries), Some(worker)) = (&mut tv, outcome.upstream) {
            entries.push(("upstream".into(), upstream_trace_value(state, worker, &rid)));
        }
        trace::graft_json(&outcome.body, "trace", tv)
    } else {
        outcome.body
    };
    let extra: Vec<(&str, mcdla_obs::log::LogValue)> = match upstream {
        Some(worker) => vec![("worker", (worker as u64).into())],
        None => Vec::new(),
    };
    trace::wide_event(
        "gateway",
        "mcdla-gateway",
        state.slow_ms,
        &record,
        None,
        queue_us,
        body.len() as u64,
        &extra,
    );
    write_response_with(
        writer,
        outcome.status,
        outcome.content_type,
        &[(REQUEST_ID_HEADER, &rid)],
        &body,
        keep_alive,
    )
    .is_ok()
        && keep_alive
}

struct Outcome {
    status: u16,
    body: String,
    content_type: &'static str,
    /// The worker index that answered (set by `/simulate` forwards so a
    /// traced response can embed that worker's sub-trace).
    upstream: Option<usize>,
}

impl Outcome {
    fn ok(body: String) -> Self {
        Outcome {
            status: 200,
            body,
            content_type: "application/json",
            upstream: None,
        }
    }

    fn passthrough(status: u16, body: String) -> Self {
        Outcome {
            status,
            body,
            content_type: "application/json",
            upstream: None,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Outcome {
            status,
            body: error_body(message),
            content_type: "application/json",
            upstream: None,
        }
    }

    /// An error body carrying the request id, so a client holding a 502
    /// can quote the id that `/debug/requests` will list.
    fn error_with_rid(status: u16, message: &str, rid: &str) -> Self {
        let mut outcome = Outcome::error(status, message);
        outcome.body = trace::graft_json(&outcome.body, "request_id", Value::Str(rid.to_owned()));
        outcome
    }
}

impl From<GatewayError> for Outcome {
    fn from(e: GatewayError) -> Self {
        Outcome::error(e.status, &e.message)
    }
}

/// Fetches the answering worker's recorded trace for `rid` and wraps it
/// as the `upstream` block of a gateway trace: `[{worker, addr, trace}]`.
/// A worker that cannot produce the trace yields `"trace": null` rather
/// than failing the response.
fn upstream_trace_value(state: &GatewayState, worker: usize, rid: &str) -> Value {
    let w = &state.router.workers()[worker];
    let trace = w
        .pool()
        .request("GET", &format!("/debug/trace/{rid}"), None)
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| serde::json::parse(&r.body).ok())
        .unwrap_or(Value::Null);
    Value::Seq(vec![Value::Map(vec![
        ("worker".into(), Value::U64(worker as u64)),
        ("addr".into(), Value::Str(w.addr().to_owned())),
        ("trace".into(), trace),
    ])])
}

fn route(request: &Request, state: &Arc<GatewayState>, rid: &str) -> Outcome {
    let (path, query) = split_target(&request.path);
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            state.requests.healthz.fetch_add(1, Ordering::Relaxed);
            let router = &state.router;
            Outcome::ok(serde::json::to_string(&Value::Map(vec![
                ("status".into(), Value::Str("ok".into())),
                ("service".into(), Value::Str("mcdla-gateway".into())),
                (
                    "uptime_seconds".into(),
                    Value::F64(state.started.elapsed().as_secs_f64()),
                ),
                ("build".into(), trace::build_value()),
                ("workers".into(), Value::U64(router.workers().len() as u64)),
                ("workers_up".into(), Value::U64(router.up_count() as u64)),
            ])))
        }
        ("GET", "/cluster/stats") => {
            state.requests.cluster_stats.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(serde::json::to_string_pretty(&cluster_stats_value(state)))
        }
        ("GET", "/cluster/history") => {
            state.requests.cluster_stats.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(serde::json::to_string_pretty(&cluster_history_value(
                state, query,
            )))
        }
        ("GET", "/metrics/history") => {
            state.requests.metrics.fetch_add(1, Ordering::Relaxed);
            let (filter, last) = trace::history_query(query);
            let dump = state.history.dump(filter.as_deref(), last);
            Outcome::ok(serde::json::to_string_pretty(&trace::history_value(
                "mcdla-gateway",
                &dump,
            )))
        }
        ("GET", "/metrics") => {
            state.requests.metrics.fetch_add(1, Ordering::Relaxed);
            Outcome {
                status: 200,
                body: metrics_text(state),
                content_type: mcdla_serve::metrics::CONTENT_TYPE,
                upstream: None,
            }
        }
        ("POST", "/simulate") => {
            state.requests.simulate.fetch_add(1, Ordering::Relaxed);
            simulate_endpoint(&request.body, state, rid)
        }
        ("POST", "/grid") => {
            state.requests.grid.fetch_add(1, Ordering::Relaxed);
            grid_endpoint(&request.body, state, rid)
        }
        ("GET", "/debug/requests") => {
            state.requests.debug.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(serde::json::to_string_pretty(&trace::debug_requests_value(
                "mcdla-gateway",
                &state.recorder,
                query_param(query, "sort"),
                query_param(query, "endpoint"),
                query_param(query, "limit"),
            )))
        }
        ("GET", p) if p.starts_with("/debug/trace/") => {
            state.requests.debug.fetch_add(1, Ordering::Relaxed);
            let id = p.trim_start_matches("/debug/trace/");
            match state.recorder.lookup(id) {
                Some(rec) => Outcome::ok(serde::json::to_string_pretty(&trace::trace_value(
                    "mcdla-gateway",
                    &rec,
                ))),
                None => Outcome::error(404, &format!("no trace recorded for request id `{id}`")),
            }
        }
        (
            _,
            "/healthz" | "/cluster/stats" | "/cluster/history" | "/metrics" | "/metrics/history",
        ) => Outcome::error(405, "use GET on this endpoint"),
        (_, "/simulate" | "/grid") => {
            Outcome::error(405, "use POST with a JSON body on this endpoint")
        }
        (_, p) if p == "/debug/requests" || p.starts_with("/debug/trace/") => {
            Outcome::error(405, "use GET on this endpoint")
        }
        (_, path) => Outcome::error(404, &format!("no such endpoint `{path}`")),
    }
}

fn parse_body<T: Deserialize>(body: &[u8], what: &str) -> Result<T, Outcome> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Outcome::error(400, &format!("{what} body is not valid utf-8")))?;
    serde::json::from_str(text).map_err(|e| Outcome::error(400, &format!("bad {what} JSON: {e}")))
}

/// `POST /simulate`: validate locally (the same 400s a worker would
/// answer), then forward the client's body verbatim along the scenario
/// key's failover chain. A worker's 2xx/4xx answer passes through
/// byte-for-byte; worker-unreachable becomes a 502 naming the workers.
fn simulate_endpoint(body: &[u8], state: &Arc<GatewayState>, rid: &str) -> Outcome {
    let scenario: Scenario = match parse_body(body, "scenario") {
        Ok(s) => s,
        Err(outcome) => return outcome,
    };
    if let Err(msg) = scenario.validate() {
        return Outcome::error(400, &msg);
    }
    let key = mcdla_core::key_hash(&scenario);
    let text = std::str::from_utf8(body).expect("validated utf-8 above");
    match state.router.forward_with(
        key,
        "POST",
        "/simulate",
        &[(REQUEST_ID_HEADER, rid)],
        Some(text),
    ) {
        Ok((worker, response)) => {
            let mut outcome = Outcome::passthrough(response.status, response.body);
            outcome.upstream = Some(worker);
            outcome
        }
        Err(e) => Outcome::error_with_rid(e.status, &e.message, rid),
    }
}

/// `POST /grid` (buffered): expand, partition by owner, scatter-gather,
/// merge back into single-node cell order.
fn grid_endpoint(body: &[u8], state: &Arc<GatewayState>, rid: &str) -> Outcome {
    let scenarios = match gateway_grid_scenarios(body, MAX_GRID_CELLS) {
        Ok(s) => s,
        Err(outcome) => return outcome,
    };
    match scatter_buffered(&state.router, &scenarios) {
        Ok(cells) => Outcome::ok(serde::json::to_string_pretty(&Value::Map(vec![
            ("count".into(), Value::U64(cells.len() as u64)),
            ("cells".into(), Value::Seq(cells)),
        ]))),
        Err(e) => Outcome::error_with_rid(e.status, &e.message, rid),
    }
}

/// Parses and validates a grid body into runnable scenarios (the same
/// rules the worker applies, so rejections never reach the fleet).
fn gateway_grid_scenarios(body: &[u8], max_cells: usize) -> Result<Vec<Scenario>, Outcome> {
    let request: GridRequest = parse_body(body, "grid")?;
    let scenarios = request
        .scenarios_bounded(max_cells)
        .map_err(|msg| Outcome::error(400, &msg))?;
    if let Some(msg) = scenarios.iter().find_map(|s| s.validate().err()) {
        return Err(Outcome::error(400, &msg));
    }
    Ok(scenarios)
}

/// How `POST /grid?stream=1` ended at the gateway.
enum StreamOutcome {
    /// Rejected before any chunk was written (400/502 buffered answer).
    Rejected(Outcome),
    /// The 200 head went out. `clean` is false when a worker stream or
    /// the client write failed mid-flight — the gateway then closes
    /// without the terminal chunk, exactly the worker's contract.
    Streamed {
        /// Payload bytes forwarded (cell lines, not chunk framing).
        bytes: u64,
        clean: bool,
    },
}

/// Scatter-gather streaming: open one `?stream=1` sub-stream per owning
/// worker (every worker starts computing immediately), then forward
/// each worker's NDJSON lines — verbatim bytes — in worker-index order.
///
/// * Worker unreachable **at open time** (before the gateway's 200
///   head): its slice fails over to the next replicas; if no worker can
///   take a slice, the whole request is a buffered 502.
/// * Worker failure **mid-stream** (truncated sub-stream, short cell
///   count, or a non-200 sub-stream head): the gateway closes its own
///   response without the terminal chunk and drops the remaining worker
///   connections, which cancels their outstanding cells.
fn stream_grid(
    body: &[u8],
    state: &Arc<GatewayState>,
    writer: &mut TcpStream,
    keep_alive: bool,
    rid: &str,
) -> StreamOutcome {
    let scenarios = match gateway_grid_scenarios(body, MAX_STREAM_CELLS) {
        Ok(s) => s,
        Err(outcome) => return StreamOutcome::Rejected(outcome),
    };
    let router = &state.router;

    // Duplicate cells are computed once: only canonical indices reach
    // the fleet, and the gateway re-emits the canonical line for each
    // duplicate, so the client still gets one line per input cell.
    let canon = crate::merge::canonical_indices(&scenarios);
    let keys = crate::merge::routing_keys(&scenarios);
    let mut dup_count: Vec<usize> = vec![0; scenarios.len()];
    for (i, &c) in canon.iter().enumerate() {
        if c != i {
            dup_count[c] += 1;
        }
    }

    // Open phase: partition and start every sub-stream, failing slices
    // over while nothing has been written to the client yet.
    let mut opened: Vec<(crate::pool::PooledConn<'_>, Vec<usize>, usize)> = Vec::new();
    let mut pending: Vec<usize> = (0..scenarios.len()).filter(|&i| canon[i] == i).collect();
    let mut excluded: BTreeSet<usize> = BTreeSet::new();
    let mut failures: Vec<String> = Vec::new();
    while !pending.is_empty() {
        let parts = match partition_pending(router, &scenarios, &keys, &pending, &excluded) {
            Ok(parts) => parts,
            Err(e) => {
                let message = if failures.is_empty() {
                    e.message
                } else {
                    format!("{}: {}", e.message, failures.join("; "))
                };
                return StreamOutcome::Rejected(Outcome::error(e.status, &message));
            }
        };
        let mut next_pending = Vec::new();
        for part in parts {
            let worker = &router.workers()[part.worker];
            // Streams always ride a fresh connection: a stale pooled
            // keep-alive would fail only at first read — after the 200
            // head is out and failover is no longer possible.
            let attempt = worker.pool().connect_fresh().and_then(|mut conn| {
                conn.get()
                    .start_stream("POST", "/grid?stream=1", Some(&part.body))
                    .map(|()| conn)
            });
            match attempt {
                Ok(conn) => opened.push((conn, part.indices, part.worker)),
                Err(e) => {
                    worker.mark_down(&e);
                    failures.push(format!("worker {} ({}): {e}", part.worker, worker.addr()));
                    excluded.insert(part.worker);
                    next_pending.extend(part.indices);
                }
            }
        }
        if !next_pending.is_empty() {
            router.failovers.fetch_add(1, Ordering::Relaxed);
        }
        next_pending.sort_unstable();
        pending = next_pending;
    }

    if write_chunked_head_with(writer, 200, &[(REQUEST_ID_HEADER, rid)], keep_alive).is_err() {
        return StreamOutcome::Streamed {
            bytes: 0,
            clean: false,
        };
    }

    // Drain phase: worker-index-ordered partitions, lines forwarded as
    // raw bytes (cell payloads stay byte-identical to the worker's).
    let mut bytes = 0u64;
    for (mut conn, indices, worker_idx) in opened {
        let worker = &router.workers()[worker_idx];
        let mut stream = match conn.get().read_stream() {
            Ok(stream) => stream,
            Err(e) => {
                worker.mark_down(&e);
                return StreamOutcome::Streamed {
                    bytes,
                    clean: false,
                };
            }
        };
        if stream.status != 200 {
            worker.failures.fetch_add(1, Ordering::Relaxed);
            stream.abandon();
            return StreamOutcome::Streamed {
                bytes,
                clean: false,
            };
        }
        let mut lines = 0usize;
        loop {
            match stream.next_line() {
                Some(Ok(mut line)) => {
                    line.push('\n');
                    // One copy for the canonical cell plus one per
                    // duplicate the gateway held back from the fleet.
                    let copies = 1 + indices.get(lines).map_or(0, |&i| dup_count[i]);
                    for _ in 0..copies {
                        if write_chunk(writer, line.as_bytes()).is_err() {
                            // Client went away: abandoning (not
                            // draining) closes the worker connection,
                            // cancelling its remaining cells.
                            stream.abandon();
                            return StreamOutcome::Streamed {
                                bytes,
                                clean: false,
                            };
                        }
                        bytes += line.len() as u64;
                    }
                    lines += 1;
                }
                Some(Err(e)) => {
                    worker.mark_down(&format!("sub-stream died: {e}"));
                    stream.abandon();
                    return StreamOutcome::Streamed {
                        bytes,
                        clean: false,
                    };
                }
                None => break,
            }
        }
        drop(stream);
        if lines != indices.len() {
            // A clean terminal chunk with missing cells is a protocol
            // violation; the client must not see it as a complete grid.
            worker.mark_down(&format!(
                "sub-stream ended cleanly after {lines} of {} cells",
                indices.len()
            ));
            return StreamOutcome::Streamed {
                bytes,
                clean: false,
            };
        }
        worker.answered.fetch_add(1, Ordering::Relaxed);
        // `conn` drops here un-parked — fresh-per-stream policy.
    }
    StreamOutcome::Streamed {
        bytes,
        clean: finish_chunked(writer).is_ok(),
    }
}

/// Pulls a `u64` out of a nested JSON map (`path` of keys).
fn value_u64(value: &Value, path: &[&str]) -> Option<u64> {
    let mut current = value;
    for key in path {
        let Value::Map(entries) = current else {
            return None;
        };
        current = &entries.iter().find(|(k, _)| k == key)?.1;
    }
    match current {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        Value::F64(n) if *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

/// Pulls an `f64` out of a JSON scalar.
fn value_f64(value: &Value) -> Option<f64> {
    match value {
        Value::F64(n) => Some(*n),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// Pulls one named series out of a worker's `/metrics/history` body.
fn history_series(history: &Value, name: &str) -> Option<Vec<f64>> {
    let Value::Map(entries) = history else {
        return None;
    };
    let series = &entries.iter().find(|(k, _)| k == "series")?.1;
    let Value::Map(series) = series else {
        return None;
    };
    let Value::Seq(points) = &series.iter().find(|(k, _)| k == name)?.1 else {
        return None;
    };
    Some(points.iter().filter_map(value_f64).collect())
}

/// Pulls the timestamp ring out of a worker's `/metrics/history` body.
fn history_timestamps(history: &Value) -> Option<Vec<u64>> {
    let Value::Map(entries) = history else {
        return None;
    };
    let Value::Seq(points) = &entries.iter().find(|(k, _)| k == "timestamps_ms")?.1 else {
        return None;
    };
    Some(
        points
            .iter()
            .filter_map(|v| value_f64(v).map(|n| n as u64))
            .collect(),
    )
}

/// `GET /cluster/history`: the gateway's own retained series plus one
/// `GET /metrics/history` scrape of every worker, with fleet-wide
/// aggregates. Workers sample on independent clocks, so the fleet view
/// aligns rings **from the tail** — sample `j` of the fleet series sums
/// the `j`-th-from-last sample of every reachable worker — and only
/// spans the window every reachable worker has retained. `?last=` is
/// forwarded to the workers; `?series=` filters only the gateway's own
/// block (the fleet aggregate always needs the store series).
/// One worker's scraped rings: (timestamps, req/s, hits/s, misses/s).
type WorkerTail = (Vec<u64>, Vec<f64>, Vec<f64>, Vec<f64>);

fn cluster_history_value(state: &Arc<GatewayState>, query: Option<&str>) -> Value {
    let (filter, last) = trace::history_query(query);
    let router = &state.router;
    let path = match last {
        Some(n) => format!("/metrics/history?last={n}"),
        None => "/metrics/history".to_owned(),
    };
    // Tail-aligned accumulators: per-worker (timestamps, req, hits,
    // misses) kept until every reachable worker has answered.
    let mut tails: Vec<WorkerTail> = Vec::new();
    let mut workers = Vec::new();
    let mut up = 0u64;
    for (i, worker) in router.workers().iter().enumerate() {
        let mut entry = vec![
            ("index".into(), Value::U64(i as u64)),
            ("addr".into(), Value::Str(worker.addr().to_owned())),
        ];
        match worker.pool().request("GET", &path, None) {
            Ok(response) if response.status == 200 => {
                worker.mark_up();
                up += 1;
                match serde::json::parse(&response.body) {
                    Ok(history) => {
                        let timestamps = history_timestamps(&history).unwrap_or_default();
                        let req = history_series(&history, "req_per_s").unwrap_or_default();
                        let hits = history_series(&history, "store.hits_per_s").unwrap_or_default();
                        let misses =
                            history_series(&history, "store.misses_per_s").unwrap_or_default();
                        tails.push((timestamps, req, hits, misses));
                        entry.push(("up".into(), Value::Bool(true)));
                        entry.push(("history".into(), history));
                    }
                    Err(_) => {
                        entry.push(("up".into(), Value::Bool(true)));
                        entry.push(("history".into(), Value::Null));
                    }
                }
            }
            Ok(response) => {
                entry.push(("up".into(), Value::Bool(worker.is_up())));
                entry.push((
                    "error".into(),
                    Value::Str(format!("history answered HTTP {}", response.status)),
                ));
            }
            Err(e) => {
                worker.mark_down(&e);
                entry.push(("up".into(), Value::Bool(false)));
                entry.push(("error".into(), Value::Str(e)));
            }
        }
        workers.push(Value::Map(entry));
    }

    // The overlapping window: the shortest retained tail across every
    // scraped worker (zero when any worker has no samples yet).
    let samples = tails.iter().map(|(ts, ..)| ts.len()).min().unwrap_or(0);
    let tail = |ring: &[f64], j: usize| ring[ring.len() - samples + j];
    let mut timestamps = Vec::with_capacity(samples);
    let mut fleet_req = Vec::with_capacity(samples);
    let mut fleet_hits = Vec::with_capacity(samples);
    let mut fleet_misses = Vec::with_capacity(samples);
    let mut fleet_hit_rate = Vec::with_capacity(samples);
    for j in 0..samples {
        // Each fleet sample is stamped with the newest worker stamp it
        // folds in — the most recent moment the sample describes.
        timestamps.push(Value::U64(
            tails
                .iter()
                .map(|(ts, ..)| ts[ts.len() - samples + j])
                .max()
                .unwrap_or(0),
        ));
        let (mut req, mut hits, mut misses) = (0.0, 0.0, 0.0);
        for (_, r, h, m) in &tails {
            // A worker tail shorter than `samples` cannot happen (the
            // window is the minimum), but stay defensive on ring sizes.
            if r.len() >= samples {
                req += tail(r, j);
            }
            if h.len() >= samples {
                hits += tail(h, j);
            }
            if m.len() >= samples {
                misses += tail(m, j);
            }
        }
        fleet_req.push(Value::F64(req));
        fleet_hits.push(Value::F64(hits));
        fleet_misses.push(Value::F64(misses));
        fleet_hit_rate.push(Value::F64(if hits + misses > 0.0 {
            hits / (hits + misses)
        } else {
            0.0
        }));
    }

    let gateway_dump = state.history.dump(filter.as_deref(), last);
    Value::Map(vec![
        ("service".into(), Value::Str("mcdla-gateway".into())),
        (
            "gateway".into(),
            trace::history_value("mcdla-gateway", &gateway_dump),
        ),
        (
            "fleet".into(),
            Value::Map(vec![
                ("workers".into(), Value::U64(router.workers().len() as u64)),
                ("up".into(), Value::U64(up)),
                ("samples".into(), Value::U64(samples as u64)),
                ("timestamps_ms".into(), Value::Seq(timestamps)),
                (
                    "series".into(),
                    Value::Map(vec![
                        ("req_per_s".into(), Value::Seq(fleet_req)),
                        ("store.hits_per_s".into(), Value::Seq(fleet_hits)),
                        ("store.misses_per_s".into(), Value::Seq(fleet_misses)),
                        ("store.hit_rate".into(), Value::Seq(fleet_hit_rate)),
                    ]),
                ),
            ]),
        ),
        ("workers".into(), Value::Seq(workers)),
    ])
}

/// `GET /cluster/stats`: gateway counters plus one `GET /stats` scrape
/// of every worker, with fleet-wide store totals.
fn cluster_stats_value(state: &GatewayState) -> Value {
    let router = &state.router;
    let mut workers = Vec::new();
    let mut fleet_entries = 0u64;
    let mut fleet_hits = 0u64;
    let mut fleet_misses = 0u64;
    let mut fleet_evictions = 0u64;
    let mut reachable = 0u64;
    for (i, worker) in router.workers().iter().enumerate() {
        let mut entry = vec![
            ("index".into(), Value::U64(i as u64)),
            ("addr".into(), Value::Str(worker.addr().to_owned())),
            (
                "answered".into(),
                Value::U64(worker.answered.load(Ordering::Relaxed)),
            ),
            (
                "failures".into(),
                Value::U64(worker.failures.load(Ordering::Relaxed)),
            ),
        ];
        match worker.pool().request("GET", "/stats", None) {
            Ok(response) if response.status == 200 => {
                worker.mark_up();
                reachable += 1;
                if let Ok(stats) = serde::json::parse(&response.body) {
                    fleet_entries += value_u64(&stats, &["store", "entries"]).unwrap_or(0);
                    fleet_hits += value_u64(&stats, &["store", "hits"]).unwrap_or(0);
                    fleet_misses += value_u64(&stats, &["store", "misses"]).unwrap_or(0);
                    fleet_evictions += value_u64(&stats, &["store", "evictions"]).unwrap_or(0);
                    entry.push(("up".into(), Value::Bool(true)));
                    entry.push(("stats".into(), stats));
                } else {
                    entry.push(("up".into(), Value::Bool(true)));
                    entry.push(("stats".into(), Value::Null));
                }
            }
            Ok(response) => {
                entry.push(("up".into(), Value::Bool(worker.is_up())));
                entry.push((
                    "error".into(),
                    Value::Str(format!("stats answered HTTP {}", response.status)),
                ));
            }
            Err(e) => {
                worker.mark_down(&e);
                entry.push(("up".into(), Value::Bool(false)));
                entry.push(("error".into(), Value::Str(e)));
            }
        }
        workers.push(Value::Map(entry));
    }
    Value::Map(vec![
        ("service".into(), Value::Str("mcdla-gateway".into())),
        (
            "uptime_seconds".into(),
            Value::F64(state.started.elapsed().as_secs_f64()),
        ),
        ("build".into(), trace::build_value()),
        (
            "gateway".into(),
            Value::Map(vec![
                ("requests".into(), state.requests.to_value()),
                (
                    "connections".into(),
                    Value::Map(vec![
                        ("open".into(), Value::U64(state.loop_stats.open())),
                        ("accepted".into(), Value::U64(state.loop_stats.accepted())),
                        ("shed".into(), Value::U64(state.loop_stats.shed())),
                        (
                            "request_timeouts".into(),
                            Value::U64(state.loop_stats.request_timeouts()),
                        ),
                        (
                            "idle_closed".into(),
                            Value::U64(state.loop_stats.idle_closed()),
                        ),
                    ]),
                ),
                (
                    "failovers".into(),
                    Value::U64(router.failovers.load(Ordering::Relaxed)),
                ),
                ("retries".into(), Value::U64(router.retries())),
            ]),
        ),
        (
            "fleet".into(),
            Value::Map(vec![
                ("workers".into(), Value::U64(router.workers().len() as u64)),
                ("up".into(), Value::U64(reachable)),
                ("entries".into(), Value::U64(fleet_entries)),
                ("hits".into(), Value::U64(fleet_hits)),
                ("misses".into(), Value::U64(fleet_misses)),
                ("evictions".into(), Value::U64(fleet_evictions)),
            ]),
        ),
        ("workers".into(), Value::Seq(workers)),
    ])
}

/// The gateway's `GET /metrics` Prometheus exposition.
fn metrics_text(state: &GatewayState) -> String {
    let router = &state.router;
    let mut b = MetricsBuilder::new();
    b.scalar(
        "mcdla_gateway_up",
        "Whether this gateway is serving.",
        "gauge",
        1.0,
    );
    b.scalar(
        "mcdla_gateway_uptime_seconds",
        "Seconds since this gateway started.",
        "gauge",
        state.started.elapsed().as_secs_f64(),
    );
    b.family(
        "mcdla_build_info",
        "Build metadata as labels (constant 1).",
        "gauge",
    );
    b.sample(
        "mcdla_build_info",
        &[
            ("version", mcdla_obs::build_version()),
            ("build", mcdla_obs::build_id()),
        ],
        1.0,
    );
    b.family(
        "mcdla_gateway_requests_total",
        "Requests handled, by endpoint (`errors` counts 4xx/5xx answers).",
        "counter",
    );
    for (endpoint, count) in state.requests.snapshot() {
        b.sample(
            "mcdla_gateway_requests_total",
            &[("endpoint", endpoint)],
            count as f64,
        );
    }
    b.scalar(
        "mcdla_gateway_open_connections",
        "Connections attached to the gateway event loop right now.",
        "gauge",
        state.loop_stats.open() as f64,
    );
    b.scalar(
        "mcdla_gateway_accepted_connections_total",
        "Connections accepted since start.",
        "counter",
        state.loop_stats.accepted() as f64,
    );
    b.scalar(
        "mcdla_gateway_requests_shed_total",
        "Requests answered 429 because the admission queue was full.",
        "counter",
        state.loop_stats.shed() as f64,
    );
    b.scalar(
        "mcdla_gateway_request_timeouts_total",
        "Requests answered 408 after stalling mid-head or mid-body.",
        "counter",
        state.loop_stats.request_timeouts() as f64,
    );
    b.scalar(
        "mcdla_gateway_idle_connections_closed_total",
        "Idle keep-alive connections closed silently.",
        "counter",
        state.loop_stats.idle_closed() as f64,
    );
    b.scalar(
        "mcdla_gateway_failovers_total",
        "Requests or grid slices answered by a non-owner worker.",
        "counter",
        router.failovers.load(Ordering::Relaxed) as f64,
    );
    b.scalar(
        "mcdla_gateway_retries_total",
        "Stale pooled-connection retries across all workers.",
        "counter",
        router.retries() as f64,
    );
    b.family(
        "mcdla_gateway_worker_up",
        "Health belief per worker (1 = up).",
        "gauge",
    );
    for worker in router.workers() {
        b.sample(
            "mcdla_gateway_worker_up",
            &[("worker", worker.addr())],
            if worker.is_up() { 1.0 } else { 0.0 },
        );
    }
    b.family(
        "mcdla_gateway_worker_answered_total",
        "Requests each worker answered for this gateway.",
        "counter",
    );
    for worker in router.workers() {
        b.sample(
            "mcdla_gateway_worker_answered_total",
            &[("worker", worker.addr())],
            worker.answered.load(Ordering::Relaxed) as f64,
        );
    }
    b.family(
        "mcdla_gateway_worker_failures_total",
        "Errors observed against each worker (connect/read failures and 5xx).",
        "counter",
    );
    for worker in router.workers() {
        b.sample(
            "mcdla_gateway_worker_failures_total",
            &[("worker", worker.addr())],
            worker.failures.load(Ordering::Relaxed) as f64,
        );
    }
    b.histogram_family(
        "mcdla_gateway_request_seconds",
        "Gateway request latency by endpoint, seconds.",
    );
    for (endpoint, snap) in state.latency.snapshots() {
        b.histogram(
            "mcdla_gateway_request_seconds",
            &[("endpoint", endpoint)],
            &snap,
        );
    }
    b.histogram_family(
        "mcdla_gateway_upstream_seconds",
        "Gateway->worker round-trip latency per upstream worker, seconds.",
    );
    for worker in router.workers() {
        b.histogram(
            "mcdla_gateway_upstream_seconds",
            &[("worker", worker.addr())],
            &worker.latency.snapshot(),
        );
    }
    b.finish()
}

/// A whole local fleet: `n` in-process workers on ephemeral loopback
/// ports plus a gateway routing across them. This is what
/// `mcdla cluster --workers N`, `cluster-bench`, and the integration
/// tests spawn.
#[derive(Debug)]
pub struct LocalFleet {
    /// The worker handles, in topology index order.
    pub workers: Vec<ServerHandle>,
    /// The gateway handle.
    pub gateway: GatewayHandle,
}

/// What [`spawn_local_fleet`] configures.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker count.
    pub workers: usize,
    /// Simulation worker-pool threads per worker node.
    pub worker_threads: usize,
    /// Result-store capacity per worker (`None` = unbounded).
    pub cache_cap: Option<usize>,
    /// Per-worker snapshot prefix: worker `i` persists to
    /// `{prefix}.w{i}.json`.
    pub snapshot_prefix: Option<std::path::PathBuf>,
    /// Gateway listen address (`127.0.0.1:0` for ephemeral).
    pub gateway_addr: String,
    /// Gateway worker-pool threads (concurrent fleet round trips).
    pub gateway_threads: usize,
    /// Gateway→worker deadlines.
    pub timeouts: Timeouts,
    /// Gateway health-probe period.
    pub probe_interval: Option<Duration>,
    /// Telemetry sampling cadence for every node (worker and gateway),
    /// in milliseconds. `None` defers to `MCDLA_SAMPLE_MS`; `Some(0)`
    /// disables sampling fleet-wide.
    pub sample_ms: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 2,
            worker_threads: 4,
            cache_cap: None,
            snapshot_prefix: None,
            gateway_addr: "127.0.0.1:0".to_owned(),
            gateway_threads: 8,
            timeouts: Timeouts::default(),
            probe_interval: Some(Duration::from_secs(2)),
            sample_ms: None,
        }
    }
}

/// The per-worker snapshot path for a fleet prefix.
pub fn worker_snapshot_path(prefix: &std::path::Path, index: usize) -> std::path::PathBuf {
    let mut name = prefix.as_os_str().to_owned();
    name.push(format!(".w{index}.json"));
    std::path::PathBuf::from(name)
}

/// Spawns an in-process fleet: workers on ephemeral ports, then a
/// gateway over them.
pub fn spawn_local_fleet(config: &FleetConfig) -> Result<LocalFleet, String> {
    if config.workers == 0 {
        return Err("a fleet needs at least one worker (got `--workers 0`)".into());
    }
    let mut workers = Vec::with_capacity(config.workers);
    let mut backends = Vec::with_capacity(config.workers);
    for i in 0..config.workers {
        let server = Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: config.worker_threads,
            cache_cap: config.cache_cap,
            snapshot: config
                .snapshot_prefix
                .as_deref()
                .map(|prefix| worker_snapshot_path(prefix, i)),
            sample_ms: config.sample_ms,
            ..ServeConfig::default()
        })?;
        let handle = server
            .spawn()
            .map_err(|e| format!("spawning worker {i}: {e}"))?;
        backends.push(handle.addr().to_string());
        workers.push(handle);
    }
    let gateway = Gateway::bind(&GatewayConfig {
        addr: config.gateway_addr.clone(),
        threads: config.gateway_threads,
        backends,
        timeouts: config.timeouts,
        probe_interval: config.probe_interval,
        max_idle_per_worker: 16,
        sample_ms: config.sample_ms,
        ..GatewayConfig::default()
    })?;
    let gateway = gateway
        .spawn()
        .map_err(|e| format!("spawning gateway: {e}"))?;
    Ok(LocalFleet { workers, gateway })
}

impl LocalFleet {
    /// The gateway's resolved address.
    pub fn gateway_addr(&self) -> SocketAddr {
        self.gateway.addr()
    }

    /// Worker addresses in topology order.
    pub fn worker_addrs(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr().to_string()).collect()
    }

    /// Shuts down the gateway, then every worker.
    pub fn shutdown(self) {
        self.gateway.shutdown();
        for worker in self.workers {
            worker.shutdown();
        }
    }
}
