//! The fleet topology: which workers exist and which worker owns which
//! scenario, decided by **rendezvous (highest-random-weight) hashing**
//! of the canonical result-store key.
//!
//! Rendezvous hashing gives the two properties a scenario cache shard
//! map needs:
//!
//! * **Agreement without coordination** — every gateway (and a restarted
//!   one) computes the same owner for a key from nothing but the worker
//!   address list, because both the scenario key
//!   ([`mcdla_core::key_hash`], the exact hash the `ResultStore` shards
//!   by) and the per-worker mixing are stable across processes.
//! * **Minimal disruption** — removing a worker reassigns only the keys
//!   that worker owned; every other key keeps its owner (and therefore
//!   its warm cache). Adding a worker steals only ~1/N of each
//!   incumbent's keys.
//!
//! The full ranking (not just the winner) doubles as the **failover
//! order**: the second-ranked worker for a key is its replica of last
//! resort, and so on down the list.

use mcdla_core::Scenario;

/// An ordered fleet of worker addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    workers: Vec<String>,
}

/// FNV-1a over a byte string — the same construction `Scenario::digest`
/// uses, applied to worker addresses so placement is stable across
/// processes and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: a full-avalanche mix of the (key, worker)
/// combination, so rendezvous scores are uniform even though scenario
/// key hashes are correlated across similar cells.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Topology {
    /// Builds a topology from worker addresses (`host:port`).
    /// Addresses are kept in the given order (worker indices are stable
    /// and name workers in stats, logs, and errors); duplicates and
    /// empties are errors.
    pub fn new<S: Into<String>>(addrs: impl IntoIterator<Item = S>) -> Result<Self, String> {
        let workers: Vec<String> = addrs
            .into_iter()
            .map(|a| a.into().trim().to_owned())
            .collect();
        if workers.is_empty() {
            return Err("a cluster needs at least one worker address".into());
        }
        for (i, w) in workers.iter().enumerate() {
            if w.is_empty() {
                return Err(format!("worker address {i} is empty"));
            }
            if workers[..i].contains(w) {
                return Err(format!("duplicate worker address `{w}`"));
            }
        }
        Ok(Topology { workers })
    }

    /// The worker addresses, in index order.
    pub fn workers(&self) -> &[String] {
        &self.workers
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Always false — construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The rendezvous score of `(key, worker i)`.
    fn score(&self, key: u64, i: usize) -> u64 {
        mix64(key ^ fnv1a(self.workers[i].as_bytes()))
    }

    /// Worker indices ranked for `key`: the owner first, then each
    /// failover replica in preference order. Deterministic for a given
    /// (key, address list) everywhere.
    pub fn ranked(&self, key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.workers.len()).collect();
        // Descending score; ties (score collisions) break by index so
        // the order stays total and stable.
        order.sort_by_key(|&i| (std::cmp::Reverse(self.score(key, i)), i));
        order
    }

    /// The owning worker index for `key`.
    pub fn owner(&self, key: u64) -> usize {
        (0..self.workers.len())
            .max_by_key(|&i| (self.score(key, i), std::cmp::Reverse(i)))
            .expect("topology is never empty")
    }

    /// The owning worker index for a scenario — [`Topology::owner`] of
    /// the canonical store key.
    pub fn owner_of(&self, scenario: &Scenario) -> usize {
        self.owner(mcdla_core::key_hash(scenario))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
    }

    #[test]
    fn construction_rejects_empty_and_duplicates() {
        assert!(Topology::new(Vec::<String>::new()).is_err());
        assert!(Topology::new(["a:1", ""]).is_err());
        let err = Topology::new(["a:1", "b:2", "a:1"]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        // Whitespace-padded duplicates are still duplicates.
        assert!(Topology::new(["a:1", " a:1 "]).is_err());
    }

    #[test]
    fn ranking_is_a_permutation_led_by_the_owner() {
        let t = Topology::new(addrs(5)).unwrap();
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            let ranked = t.ranked(key);
            let mut sorted = ranked.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>());
            assert_eq!(ranked[0], t.owner(key));
        }
    }

    #[test]
    fn keys_spread_over_the_fleet() {
        let t = Topology::new(addrs(4)).unwrap();
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[t.owner(mix64(key))] += 1;
        }
        // Uniform would be 1000 each; accept a generous band.
        for &c in &counts {
            assert!((600..=1400).contains(&c), "lopsided ownership: {counts:?}");
        }
    }

    #[test]
    fn removing_a_worker_only_remaps_its_own_keys() {
        let full = Topology::new(addrs(4)).unwrap();
        // Drop worker 2; the survivors keep their indices' addresses.
        let survivors: Vec<String> = addrs(4)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, a)| a)
            .collect();
        let reduced = Topology::new(survivors.clone()).unwrap();
        for key in 0..2000u64 {
            let key = mix64(key.wrapping_mul(0x2545_f491_4f6c_dd1d));
            let before = &full.workers()[full.owner(key)];
            let after = &survivors[reduced.owner(key)];
            if before != &full.workers()[2] {
                assert_eq!(before, after, "key moved although its owner survived");
            }
        }
    }

    #[test]
    fn failover_order_matches_ranking_tail() {
        let t = Topology::new(addrs(3)).unwrap();
        let key = 0x1234_5678_9abc_def0;
        let ranked = t.ranked(key);
        // Killing the owner promotes exactly the second-ranked worker.
        let survivors: Vec<String> = (0..3)
            .filter(|i| *i != ranked[0])
            .map(|i| t.workers()[i].clone())
            .collect();
        let reduced = Topology::new(survivors.clone()).unwrap();
        assert_eq!(
            survivors[reduced.owner(key)],
            t.workers()[ranked[1]],
            "failover target is not the second-ranked replica"
        );
    }
}
