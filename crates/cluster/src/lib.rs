//! # `mcdla-cluster` — scenario serving across a fleet of workers
//!
//! PR 2 made the KwonR18 reproduction a service (`mcdla-serve`); this
//! crate makes it a **fleet**. A gateway owns the worker topology and
//! routes every scenario to its owning worker by **rendezvous hashing**
//! of the canonical result-store key ([`mcdla_core::key_hash`]), so:
//!
//! * aggregate cache capacity scales with the fleet — each worker holds
//!   only its slice of the keyspace, and a working set that thrashes
//!   one worker's bounded store fits comfortably across N of them;
//! * simulate throughput scales with the fleet — distinct cells land on
//!   distinct workers and simulate concurrently;
//! * the same cell always lands on the same worker, so the fleet-wide
//!   hit rate matches a single giant cache (no duplicated residency
//!   beyond failover).
//!
//! On top of routing sit the operational layers a fleet needs:
//! per-worker **connection pooling** ([`pool`]), passive + probed
//! **health tracking** and bounded **retry/failover** ([`router`]),
//! **scatter-gather** for grid requests — buffered and streamed —
//! merged back into single-node cell order (`merge`, [`gateway`]),
//! fleet-wide stats aggregation (`GET /cluster/stats`), and Prometheus
//! `GET /metrics` on the gateway (workers grew their own in
//! `mcdla-serve`).
//!
//! ## Endpoints
//!
//! | endpoint | behaviour |
//! |---|---|
//! | `POST /simulate` | routed to the owning worker; retry + next-replica failover on connect failure/5xx; worker 2xx/4xx passes through verbatim; all-unreachable → 502 naming each worker |
//! | `POST /grid` | cells partitioned by owner, scattered as explicit `{"cells": [...]}` sub-grids, merged back in grid order |
//! | `POST /grid?stream=1` | one sub-stream per owning worker, NDJSON lines forwarded verbatim in worker order; worker death mid-stream → close without the terminal chunk |
//! | `GET /healthz` | gateway liveness + worker up-counts |
//! | `GET /cluster/stats` | gateway counters + every worker's `/stats` + fleet totals |
//! | `GET /metrics` | Prometheus text exposition |
//!
//! `docs/cluster.md` covers the topology/failover design;
//! `docs/protocol.md` specifies the wire surface.
//!
//! ## Example
//!
//! ```
//! use mcdla_cluster::{spawn_local_fleet, FleetConfig};
//! use mcdla_serve::client;
//!
//! let fleet = spawn_local_fleet(&FleetConfig {
//!     workers: 2,
//!     probe_interval: None,
//!     ..FleetConfig::default()
//! })
//! .unwrap();
//! let addr = fleet.gateway_addr().to_string();
//! let health = client::request_once(&addr, "GET", "/healthz", None).unwrap();
//! assert_eq!(health.status, 200);
//! assert!(health.body.contains("mcdla-gateway"));
//! fleet.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod console;
pub mod gateway;
mod merge;
pub mod pool;
pub mod router;
pub mod topology;

pub use gateway::{
    spawn_local_fleet, worker_snapshot_path, FleetConfig, Gateway, GatewayConfig, GatewayHandle,
    LocalFleet,
};
pub use router::{GatewayError, Router, WorkerState};
pub use topology::Topology;
