//! Routing a scenario key to a live worker: rendezvous ranking from the
//! [`Topology`], health state per worker, and bounded retry + failover
//! for point requests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mcdla_obs::{Histogram, Span};
use mcdla_serve::client::{Response, Timeouts};

use crate::pool::WorkerPool;
use crate::topology::Topology;

/// A gateway-level failure, carrying the HTTP status the gateway
/// answers with (`502` when no worker could take the request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayError {
    /// Response status (e.g. 502).
    pub status: u16,
    /// Human-readable cause, naming the workers involved.
    pub message: String,
}

impl GatewayError {
    pub(crate) fn new(status: u16, message: impl Into<String>) -> Self {
        GatewayError {
            status,
            message: message.into(),
        }
    }
}

/// One worker's live state: its connection pool plus passive health.
#[derive(Debug)]
pub struct WorkerState {
    pool: WorkerPool,
    up: AtomicBool,
    /// Requests this worker answered (any status).
    pub answered: AtomicU64,
    /// Errors observed against this worker (connect/read failures and
    /// 5xx answers).
    pub failures: AtomicU64,
    /// Upstream round-trip latency against this worker (successful and
    /// failed attempts both count — a slow failure is still time spent).
    pub latency: Arc<Histogram>,
    last_error: Mutex<String>,
}

impl WorkerState {
    fn new(addr: &str, timeouts: Timeouts, max_idle: usize) -> Self {
        WorkerState {
            pool: WorkerPool::new(addr, timeouts, max_idle),
            // Optimistic start: a worker is presumed up until a request
            // or probe says otherwise, so a fleet serves immediately.
            up: AtomicBool::new(true),
            answered: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            latency: Arc::new(Histogram::new()),
            last_error: Mutex::new(String::new()),
        }
    }

    /// The worker's address.
    pub fn addr(&self) -> &str {
        self.pool.addr()
    }

    /// This worker's connection pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Current health belief.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    /// Marks the worker healthy.
    pub fn mark_up(&self) {
        self.up.store(true, Ordering::Relaxed);
    }

    /// Marks the worker unhealthy, recording why.
    pub fn mark_down(&self, error: &str) {
        self.up.store(false, Ordering::Relaxed);
        self.failures.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock().expect("last_error lock") = error.to_owned();
    }

    /// The most recent error observed against this worker.
    pub fn last_error(&self) -> String {
        self.last_error.lock().expect("last_error lock").clone()
    }
}

/// The gateway's routing core: topology + per-worker state + failover.
#[derive(Debug)]
pub struct Router {
    topology: Topology,
    workers: Vec<WorkerState>,
    /// Requests answered by a worker other than the rendezvous owner.
    pub failovers: AtomicU64,
}

impl Router {
    /// Builds a router over worker addresses. `max_idle` bounds parked
    /// connections per worker.
    pub fn new<S: Into<String>>(
        addrs: impl IntoIterator<Item = S>,
        timeouts: Timeouts,
        max_idle: usize,
    ) -> Result<Self, String> {
        let topology = Topology::new(addrs)?;
        let workers = topology
            .workers()
            .iter()
            .map(|a| WorkerState::new(a, timeouts, max_idle))
            .collect();
        Ok(Router {
            topology,
            workers,
            failovers: AtomicU64::new(0),
        })
    }

    /// The fleet topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-worker state, in topology index order.
    pub fn workers(&self) -> &[WorkerState] {
        &self.workers
    }

    /// Workers currently believed up.
    pub fn up_count(&self) -> usize {
        self.workers.iter().filter(|w| w.is_up()).count()
    }

    /// Stale-connection retries across all worker pools.
    pub fn retries(&self) -> u64 {
        self.workers.iter().map(|w| w.pool.retries()).sum()
    }

    /// Worker indices to try for `key`, in order: the rendezvous ranking
    /// with down workers demoted to the tail (still tried last — the
    /// health belief may be stale, and a down worker beats no answer).
    pub fn route(&self, key: u64) -> Vec<usize> {
        let ranked = self.topology.ranked(key);
        let (mut order, down): (Vec<usize>, Vec<usize>) =
            ranked.into_iter().partition(|&i| self.workers[i].is_up());
        order.extend(down);
        order
    }

    /// Forwards one buffered request along `key`'s failover chain.
    ///
    /// * A `< 500` answer (success **or** a worker-side 4xx) is final
    ///   and passes through — a 4xx is the worker's verdict on the
    ///   request, not a worker failure.
    /// * A connect/read failure marks the worker down and moves on.
    /// * A `5xx` answer counts as a worker failure and moves on, but
    ///   leaves the worker up (it is alive enough to answer).
    /// * When every worker fails, the caller gets a [`GatewayError`]
    ///   (502) naming each worker and what it said.
    pub fn forward(
        &self,
        key: u64,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(usize, Response), GatewayError> {
        self.forward_with(key, method, path, &[], body)
    }

    /// [`Router::forward`] with extra request headers forwarded to the
    /// worker on every attempt (request-id propagation).
    pub fn forward_with(
        &self,
        key: u64,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> Result<(usize, Response), GatewayError> {
        let order = {
            let _s = Span::enter("gateway.route");
            self.route(key)
        };
        let owner = order[0];
        let mut attempts: Vec<String> = Vec::new();
        for &i in &order {
            let worker = &self.workers[i];
            let attempt = {
                let _s = Span::enter_timed(&format!("gateway.upstream.{i}"), &worker.latency);
                worker.pool.request_with(method, path, headers, body)
            };
            match attempt {
                Ok(response) if response.status < 500 => {
                    worker.mark_up();
                    worker.answered.fetch_add(1, Ordering::Relaxed);
                    if i != owner {
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok((i, response));
                }
                Ok(response) => {
                    worker.failures.fetch_add(1, Ordering::Relaxed);
                    attempts.push(format!(
                        "worker {} ({}) answered HTTP {}",
                        i,
                        worker.addr(),
                        response.status
                    ));
                }
                Err(e) => {
                    worker.mark_down(&e);
                    attempts.push(format!("worker {} ({}) unreachable: {e}", i, worker.addr()));
                }
            }
        }
        Err(GatewayError::new(
            502,
            format!("no worker could answer: {}", attempts.join("; ")),
        ))
    }

    /// Probes one worker's `GET /healthz`, updating its health belief.
    /// Returns the new belief.
    pub fn probe(&self, i: usize) -> bool {
        let worker = &self.workers[i];
        match worker.pool.request("GET", "/healthz", None) {
            Ok(response) if response.is_ok() => {
                worker.mark_up();
                true
            }
            Ok(response) => {
                worker.mark_down(&format!("healthz answered HTTP {}", response.status));
                false
            }
            Err(e) => {
                worker.mark_down(&e);
                false
            }
        }
    }

    /// Probes every worker once (the background prober's tick).
    pub fn probe_all(&self) {
        for i in 0..self.workers.len() {
            self.probe(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpListener;

    fn refusing_addr() -> String {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    }

    /// A stub worker answering every request on every connection with a
    /// fixed status until dropped.
    fn stub_worker(status: u16, body: &'static str) -> (String, std::sync::Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
        let addr = listener.local_addr().unwrap().to_string();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        listener.set_nonblocking(true).unwrap();
        std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        let stop3 = stop2.clone();
                        std::thread::spawn(move || {
                            let _ = stream
                                .set_read_timeout(Some(std::time::Duration::from_millis(200)));
                            loop {
                                let mut buf = [0u8; 4096];
                                match stream.read(&mut buf) {
                                    Ok(0) | Err(_) => break,
                                    Ok(_) => {}
                                }
                                if stop3.load(Ordering::Relaxed) {
                                    break;
                                }
                                let response = format!(
                                    "HTTP/1.1 {status} X\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n{body}",
                                    body.len()
                                );
                                if stream.write_all(response.as_bytes()).is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
                }
            }
        });
        (addr, stop)
    }

    #[test]
    fn forward_fails_over_from_a_dead_owner_and_marks_it_down() {
        let (live, stop) = stub_worker(200, "{\"ok\":true}");
        let dead = refusing_addr();
        let router = Router::new([dead.clone(), live.clone()], Timeouts::default(), 2).unwrap();
        // Whichever worker owns the key, the answer must come from the
        // live one; a key owned by the dead worker records a failover.
        for key in 0..8u64 {
            let (i, resp) = router.forward(key, "GET", "/x", None).expect("failover");
            assert_eq!(router.workers()[i].addr(), live);
            assert_eq!(resp.status, 200);
        }
        let dead_state = router.workers().iter().find(|w| w.addr() == dead).unwrap();
        assert!(!dead_state.is_up());
        assert!(
            dead_state.last_error().contains("connect"),
            "{}",
            dead_state.last_error()
        );
        assert!(router.failovers.load(Ordering::Relaxed) >= 1);
        stop.store(true, Ordering::Relaxed);
    }

    #[test]
    fn worker_4xx_passes_through_without_failover() {
        let (a, stop_a) = stub_worker(418, "{\"error\":\"teapot\"}");
        let (b, stop_b) = stub_worker(418, "{\"error\":\"teapot\"}");
        let router = Router::new([a, b], Timeouts::default(), 2).unwrap();
        let (_, resp) = router.forward(7, "POST", "/simulate", Some("{}")).unwrap();
        assert_eq!(resp.status, 418);
        assert_eq!(resp.body, "{\"error\":\"teapot\"}");
        assert_eq!(router.failovers.load(Ordering::Relaxed), 0);
        stop_a.store(true, Ordering::Relaxed);
        stop_b.store(true, Ordering::Relaxed);
    }

    #[test]
    fn worker_5xx_fails_over_but_leaves_the_worker_up() {
        let (sick, stop_sick) = stub_worker(500, "{\"error\":\"boom\"}");
        let (live, stop_live) = stub_worker(200, "{\"ok\":true}");
        let router = Router::new([sick.clone(), live], Timeouts::default(), 2).unwrap();
        for key in 0..8u64 {
            let (_, resp) = router
                .forward(key, "GET", "/x", None)
                .expect("5xx failover");
            assert_eq!(resp.status, 200);
        }
        let sick_state = router.workers().iter().find(|w| w.addr() == sick).unwrap();
        assert!(sick_state.is_up(), "5xx must not mark a live worker down");
        assert!(sick_state.failures.load(Ordering::Relaxed) >= 1);
        stop_sick.store(true, Ordering::Relaxed);
        stop_live.store(true, Ordering::Relaxed);
    }

    #[test]
    fn all_workers_down_is_a_502_naming_each() {
        let a = refusing_addr();
        let b = refusing_addr();
        let router = Router::new([a.clone(), b.clone()], Timeouts::default(), 2).unwrap();
        let err = router.forward(1, "GET", "/x", None).unwrap_err();
        assert_eq!(err.status, 502);
        assert!(
            err.message.contains(&a) && err.message.contains(&b),
            "{}",
            err.message
        );
        assert_eq!(router.up_count(), 0);
    }

    #[test]
    fn probe_revives_a_down_belief() {
        let (live, stop) = stub_worker(200, "{\"status\":\"ok\"}");
        let router = Router::new([live], Timeouts::default(), 2).unwrap();
        router.workers()[0].mark_down("simulated outage");
        assert_eq!(router.up_count(), 0);
        assert!(router.probe(0));
        assert_eq!(router.up_count(), 1);
        stop.store(true, Ordering::Relaxed);
    }
}
