//! `mcdla top`: a live fleet console over the telemetry history.
//!
//! Plain ANSI redraw (home + clear, no terminal library): each frame
//! polls `GET /metrics/history` + `GET /stats` on every worker — or one
//! `GET /cluster/history` + `GET /cluster/stats` on a gateway — and
//! repaints a per-node table, fleet sparklines, and the stage-cache hit
//! rates. Everything renders from the same JSON the script surface
//! (`mcdla query history`) exposes, so what the console shows is
//! exactly what the endpoints answer.

use std::io::Write;
use std::time::Duration;

use mcdla_serve::client::{request_once_with, Timeouts};
use serde::Value;

/// Everything `mcdla top` configures.
#[derive(Debug)]
pub struct TopConfig {
    /// Poll a gateway (`/cluster/history` + `/cluster/stats`) at this
    /// address. Mutually exclusive with `workers`.
    pub gateway: Option<String>,
    /// Poll each worker (`/metrics/history` + `/stats`) directly.
    pub workers: Vec<String>,
    /// Redraw cadence.
    pub interval: Duration,
    /// Stop after this many frames (`None` = run until killed) — the
    /// scriptable escape hatch CI uses.
    pub frames: Option<u64>,
    /// Per-request deadlines.
    pub timeouts: Timeouts,
}

/// One node's line in the console table — the newest history sample of
/// each displayed series.
#[derive(Debug, Default)]
struct NodeRow {
    name: String,
    addr: String,
    up: bool,
    req_s: f64,
    err_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    hit_rate: f64,
    entries: f64,
    evict_s: f64,
    open: f64,
    shed_s: f64,
    rss_bytes: f64,
    uptime_s: f64,
}

/// One rendered frame's data.
#[derive(Debug, Default)]
struct Frame {
    source: String,
    nodes: Vec<NodeRow>,
    /// Fleet request-rate ring (newest last), for the sparkline.
    req_ring: Vec<f64>,
    /// Fleet store hit-rate ring (newest last).
    hit_ring: Vec<f64>,
    /// Per-stage `(name, hits, misses)` totals across nodes. Ratios of
    /// sums are duplication-invariant: in-process fleets share one
    /// global stage cache and report identical tables, and
    /// `Σh/Σ(h+m)` over `k` identical copies equals each copy's rate.
    stages: Vec<(String, u64, u64)>,
    errors: Vec<String>,
}

/// Navigates a JSON map path.
fn get<'a>(value: &'a Value, path: &[&str]) -> Option<&'a Value> {
    let mut current = value;
    for key in path {
        let Value::Map(entries) = current else {
            return None;
        };
        current = &entries.iter().find(|(k, _)| k == key)?.1;
    }
    Some(current)
}

/// A JSON scalar as f64.
fn num(value: &Value) -> Option<f64> {
    match value {
        Value::F64(n) => Some(*n),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// A named series out of a history body, as floats (newest last).
fn series(history: &Value, name: &str) -> Vec<f64> {
    match get(history, &["series", name]) {
        Some(Value::Seq(points)) => points.iter().filter_map(num).collect(),
        _ => Vec::new(),
    }
}

/// The newest sample of a named series, or 0.
fn last(history: &Value, name: &str) -> f64 {
    series(history, name).last().copied().unwrap_or(0.0)
}

/// Builds a node row from one worker's `/metrics/history` body.
fn node_row(name: String, addr: String, history: &Value) -> NodeRow {
    NodeRow {
        name,
        addr,
        up: true,
        req_s: last(history, "req_per_s"),
        err_s: last(history, "err_per_s"),
        p50_ms: last(history, "simulate.p50_ms").max(last(history, "grid.p50_ms")),
        p99_ms: last(history, "simulate.p99_ms").max(last(history, "grid.p99_ms")),
        hit_rate: last(history, "store.hit_rate"),
        entries: last(history, "store.entries"),
        evict_s: last(history, "store.evictions_per_s"),
        open: last(history, "conns.open"),
        shed_s: last(history, "conns.shed_per_s"),
        rss_bytes: last(history, "rss_bytes"),
        uptime_s: last(history, "uptime_seconds"),
    }
}

/// Folds one `/stats` body's stage tables into the frame totals.
fn fold_stages(stages: &mut Vec<(String, u64, u64)>, stats: &Value) {
    let Some(Value::Seq(tables)) = get(stats, &["store", "stages"]) else {
        return;
    };
    for table in tables {
        let name = match get(table, &["stage"]) {
            Some(Value::Str(s)) => s.clone(),
            _ => continue,
        };
        let hits = get(table, &["hits"]).and_then(num).unwrap_or(0.0) as u64;
        let misses = get(table, &["misses"]).and_then(num).unwrap_or(0.0) as u64;
        match stages.iter_mut().find(|(n, ..)| *n == name) {
            Some((_, h, m)) => {
                *h += hits;
                *m += misses;
            }
            None => stages.push((name, hits, misses)),
        }
    }
}

/// Element-wise tail-aligned sum of rings (shortest ring wins).
fn sum_rings(rings: &[Vec<f64>]) -> Vec<f64> {
    let len = rings.iter().map(Vec::len).min().unwrap_or(0);
    (0..len)
        .map(|j| rings.iter().map(|r| r[r.len() - len + j]).sum())
        .collect()
}

/// Collects one frame by polling every worker directly.
fn collect_workers(workers: &[String], timeouts: Timeouts) -> Frame {
    let mut frame = Frame {
        source: format!("{} workers", workers.len()),
        ..Frame::default()
    };
    let mut req_rings = Vec::new();
    let mut hit_weight: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = Vec::new();
    for (i, addr) in workers.iter().enumerate() {
        let name = format!("w{i}");
        match request_once_with(addr, "GET", "/metrics/history", None, timeouts)
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| serde::json::parse(&r.body).ok())
        {
            Some(history) => {
                req_rings.push(series(&history, "req_per_s"));
                hit_weight.push((
                    series(&history, "store.hits_per_s"),
                    series(&history, "store.misses_per_s"),
                    Vec::new(),
                ));
                frame.nodes.push(node_row(name, addr.clone(), &history));
            }
            None => {
                frame.errors.push(format!("{addr}: history unreachable"));
                frame.nodes.push(NodeRow {
                    name,
                    addr: addr.clone(),
                    up: false,
                    ..NodeRow::default()
                });
                continue;
            }
        }
        if let Some(stats) = request_once_with(addr, "GET", "/stats", None, timeouts)
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| serde::json::parse(&r.body).ok())
        {
            fold_stages(&mut frame.stages, &stats);
        }
    }
    frame.req_ring = sum_rings(&req_rings);
    let hits = sum_rings(
        &hit_weight
            .iter()
            .map(|(h, ..)| h.clone())
            .collect::<Vec<_>>(),
    );
    let misses = sum_rings(
        &hit_weight
            .iter()
            .map(|(_, m, _)| m.clone())
            .collect::<Vec<_>>(),
    );
    frame.hit_ring = hits
        .iter()
        .zip(&misses)
        .map(|(h, m)| if h + m > 0.0 { h / (h + m) } else { 0.0 })
        .collect();
    frame
}

/// Collects one frame from a gateway's fleet aggregation.
fn collect_gateway(addr: &str, timeouts: Timeouts) -> Frame {
    let mut frame = Frame {
        source: format!("gateway {addr}"),
        ..Frame::default()
    };
    match request_once_with(addr, "GET", "/cluster/history", None, timeouts)
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| serde::json::parse(&r.body).ok())
    {
        Some(cluster) => {
            if let Some(fleet) = get(&cluster, &["fleet"]) {
                frame.req_ring = series(fleet, "req_per_s");
                frame.hit_ring = series(fleet, "store.hit_rate");
            }
            if let Some(Value::Seq(workers)) = get(&cluster, &["workers"]) {
                for worker in workers {
                    let index = get(worker, &["index"]).and_then(num).unwrap_or(0.0) as usize;
                    let addr = match get(worker, &["addr"]) {
                        Some(Value::Str(a)) => a.clone(),
                        _ => String::new(),
                    };
                    let name = format!("w{index}");
                    match get(worker, &["history"]) {
                        Some(history @ Value::Map(_)) => {
                            frame.nodes.push(node_row(name, addr, history));
                        }
                        _ => frame.nodes.push(NodeRow {
                            name,
                            addr,
                            up: false,
                            ..NodeRow::default()
                        }),
                    }
                }
            }
        }
        None => frame
            .errors
            .push(format!("{addr}: /cluster/history unreachable")),
    }
    if let Some(stats) = request_once_with(addr, "GET", "/cluster/stats", None, timeouts)
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| serde::json::parse(&r.body).ok())
    {
        if let Some(Value::Seq(workers)) = get(&stats, &["workers"]) {
            for worker in workers {
                if let Some(wstats) = get(worker, &["stats"]) {
                    fold_stages(&mut frame.stages, wstats);
                }
            }
        }
    }
    frame
}

/// An ASCII sparkline (oldest left, newest right), scaled to the ring's
/// own maximum; `width` caps the newest samples shown.
fn sparkline(ring: &[f64], width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let tail = &ring[ring.len().saturating_sub(width)..];
    let max = tail.iter().cloned().fold(0.0f64, f64::max);
    tail.iter()
        .map(|&v| {
            let level = if max > 0.0 {
                ((v / max) * (RAMP.len() - 1) as f64).round() as usize
            } else {
                0
            };
            RAMP[level.min(RAMP.len() - 1)] as char
        })
        .collect()
}

/// Bytes as a short human figure.
fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.1}G", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.0}M", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.0}K", b / 1e3)
    } else {
        format!("{b:.0}")
    }
}

/// Seconds as `h:mm:ss`.
fn fmt_uptime(s: f64) -> String {
    let s = s.max(0.0) as u64;
    format!("{}:{:02}:{:02}", s / 3600, (s % 3600) / 60, s % 60)
}

/// Renders one frame (without the ANSI preamble) into `out`.
fn render(frame: &Frame, interval: Duration, out: &mut dyn Write) -> std::io::Result<()> {
    let up = frame.nodes.iter().filter(|n| n.up).count();
    writeln!(
        out,
        "mcdla top — {} · {}/{} up · every {:.1}s · Ctrl-C quits",
        frame.source,
        up,
        frame.nodes.len(),
        interval.as_secs_f64(),
    )?;
    writeln!(
        out,
        "{:<4} {:<21} {:>3} {:>8} {:>7} {:>8} {:>8} {:>6} {:>8} {:>8} {:>5} {:>7} {:>6} {:>9}",
        "NODE",
        "ADDR",
        "UP",
        "REQ/S",
        "ERR/S",
        "P50ms",
        "P99ms",
        "HIT%",
        "ENTRIES",
        "EVICT/S",
        "OPEN",
        "SHED/S",
        "RSS",
        "UPTIME"
    )?;
    let mut fleet_req = 0.0;
    for n in &frame.nodes {
        fleet_req += n.req_s;
        writeln!(
            out,
            "{:<4} {:<21} {:>3} {:>8.1} {:>7.1} {:>8.2} {:>8.2} {:>5.1}% {:>8.0} {:>8.1} {:>5.0} {:>7.1} {:>6} {:>9}",
            n.name,
            n.addr,
            if n.up { "up" } else { "DOWN" },
            n.req_s,
            n.err_s,
            n.p50_ms,
            n.p99_ms,
            n.hit_rate * 100.0,
            n.entries,
            n.evict_s,
            n.open,
            n.shed_s,
            fmt_bytes(n.rss_bytes),
            fmt_uptime(n.uptime_s),
        )?;
    }
    let hit_now = frame.hit_ring.last().copied().unwrap_or(0.0);
    writeln!(
        out,
        "fleet  req/s {:>8.1}  [{}]",
        fleet_req,
        sparkline(&frame.req_ring, 60)
    )?;
    writeln!(
        out,
        "fleet  hit%  {:>7.1}%  [{}]",
        hit_now * 100.0,
        sparkline(&frame.hit_ring, 60)
    )?;
    if !frame.stages.is_empty() {
        let cells: Vec<String> = frame
            .stages
            .iter()
            .map(|(name, h, m)| {
                let rate = if h + m > 0 {
                    *h as f64 / (h + m) as f64
                } else {
                    0.0
                };
                format!("{name} {:.0}%", rate * 100.0)
            })
            .collect();
        writeln!(out, "stages {}", cells.join("  "))?;
    }
    for e in &frame.errors {
        writeln!(out, "! {e}")?;
    }
    Ok(())
}

/// Runs the console loop: clear, poll, repaint, sleep — until
/// `config.frames` frames have rendered (or forever).
pub fn run_top(config: &TopConfig, out: &mut dyn Write) -> Result<(), String> {
    if config.gateway.is_some() != config.workers.is_empty() {
        return Err("`top` needs exactly one of --addr (a gateway) or --backends (workers)".into());
    }
    let mut rendered = 0u64;
    loop {
        let frame = match &config.gateway {
            Some(addr) => collect_gateway(addr, config.timeouts),
            None => collect_workers(&config.workers, config.timeouts),
        };
        // Home + clear-to-end: repaint in place without flashing the
        // whole terminal the way a full clear-screen would.
        let mut text = Vec::new();
        let _ = write!(text, "\x1b[H\x1b[J");
        render(&frame, config.interval, &mut text).map_err(|e| format!("rendering frame: {e}"))?;
        out.write_all(&text)
            .and_then(|()| out.flush())
            .map_err(|e| format!("writing frame: {e}"))?;
        rendered += 1;
        if config.frames.is_some_and(|n| rendered >= n) {
            return Ok(());
        }
        std::thread::sleep(config.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_fixture() -> Value {
        serde::json::parse(
            r#"{
                "service": "mcdla-serve",
                "timestamps_ms": [1000, 2000, 3000],
                "series": {
                    "req_per_s": [1.0, 2.0, 4.0],
                    "err_per_s": [0.0, 0.0, 1.0],
                    "simulate.p50_ms": [0.5, 0.4, 0.3],
                    "simulate.p99_ms": [2.0, 1.5, 1.0],
                    "grid.p50_ms": [0.0, 0.0, 0.0],
                    "grid.p99_ms": [0.0, 0.0, 0.0],
                    "store.hit_rate": [0.0, 0.5, 0.9],
                    "store.hits_per_s": [0.0, 1.0, 9.0],
                    "store.misses_per_s": [1.0, 1.0, 1.0],
                    "store.entries": [1, 2, 3],
                    "store.evictions_per_s": [0, 0, 0],
                    "conns.open": [1, 1, 2],
                    "conns.shed_per_s": [0, 0, 0],
                    "rss_bytes": [1000000, 1100000, 1200000],
                    "uptime_seconds": [1, 2, 3]
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn node_rows_read_the_newest_sample() {
        let row = node_row("w0".into(), "127.0.0.1:1".into(), &history_fixture());
        assert!(row.up);
        assert_eq!(row.req_s, 4.0);
        assert_eq!(row.hit_rate, 0.9);
        assert_eq!(row.p99_ms, 1.0);
        assert_eq!(row.entries, 3.0);
    }

    #[test]
    fn sparklines_scale_to_the_ring_max() {
        let line = sparkline(&[0.0, 5.0, 10.0], 60);
        assert_eq!(line.len(), 3);
        assert!(line.starts_with(' '), "zero maps to the lowest level");
        assert!(line.ends_with('@'), "max maps to the highest level");
        // Constant-zero rings stay flat rather than dividing by zero.
        assert_eq!(sparkline(&[0.0, 0.0], 60), "  ");
        // Width caps the tail.
        assert_eq!(sparkline(&[1.0; 100], 10).len(), 10);
    }

    #[test]
    fn stage_tables_fold_duplication_invariantly() {
        let stats = serde::json::parse(
            r#"{"store": {"stages": [
                {"stage": "fabric", "hits": 90, "misses": 10},
                {"stage": "plan", "hits": 50, "misses": 50}
            ]}}"#,
        )
        .unwrap();
        let mut stages = Vec::new();
        // Two identical worker reports of the shared global tables.
        fold_stages(&mut stages, &stats);
        fold_stages(&mut stages, &stats);
        assert_eq!(stages.len(), 2);
        let (name, h, m) = &stages[0];
        assert_eq!(name, "fabric");
        // Ratio of sums equals each copy's own 90%.
        assert!((*h as f64 / (*h + *m) as f64 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn frames_render_rows_sparklines_and_stages() {
        let frame = Frame {
            source: "2 workers".into(),
            nodes: vec![
                node_row("w0".into(), "127.0.0.1:7878".into(), &history_fixture()),
                NodeRow {
                    name: "w1".into(),
                    addr: "127.0.0.1:7879".into(),
                    up: false,
                    ..NodeRow::default()
                },
            ],
            req_ring: vec![1.0, 2.0, 4.0],
            hit_ring: vec![0.0, 0.5, 0.9],
            stages: vec![("fabric".into(), 90, 10)],
            errors: vec!["127.0.0.1:7879: history unreachable".into()],
        };
        let mut out = Vec::new();
        render(&frame, Duration::from_secs(1), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("mcdla top — 2 workers · 1/2 up"), "{text}");
        assert!(text.contains("w0"), "{text}");
        assert!(text.contains("DOWN"), "{text}");
        assert!(text.contains("fleet  req/s"), "{text}");
        assert!(text.contains("90.0%"), "{text}");
        assert!(text.contains("stages fabric 90%"), "{text}");
        assert!(text.contains("history unreachable"), "{text}");
    }

    #[test]
    fn ring_sums_align_from_the_tail() {
        let sum = sum_rings(&[vec![1.0, 2.0, 3.0], vec![10.0, 20.0]]);
        // Shortest ring wins: the overlap is the last two samples.
        assert_eq!(sum, vec![12.0, 23.0]);
        assert!(sum_rings(&[]).is_empty());
    }

    #[test]
    fn top_rejects_ambiguous_targets() {
        let both = TopConfig {
            gateway: Some("127.0.0.1:1".into()),
            workers: vec!["127.0.0.1:2".into()],
            interval: Duration::from_millis(1),
            frames: Some(1),
            timeouts: Timeouts::default(),
        };
        let mut out = Vec::new();
        assert!(run_top(&both, &mut out).is_err());
        let neither = TopConfig {
            gateway: None,
            workers: Vec::new(),
            interval: Duration::from_millis(1),
            frames: Some(1),
            timeouts: Timeouts::default(),
        };
        assert!(run_top(&neither, &mut out).is_err());
    }
}
