//! Scatter-gather for grid requests: partition the expanded cell list
//! by rendezvous owner, fan sub-grids out to the owning workers, and
//! merge the answers back into the single-node cell order.
//!
//! Workers receive their partition as an **explicit cell list**
//! (`{"cells": [...]}` — see `GridRequest::cells` in `mcdla-serve`),
//! because a consistent-hash slice of a cartesian grid is not itself a
//! cartesian product. Each worker answers its cells in list order, so
//! the gateway can splice results back by original index and the merged
//! buffered response is cell-for-cell identical to what one big worker
//! would have answered (modulo `cached` flags, which reflect each
//! worker's own cache).
//!
//! Routing keys are hashed once per request ([`routing_keys`]) and
//! duplicate cells are collapsed before the scatter
//! ([`canonical_indices`]): a degenerate grid or a client-sent
//! duplicate list costs one simulation per distinct cell, with the
//! gateway replaying the canonical answer at every duplicate index.

use std::collections::{BTreeSet, HashMap};

use mcdla_core::Scenario;
use serde::{Serialize, Value};

use crate::router::{GatewayError, Router};

/// Maps each grid index to the first index holding the same scenario
/// (an index maps to itself when it is the first occurrence). A
/// client-sent duplicate list or a degenerate grid then costs one
/// simulation per *distinct* cell: only canonical indices go to the
/// fleet, and the gateway replays the canonical answer for the
/// duplicates — output stays one cell per input cell, in input order.
pub(crate) fn canonical_indices(scenarios: &[Scenario]) -> Vec<usize> {
    let mut first: HashMap<&Scenario, usize> = HashMap::with_capacity(scenarios.len());
    scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| *first.entry(s).or_insert(i))
        .collect()
}

/// The routing keys for a request's cells, hashed once up front:
/// retry rounds and replica walks reuse them instead of re-hashing
/// scenarios on the failover path.
pub(crate) fn routing_keys(scenarios: &[Scenario]) -> Vec<u64> {
    scenarios.iter().map(mcdla_core::key_hash).collect()
}

/// One worker's slice of a grid: the original cell indices it owns and
/// the ready-to-send sub-grid body.
#[derive(Debug)]
pub(crate) struct Partition {
    /// Worker index in the topology.
    pub worker: usize,
    /// Original grid indices, in grid order.
    pub indices: Vec<usize>,
    /// The `{"cells": [...]}` request body for this slice.
    pub body: String,
}

/// Builds the sub-grid body for a set of cells.
fn sub_grid_body(cells: &[&Scenario]) -> String {
    serde::json::to_string(&Value::Map(vec![(
        "cells".into(),
        Value::Seq(cells.iter().map(|s| s.to_value()).collect()),
    )]))
}

/// Partitions `pending` (indices into `scenarios`) across workers by
/// rendezvous ownership, skipping `excluded` workers (already observed
/// failing for this request). Partitions come back in worker-index
/// order. Fails with 502 when every worker is excluded.
pub(crate) fn partition_pending(
    router: &Router,
    scenarios: &[Scenario],
    keys: &[u64],
    pending: &[usize],
    excluded: &BTreeSet<usize>,
) -> Result<Vec<Partition>, GatewayError> {
    if excluded.len() >= router.workers().len() {
        return Err(GatewayError::new(
            502,
            format!(
                "no reachable worker left for the grid (all {} failed)",
                router.workers().len()
            ),
        ));
    }
    let mut slices: Vec<Vec<usize>> = vec![Vec::new(); router.workers().len()];
    for &idx in pending {
        let choice = router
            .route(keys[idx])
            .into_iter()
            .find(|w| !excluded.contains(w))
            .expect("checked above that at least one worker remains");
        slices[choice].push(idx);
    }
    Ok(slices
        .into_iter()
        .enumerate()
        .filter(|(_, indices)| !indices.is_empty())
        .map(|(worker, indices)| {
            let cells: Vec<&Scenario> = indices.iter().map(|&i| &scenarios[i]).collect();
            Partition {
                worker,
                indices,
                body: sub_grid_body(&cells),
            }
        })
        .collect())
}

/// Sends one partition's buffered sub-grid and parses the cells out of
/// the worker's `{"count", "cells"}` answer.
fn fetch_partition(router: &Router, part: &Partition) -> Result<Vec<Value>, String> {
    let worker = &router.workers()[part.worker];
    let response = worker
        .pool()
        .request("POST", "/grid", Some(&part.body))
        .inspect_err(|e| worker.mark_down(e))?;
    if response.status != 200 {
        worker
            .failures
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        return Err(format!(
            "answered HTTP {} to a {}-cell sub-grid: {}",
            response.status,
            part.indices.len(),
            response.body
        ));
    }
    worker.mark_up();
    worker
        .answered
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let parsed = serde::json::parse(&response.body)
        .map_err(|e| format!("answered unparseable grid JSON: {e}"))?;
    let Value::Map(entries) = parsed else {
        return Err("answered a non-object grid body".into());
    };
    let cells = entries
        .into_iter()
        .find(|(k, _)| k == "cells")
        .map(|(_, v)| v);
    let Some(Value::Seq(cells)) = cells else {
        return Err("answered a grid body without a `cells` array".into());
    };
    if cells.len() != part.indices.len() {
        return Err(format!(
            "answered {} cells for a {}-cell sub-grid",
            cells.len(),
            part.indices.len()
        ));
    }
    Ok(cells)
}

/// Scatter-gathers a buffered grid: partitions `scenarios` by owner,
/// fetches every partition concurrently, and re-merges the cells into
/// grid order. A worker that fails is excluded and its slice re-routed
/// to the next replicas (one more round per surviving worker at most);
/// when no worker can take a slice, the whole request is a 502 naming
/// the failures.
pub(crate) fn scatter_buffered(
    router: &Router,
    scenarios: &[Scenario],
) -> Result<Vec<Value>, GatewayError> {
    let mut out: Vec<Option<Value>> = Vec::with_capacity(scenarios.len());
    out.resize_with(scenarios.len(), || None);
    let canon = canonical_indices(scenarios);
    let keys = routing_keys(scenarios);
    // Only distinct cells go to the fleet; duplicates are filled from
    // their canonical answer after the gather.
    let mut pending: Vec<usize> = (0..scenarios.len()).filter(|&i| canon[i] == i).collect();
    let mut excluded: BTreeSet<usize> = BTreeSet::new();
    let mut failures: Vec<String> = Vec::new();

    while !pending.is_empty() {
        let parts =
            partition_pending(router, scenarios, &keys, &pending, &excluded).map_err(|e| {
                if failures.is_empty() {
                    e
                } else {
                    GatewayError::new(502, format!("{}: {}", e.message, failures.join("; ")))
                }
            })?;
        let results: Vec<(Partition, Result<Vec<Value>, String>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| {
                    scope.spawn(move || {
                        let result = fetch_partition(router, &part);
                        (part, result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter worker thread"))
                .collect()
        });
        let mut next_pending = Vec::new();
        // Only slices re-partitioned in an earlier round count as
        // failovers; same-round sibling failures must not taint them.
        let rerouted_round = !excluded.is_empty();
        for (part, result) in results {
            match result {
                Ok(cells) => {
                    if rerouted_round {
                        // This slice landed somewhere after at least one
                        // worker was excluded for it — count re-routes.
                        router
                            .failovers
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    for (&idx, cell) in part.indices.iter().zip(cells) {
                        out[idx] = Some(cell);
                    }
                }
                Err(e) => {
                    failures.push(format!(
                        "worker {} ({}): {e}",
                        part.worker,
                        router.workers()[part.worker].addr()
                    ));
                    excluded.insert(part.worker);
                    next_pending.extend(part.indices);
                }
            }
        }
        next_pending.sort_unstable();
        pending = next_pending;
    }

    for idx in 0..out.len() {
        if canon[idx] != idx {
            out[idx] = out[canon[idx]].clone();
        }
    }
    Ok(out
        .into_iter()
        .map(|cell| cell.expect("every grid index was filled"))
        .collect())
}
