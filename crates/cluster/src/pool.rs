//! Pooled keep-alive client connections to one worker.
//!
//! The gateway's throughput depends on never paying a TCP handshake on
//! the hot path: each worker gets a stack of idle keep-alive
//! [`Connection`]s that request handlers check out, use, and return.
//! A connection that fails — or that is checked out while streaming is
//! aborted — is dropped on the floor instead of returned, so the pool
//! self-heals after a worker restart; a reused connection that turns out
//! to be stale (the worker's 30 s idle timeout closed it server-side)
//! gets one transparent retry on a fresh connection.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mcdla_obs::Span;
use mcdla_serve::client::{Connection, Response, Timeouts};

/// A pool of idle keep-alive connections to one worker address.
#[derive(Debug)]
pub struct WorkerPool {
    addr: String,
    timeouts: Timeouts,
    idle: Mutex<Vec<Connection>>,
    max_idle: usize,
    /// Stale-connection retries performed (reused connection failed,
    /// fresh connection succeeded or was attempted).
    retries: AtomicU64,
}

impl WorkerPool {
    /// A pool for `addr`, keeping at most `max_idle` parked connections.
    pub fn new(addr: impl Into<String>, timeouts: Timeouts, max_idle: usize) -> Self {
        WorkerPool {
            addr: addr.into(),
            timeouts,
            idle: Mutex::new(Vec::new()),
            max_idle: max_idle.max(1),
            retries: AtomicU64::new(0),
        }
    }

    /// The worker address this pool connects to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stale-connection retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Checks out a connection: a parked one when available, else a
    /// fresh connect (which fails fast on a dead worker — the connect
    /// timeout is the health signal).
    pub fn checkout(&self) -> Result<PooledConn<'_>, String> {
        if let Some(conn) = self.idle.lock().expect("pool lock").pop() {
            return Ok(PooledConn {
                pool: self,
                conn: Some(conn),
                reused: true,
            });
        }
        self.connect_fresh()
    }

    /// Checks out a guaranteed-fresh connection (stale-retry path).
    pub fn connect_fresh(&self) -> Result<PooledConn<'_>, String> {
        let conn = Connection::open_with(&self.addr, self.timeouts)?;
        Ok(PooledConn {
            pool: self,
            conn: Some(conn),
            reused: false,
        })
    }

    /// One buffered request through the pool. A failure on a **reused**
    /// connection (stale keep-alive) retries once on a fresh one; a
    /// failure on a fresh connection is the worker's answer.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, String> {
        self.request_with(method, path, &[], body)
    }

    /// [`WorkerPool::request`] with extra request headers (the gateway
    /// propagates `X-Mcdla-Request-Id` this way).
    pub fn request_with(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> Result<Response, String> {
        let mut conn = {
            let _s = Span::enter("pool.checkout");
            self.checkout()?
        };
        match conn.get().request_with(method, path, headers, body) {
            Ok(response) => {
                conn.release();
                Ok(response)
            }
            Err(first) if conn.reused => {
                // The parked connection went stale; pay one reconnect.
                drop(conn);
                self.retries.fetch_add(1, Ordering::Relaxed);
                let mut fresh = self
                    .connect_fresh()
                    .map_err(|e| format!("{e} (after a stale pooled connection: {first})"))?;
                let response = fresh.get().request_with(method, path, headers, body)?;
                fresh.release();
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    fn park(&self, conn: Connection) {
        let mut idle = self.idle.lock().expect("pool lock");
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }

    /// Parked connections right now (observability / tests).
    pub fn idle_len(&self) -> usize {
        self.idle.lock().expect("pool lock").len()
    }
}

/// A checked-out connection. Dropping it **discards** the connection —
/// the safe default for every error path; call [`PooledConn::release`]
/// after a cleanly-framed exchange to park it for reuse.
#[derive(Debug)]
pub struct PooledConn<'a> {
    pool: &'a WorkerPool,
    conn: Option<Connection>,
    /// True when this connection came from the idle stack (and may
    /// therefore be stale).
    pub reused: bool,
}

impl PooledConn<'_> {
    /// The underlying connection.
    pub fn get(&mut self) -> &mut Connection {
        self.conn
            .as_mut()
            .expect("connection present until release")
    }

    /// Returns the connection to the pool for reuse. Only call when the
    /// last response was fully read — a mid-response connection would
    /// desync the next user.
    pub fn release(mut self) {
        if let Some(conn) = self.conn.take() {
            self.pool.park(conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpListener;

    /// A hand-rolled single-shot HTTP worker stub.
    fn stub_server(responses: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
        let addr = listener.local_addr().expect("stub addr").to_string();
        let handle = std::thread::spawn(move || {
            for response in responses {
                let (mut stream, _) = listener.accept().expect("accept");
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                let _ = stream.write_all(response.as_bytes());
            }
        });
        (addr, handle)
    }

    fn ok_response(body: &str) -> String {
        format!(
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn request_round_trips_and_parks_the_connection() {
        let (addr, handle) = stub_server(vec![ok_response("{\"a\":1}")]);
        let pool = WorkerPool::new(&addr, Timeouts::default(), 4);
        let resp = pool.request("GET", "/healthz", None).expect("request");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"a\":1}");
        assert_eq!(pool.idle_len(), 1);
        handle.join().unwrap();
    }

    #[test]
    fn stale_pooled_connection_retries_once_on_a_fresh_one() {
        // Two accepts: the first connection answers then is closed by
        // the stub (stale in the pool); the second answers the retry.
        let (addr, handle) = stub_server(vec![ok_response("{\"n\":1}"), ok_response("{\"n\":2}")]);
        let pool = WorkerPool::new(&addr, Timeouts::default(), 4);
        assert_eq!(pool.request("GET", "/x", None).unwrap().body, "{\"n\":1}");
        // The stub dropped its end after responding; the parked
        // connection is now stale and the next request must transparently
        // reconnect.
        assert_eq!(pool.idle_len(), 1);
        let resp = pool.request("GET", "/x", None).expect("stale retry");
        assert_eq!(resp.body, "{\"n\":2}");
        assert_eq!(pool.retries(), 1);
        handle.join().unwrap();
    }

    #[test]
    fn dead_worker_fails_fast_with_the_address_named() {
        // Bind-then-drop guarantees a refusing port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let pool = WorkerPool::new(&addr, Timeouts::default(), 4);
        let err = pool.request("GET", "/healthz", None).unwrap_err();
        assert!(err.contains(&addr), "error does not name the worker: {err}");
    }
}
