//! # `mcdla-parallel` — parallel-training partitioners
//!
//! The parallelization substrate of §II-C (Fig. 3): given a network and a
//! worker count, produce the per-worker compute scaling and the
//! inter-device synchronization schedule for
//!
//! * **data-parallel** training — same model on every worker, batch split
//!   `1/p`; one dW all-reduce per physical weight tensor during
//!   backpropagation, fused into NCCL-style buckets (the paper's 8 MB
//!   target synchronization size), overlappable with compute;
//! * **model-parallel** training — same batch on every worker, channels
//!   split `1/p` (the Krizhevsky parallelization the paper adopts); an
//!   overlappable X all-gather after every weighted layer's forward pass
//!   (frameworks chunk-pipeline it with the consuming layer) and a blocking
//!   dX all-reduce after its backward pass.
//!
//! Model-parallel training therefore synchronizes far more often and with
//! larger payloads — exactly why Fig. 11(b)'s synchronization bars dwarf
//! Fig. 11(a)'s.
//!
//! # Examples
//!
//! ```
//! use mcdla_dnn::{Benchmark, DataType};
//! use mcdla_parallel::{ParallelStrategy, WorkerPlan};
//!
//! let net = Benchmark::AlexNet.build();
//! let dp = WorkerPlan::plan(&net, ParallelStrategy::DataParallel, 8, 512, DataType::F32);
//! let mp = WorkerPlan::plan(&net, ParallelStrategy::ModelParallel, 8, 512, DataType::F32);
//! // Data-parallel workers each see 1/8 of the batch...
//! assert_eq!(dp.worker_batch, 64);
//! // ...while model-parallel workers see the whole batch but 1/8 the MACs.
//! assert_eq!(mp.worker_batch, 512);
//! assert!((mp.macs_scale - 0.125).abs() < 1e-12);
//! // Model-parallel synchronizes more, and with bigger payloads.
//! assert!(mp.sync_ops.len() > dp.sync_ops.len());
//! assert!(mp.total_sync_bytes() > dp.total_sync_bytes());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use mcdla_dnn::{DataType, LayerId, Network};
use mcdla_interconnect::CollectiveKind;
use serde::{Deserialize, Serialize};

/// The two parallelization schemes of Fig. 3.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize)]
pub enum ParallelStrategy {
    /// Same model everywhere, batch split across workers.
    DataParallel,
    /// Same batch everywhere, model (output channels) split across workers.
    ModelParallel,
}

impl ParallelStrategy {
    /// Both strategies, in the paper's presentation order.
    pub const ALL: [ParallelStrategy; 2] = [
        ParallelStrategy::DataParallel,
        ParallelStrategy::ModelParallel,
    ];

    /// The wire (serde) name — the PascalCase variant identifier the
    /// derived `Serialize` emits.
    pub fn wire_name(self) -> &'static str {
        match self {
            ParallelStrategy::DataParallel => "DataParallel",
            ParallelStrategy::ModelParallel => "ModelParallel",
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ParallelStrategy::DataParallel => "data-parallel",
            ParallelStrategy::ModelParallel => "model-parallel",
        }
    }
}

// Hand-written (not derived) so wire payloads may use either the wire
// name (`DataParallel`) or the human label (`data-parallel`), in any
// case, and an unknown name answers with the full accepted list.
impl serde::Deserialize for ParallelStrategy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::expected("string", "ParallelStrategy"))?;
        ParallelStrategy::ALL
            .iter()
            .copied()
            .find(|p| s.eq_ignore_ascii_case(p.wire_name()) || s.eq_ignore_ascii_case(p.name()))
            .ok_or_else(|| {
                let accepted: Vec<String> = ParallelStrategy::ALL
                    .iter()
                    .map(|p| format!("{} / {}", p.wire_name(), p.name()))
                    .collect();
                serde::Error::custom(format!(
                    "unknown ParallelStrategy `{s}` (accepted, case-insensitive: {})",
                    accepted.join(", ")
                ))
            })
    }
}

impl std::fmt::Display for ParallelStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// When a synchronization operation becomes ready to launch.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncTrigger {
    /// After the forward pass of the layer completes.
    AfterForward(LayerId),
    /// After the backward pass of the layer completes.
    AfterBackward(LayerId),
}

impl SyncTrigger {
    /// The layer this trigger is attached to.
    pub fn layer(self) -> LayerId {
        match self {
            SyncTrigger::AfterForward(l) | SyncTrigger::AfterBackward(l) => l,
        }
    }

    /// True for forward-phase triggers.
    pub fn is_forward(self) -> bool {
        matches!(self, SyncTrigger::AfterForward(_))
    }
}

/// One collective synchronization in the per-iteration schedule.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncOp {
    /// Which collective primitive runs (Fig. 4).
    pub kind: CollectiveKind,
    /// Logical payload size S in bytes (the full tensor being synchronized).
    pub bytes: u64,
    /// Launch point.
    pub trigger: SyncTrigger,
    /// Whether the next layer's compute must wait for this collective
    /// (model-parallel boundaries) or may overlap with it (data-parallel dW
    /// accumulation).
    pub blocking: bool,
}

/// Per-worker execution plan for one training iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerPlan {
    /// Parallelization scheme.
    pub strategy: ParallelStrategy,
    /// Number of workers p.
    pub workers: usize,
    /// Global mini-batch size.
    pub global_batch: u64,
    /// Batch size appearing in each worker's tensors (global/p for DP,
    /// global for MP).
    pub worker_batch: u64,
    /// Per-layer MAC multiplier relative to a full layer at `worker_batch`
    /// (1 for DP; 1/p for MP, whose workers own 1/p of each layer's output
    /// channels).
    pub macs_scale: f64,
    /// Fraction of each weight tensor held per worker (1 for DP, 1/p for
    /// MP).
    pub weight_scale: f64,
    /// Fraction of each activation stash held per worker, applied to a
    /// [`mcdla_dnn::Network`] overlay schedule analyzed at `worker_batch`.
    /// DP workers stash their whole (batch-split) feature maps (1.0); MP
    /// workers stash the 1/p channel slice they produced and re-materialize
    /// full tensors through the boundary collectives already in `sync_ops`
    /// (the re-gather rides the opposite ring direction of the blocking dX
    /// all-reduce).
    pub stash_scale: f64,
    /// Synchronization schedule, in trigger order (forward triggers in topo
    /// order, then backward triggers in reverse topo order).
    pub sync_ops: Vec<SyncOp>,
}

impl WorkerPlan {
    /// Builds the per-worker plan.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `global_batch < workers` for
    /// data-parallel training.
    pub fn plan(
        net: &Network,
        strategy: ParallelStrategy,
        workers: usize,
        global_batch: u64,
        dtype: DataType,
    ) -> WorkerPlan {
        assert!(workers > 0, "need at least one worker");
        match strategy {
            ParallelStrategy::DataParallel => {
                assert!(
                    global_batch >= workers as u64,
                    "data-parallel batch must cover all workers"
                );
                let worker_batch = global_batch / workers as u64;
                let mut sync_ops = Vec::new();
                if workers > 1 {
                    // One dW all-reduce per physical weight tensor. Backward
                    // runs in reverse topological order, so a shared-weight
                    // group's gradient is complete when its *first* member
                    // (lowest layer id) finishes backpropagation.
                    let mut groups_seen = std::collections::BTreeSet::new();
                    for l in net.layers() {
                        if l.has_weights() && groups_seen.insert(l.weight_group()) {
                            sync_ops.push(SyncOp {
                                kind: CollectiveKind::AllReduce,
                                bytes: l.weight_bytes(dtype),
                                trigger: SyncTrigger::AfterBackward(l.id()),
                                blocking: false,
                            });
                        }
                    }
                    // Emit in backward (reverse topological) trigger order.
                    sync_ops.reverse();
                }
                WorkerPlan {
                    strategy,
                    workers,
                    global_batch,
                    worker_batch,
                    macs_scale: 1.0,
                    weight_scale: 1.0,
                    stash_scale: 1.0,
                    sync_ops,
                }
            }
            ParallelStrategy::ModelParallel => {
                let p = workers as f64;
                let mut fwd = Vec::new();
                let mut bwd = Vec::new();
                if workers > 1 {
                    for l in net.layers() {
                        if !l.has_weights() {
                            continue;
                        }
                        // Forward: gather the full output feature map Y
                        // across the channel-split workers. Frameworks
                        // chunk-pipeline this gather with the consuming
                        // layer's compute (§V: "DL frameworks try to overlap
                        // computation time with synchronization"), so it is
                        // overlappable; only the backward dX reduction is a
                        // hard layer boundary.
                        fwd.push(SyncOp {
                            kind: CollectiveKind::AllGather,
                            bytes: l.output_bytes(global_batch, dtype),
                            trigger: SyncTrigger::AfterForward(l.id()),
                            blocking: false,
                        });
                        // Backward: each worker holds a partial sum of the
                        // full dX; reduce before the previous layer's
                        // backward pass.
                        bwd.push(SyncOp {
                            kind: CollectiveKind::AllReduce,
                            bytes: l.input_bytes(global_batch, dtype),
                            trigger: SyncTrigger::AfterBackward(l.id()),
                            blocking: true,
                        });
                    }
                }
                bwd.reverse();
                let mut sync_ops = fwd;
                sync_ops.extend(bwd);
                WorkerPlan {
                    strategy,
                    workers,
                    global_batch,
                    worker_batch: global_batch,
                    macs_scale: 1.0 / p,
                    weight_scale: 1.0 / p,
                    stash_scale: 1.0 / p,
                    sync_ops,
                }
            }
        }
    }

    /// Total logical synchronization payload per iteration.
    pub fn total_sync_bytes(&self) -> u64 {
        self.sync_ops.iter().map(|o| o.bytes).sum()
    }

    /// Fuses consecutive **non-blocking** sync ops of the same kind into
    /// buckets of at least `bucket_bytes` (NCCL-style fusion; the paper's
    /// Fig. 9 uses an 8 MB target synchronization size). The bucket fires at
    /// the trigger of its **last-contributing** op (all members' gradients
    /// must exist). Blocking ops are never fused.
    pub fn fuse_buckets(&self, bucket_bytes: u64) -> Vec<SyncOp> {
        let mut out: Vec<SyncOp> = Vec::new();
        let mut acc: Option<SyncOp> = None;
        for op in &self.sync_ops {
            if op.blocking {
                if let Some(a) = acc.take() {
                    out.push(a);
                }
                out.push(*op);
                continue;
            }
            match &mut acc {
                None => acc = Some(*op),
                Some(a) if a.kind == op.kind => {
                    a.bytes += op.bytes;
                    a.trigger = op.trigger; // fires when the last member is ready
                }
                Some(a) => {
                    out.push(*a);
                    acc = Some(*op);
                }
            }
            if let Some(a) = &acc {
                if a.bytes >= bucket_bytes {
                    out.push(*a);
                    acc = None;
                }
            }
        }
        if let Some(a) = acc {
            out.push(a);
        }
        out
    }

    /// Per-worker memory-virtualization batch: the batch size at which the
    /// overlay schedule should be analyzed for one worker.
    pub fn virt_batch(&self) -> u64 {
        self.worker_batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdla_dnn::Benchmark;

    const DT: DataType = DataType::F32;

    #[test]
    fn data_parallel_sync_volume_equals_weight_bytes() {
        let net = Benchmark::VggE.build();
        let plan = WorkerPlan::plan(&net, ParallelStrategy::DataParallel, 8, 512, DT);
        assert_eq!(plan.total_sync_bytes(), net.total_weight_bytes(DT));
        assert!(plan.sync_ops.iter().all(|o| !o.blocking));
        assert!(plan
            .sync_ops
            .iter()
            .all(|o| o.kind == CollectiveKind::AllReduce));
        assert!(plan.sync_ops.iter().all(|o| !o.trigger.is_forward()));
    }

    #[test]
    fn data_parallel_triggers_run_in_backward_order() {
        let net = Benchmark::AlexNet.build();
        let plan = WorkerPlan::plan(&net, ParallelStrategy::DataParallel, 8, 512, DT);
        let idx: Vec<usize> = plan
            .sync_ops
            .iter()
            .map(|o| o.trigger.layer().index())
            .collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(idx, sorted, "dW all-reduces should follow backprop order");
        assert_eq!(idx.len(), 8); // one per weighted layer
    }

    #[test]
    fn rnn_data_parallel_syncs_one_shared_tensor() {
        let net = Benchmark::RnnGru.build(); // 187 timesteps, shared weights
        let plan = WorkerPlan::plan(&net, ParallelStrategy::DataParallel, 8, 512, DT);
        assert_eq!(plan.sync_ops.len(), 1, "one dW all-reduce per weight group");
        assert_eq!(plan.total_sync_bytes(), net.total_weight_bytes(DT));
    }

    #[test]
    fn model_parallel_syncs_activations_every_layer() {
        let net = Benchmark::AlexNet.build();
        let plan = WorkerPlan::plan(&net, ParallelStrategy::ModelParallel, 8, 512, DT);
        // 8 weighted layers x (1 all-gather + 1 all-reduce).
        assert_eq!(plan.sync_ops.len(), 16);
        // Forward gathers chunk-pipeline with the consuming layer
        // (overlappable); backward dX reductions are hard boundaries.
        assert!(plan.sync_ops[..8].iter().all(|o| !o.blocking));
        assert!(plan.sync_ops[8..].iter().all(|o| o.blocking));
        let gathers = plan
            .sync_ops
            .iter()
            .filter(|o| o.kind == CollectiveKind::AllGather)
            .count();
        assert_eq!(gathers, 8);
        // Forward gathers precede backward reduces; backward is reversed.
        assert!(plan.sync_ops[..8].iter().all(|o| o.trigger.is_forward()));
        let bwd_idx: Vec<usize> = plan.sync_ops[8..]
            .iter()
            .map(|o| o.trigger.layer().index())
            .collect();
        let mut sorted = bwd_idx.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(bwd_idx, sorted);
    }

    #[test]
    fn model_parallel_moves_more_data_than_data_parallel_for_cnns() {
        // §II-C / Fig. 3: model-parallel synchronizes feature maps (large
        // for CNNs), data-parallel synchronizes weights.
        for bm in [Benchmark::AlexNet, Benchmark::GoogLeNet, Benchmark::ResNet] {
            let net = bm.build();
            let dp = WorkerPlan::plan(&net, ParallelStrategy::DataParallel, 8, 512, DT);
            let mp = WorkerPlan::plan(&net, ParallelStrategy::ModelParallel, 8, 512, DT);
            assert!(
                mp.total_sync_bytes() > dp.total_sync_bytes(),
                "{bm}: MP {} should exceed DP {}",
                mp.total_sync_bytes(),
                dp.total_sync_bytes()
            );
        }
    }

    #[test]
    fn single_worker_plans_have_no_sync() {
        let net = Benchmark::ResNet.build();
        for strategy in ParallelStrategy::ALL {
            let plan = WorkerPlan::plan(&net, strategy, 1, 512, DT);
            assert!(plan.sync_ops.is_empty());
            assert_eq!(plan.total_sync_bytes(), 0);
        }
    }

    #[test]
    fn bucket_fusion_preserves_volume_and_order() {
        let net = Benchmark::GoogLeNet.build();
        let plan = WorkerPlan::plan(&net, ParallelStrategy::DataParallel, 8, 512, DT);
        let fused = plan.fuse_buckets(8 << 20);
        assert!(fused.len() < plan.sync_ops.len());
        assert_eq!(
            fused.iter().map(|o| o.bytes).sum::<u64>(),
            plan.total_sync_bytes()
        );
        // All buckets except possibly the last reach the 8 MB target.
        for b in &fused[..fused.len() - 1] {
            assert!(b.bytes >= 8 << 20, "undersized bucket: {}", b.bytes);
        }
        // Triggers remain in backward order.
        let idx: Vec<usize> = fused.iter().map(|o| o.trigger.layer().index()).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(idx, sorted);
    }

    #[test]
    fn bucket_fusion_does_not_touch_blocking_ops() {
        let net = Benchmark::AlexNet.build();
        let plan = WorkerPlan::plan(&net, ParallelStrategy::ModelParallel, 8, 512, DT);
        let fused = plan.fuse_buckets(u64::MAX);
        // The 8 blocking backward reductions survive unfused; the 8
        // non-blocking forward gathers may coalesce (here into one).
        let blocking: Vec<_> = fused.iter().filter(|o| o.blocking).collect();
        assert_eq!(blocking.len(), 8, "blocking ops must not fuse");
        assert_eq!(
            fused.iter().map(|o| o.bytes).sum::<u64>(),
            plan.total_sync_bytes(),
            "fusion must preserve total volume"
        );
    }

    #[test]
    fn dp_batch_division() {
        let net = Benchmark::VggE.build();
        for (workers, expect) in [(1usize, 512u64), (2, 256), (4, 128), (8, 64)] {
            let plan = WorkerPlan::plan(&net, ParallelStrategy::DataParallel, workers, 512, DT);
            assert_eq!(plan.worker_batch, expect);
            assert_eq!(plan.virt_batch(), expect);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let net = Benchmark::AlexNet.build();
        let _ = WorkerPlan::plan(&net, ParallelStrategy::DataParallel, 0, 512, DT);
    }
}
