//! Criterion microbenches of the simulation substrates: the fluid-flow
//! max-min solver, the ring-collective model, the overlay scheduler, and
//! one full iteration simulation per design point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcdla_core::{IterationSim, SystemConfig, SystemDesign};
use mcdla_dnn::{Benchmark, DataType};
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::{Bandwidth, Bytes, FlowNetwork, SimTime};
use mcdla_vmem::{VirtPolicy, VirtSchedule};

fn flow_network(c: &mut Criterion) {
    c.bench_function("substrates/flow_max_min_32_flows", |b| {
        b.iter(|| {
            let mut net = FlowNetwork::new();
            let shared = net.add_channel("socket", Bandwidth::gb_per_sec(80.0));
            let mut paths = Vec::new();
            for i in 0..32 {
                let own = net.add_channel(format!("dev{i}"), Bandwidth::gb_per_sec(16.0));
                paths.push(vec![own, shared]);
            }
            for p in &paths {
                net.open_flow(SimTime::ZERO, p, Bytes::from_mb(100)).unwrap();
            }
            black_box(net.drain_all())
        })
    });
}

fn overlay_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates/overlay_schedule");
    for bm in [Benchmark::GoogLeNet, Benchmark::RnnGru] {
        let net = bm.build();
        g.bench_function(format!("{bm}"), |b| {
            b.iter(|| {
                black_box(VirtSchedule::analyze(
                    &net,
                    64,
                    DataType::F32,
                    VirtPolicy::paper_default(),
                ))
            })
        });
    }
    g.finish();
}

fn iteration_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates/iteration");
    let net = Benchmark::GoogLeNet.build();
    for design in SystemDesign::ALL {
        g.bench_function(design.name(), |b| {
            b.iter(|| {
                let sim = IterationSim::new(
                    SystemConfig::new(design),
                    &net,
                    ParallelStrategy::DataParallel,
                );
                black_box(sim.run())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, flow_network, overlay_schedule, iteration_sim);
criterion_main!(benches);
