//! Timing microbenches of the simulation substrates: the fluid-flow
//! max-min solver, the overlay scheduler, one full iteration simulation
//! per design point, and the scenario runner's cold-cache grid execution.

use std::hint::black_box;

use mcdla_bench::timing::bench;
use mcdla_core::{IterationSim, Runner, ScenarioGrid, SystemConfig, SystemDesign};
use mcdla_dnn::{Benchmark, DataType};
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::{Bandwidth, Bytes, FlowNetwork, SimTime};
use mcdla_vmem::{VirtPolicy, VirtSchedule};

fn main() {
    bench("substrates/flow_max_min_32_flows", 20, || {
        let mut net = FlowNetwork::new();
        let shared = net.add_channel("socket", Bandwidth::gb_per_sec(80.0));
        let mut paths = Vec::new();
        for i in 0..32 {
            let own = net.add_channel(format!("dev{i}"), Bandwidth::gb_per_sec(16.0));
            paths.push(vec![own, shared]);
        }
        for p in &paths {
            net.open_flow(SimTime::ZERO, p, Bytes::from_mb(100))
                .unwrap();
        }
        black_box(net.drain_all())
    });

    for bm in [Benchmark::GoogLeNet, Benchmark::RnnGru] {
        let net = bm.build();
        bench(&format!("substrates/overlay_schedule/{bm}"), 20, || {
            black_box(VirtSchedule::analyze(
                &net,
                64,
                DataType::F32,
                VirtPolicy::paper_default(),
            ))
        });
    }

    let net = Benchmark::GoogLeNet.build();
    for design in SystemDesign::ALL {
        bench(
            &format!("substrates/iteration/{}", design.name()),
            10,
            || {
                let sim = IterationSim::new(
                    SystemConfig::new(design),
                    &net,
                    ParallelStrategy::DataParallel,
                );
                black_box(sim.run())
            },
        );
    }

    // The scenario runner itself: the full 96-cell §V grid on a cold
    // cache, serial vs parallel.
    let scenarios = ScenarioGrid::paper_default().scenarios();
    for threads in [1usize, 4] {
        bench(
            &format!("substrates/grid_96_cells/threads_{threads}"),
            3,
            || {
                let runner = Runner::with_threads(threads);
                black_box(runner.run_grid(&scenarios))
            },
        );
    }
}
