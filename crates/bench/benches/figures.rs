//! Criterion benches regenerating each figure's data set (Figs. 2, 9, 11,
//! 12, 13, 14). These time the *simulator*, demonstrating that every paper
//! figure regenerates in tractable time (§IV's "being able to perform
//! simulation in tractable amount of time is crucial").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcdla_core::experiment;
use mcdla_interconnect::{CollectiveKind, CollectiveModel, RingShape};
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::Bytes;

fn fig2(c: &mut Criterion) {
    c.benchmark_group("fig2")
        .sample_size(10)
        .bench_function("generations_sweep", |b| {
            b.iter(|| black_box(experiment::fig2()))
        });
}

fn fig9(c: &mut Criterion) {
    let model = CollectiveModel::paper_fig9();
    c.bench_function("fig9/collective_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for nodes in 2..=36 {
                for kind in CollectiveKind::ALL {
                    acc += model
                        .latency(kind, Bytes::from_mib(8), RingShape::device_ring(nodes))
                        .as_secs_f64();
                }
            }
            black_box(acc)
        })
    });
}

fn fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for strategy in ParallelStrategy::ALL {
        g.bench_function(format!("breakdown_{strategy}"), |b| {
            b.iter(|| black_box(experiment::fig11(strategy)))
        });
    }
    g.finish();
}

fn fig12(c: &mut Criterion) {
    c.benchmark_group("fig12")
        .sample_size(10)
        .bench_function("cpu_bandwidth", |b| {
            b.iter(|| black_box(experiment::fig12()))
        });
}

fn fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    for strategy in ParallelStrategy::ALL {
        g.bench_function(format!("performance_{strategy}"), |b| {
            b.iter(|| black_box(experiment::fig13(strategy)))
        });
    }
    g.finish();
}

fn fig14(c: &mut Criterion) {
    c.benchmark_group("fig14")
        .sample_size(10)
        .bench_function("batch_sweep", |b| {
            b.iter(|| black_box(experiment::fig14(&[128, 256, 1024, 2048])))
        });
}

criterion_group!(benches, fig2, fig9, fig11, fig12, fig13, fig14);
criterion_main!(benches);
