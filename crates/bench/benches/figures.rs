//! Timing benches regenerating each figure's data set (Figs. 2, 9, 11,
//! 12, 13, 14). These time the *simulator*, demonstrating that every paper
//! figure regenerates in tractable time (§IV's "being able to perform
//! simulation in tractable amount of time is crucial").
//!
//! Figure data flows through the shared scenario runner, so iterations
//! after the first measure the memoized end-to-end path the CLI takes —
//! exactly the performance a user of `mcdla all` experiences. The cold
//! path is covered by `substrates.rs`'s grid benches on fresh runners.

use std::hint::black_box;

use mcdla_bench::timing::bench;
use mcdla_core::experiment;
use mcdla_interconnect::{CollectiveKind, CollectiveModel, RingShape};
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::Bytes;

fn main() {
    bench("fig2/generations_sweep", 10, || {
        black_box(experiment::fig2())
    });

    let model = CollectiveModel::paper_fig9();
    bench("fig9/collective_sweep", 10, || {
        let mut acc = 0.0f64;
        for nodes in 2..=36 {
            for kind in CollectiveKind::ALL {
                acc += model
                    .latency(kind, Bytes::from_mib(8), RingShape::device_ring(nodes))
                    .as_secs_f64();
            }
        }
        black_box(acc)
    });

    for strategy in ParallelStrategy::ALL {
        bench(&format!("fig11/breakdown_{strategy}"), 10, || {
            black_box(experiment::fig11(strategy))
        });
    }

    bench("fig12/cpu_bandwidth", 10, || black_box(experiment::fig12()));

    for strategy in ParallelStrategy::ALL {
        bench(&format!("fig13/performance_{strategy}"), 10, || {
            black_box(experiment::fig13(strategy))
        });
    }

    bench("fig14/batch_sweep", 10, || {
        black_box(experiment::fig14(&[128, 256, 1024, 2048]))
    });
}
