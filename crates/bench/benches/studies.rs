//! Criterion benches for the §V-B sensitivity and §V-D scalability studies.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcdla_core::experiment;
use mcdla_dnn::Benchmark;

fn scalability(c: &mut Criterion) {
    c.benchmark_group("scalability")
        .sample_size(10)
        .bench_function("cnn_1_to_8_devices", |b| {
            b.iter(|| black_box(experiment::scalability(&Benchmark::CNNS)))
        });
}

fn sensitivity(c: &mut Criterion) {
    c.benchmark_group("sensitivity")
        .sample_size(10)
        .bench_function("all_studies", |b| {
            b.iter(|| black_box(experiment::sensitivity()))
        });
}

fn ablations(c: &mut Criterion) {
    c.benchmark_group("ablations")
        .sample_size(10)
        .bench_function("dc_dla_suite", |b| {
            b.iter(|| black_box(mcdla_core::ablation::ablations(mcdla_core::SystemDesign::DcDla)))
        });
}

fn scale_out(c: &mut Criterion) {
    c.benchmark_group("scale_out")
        .sample_size(10)
        .bench_function("resnet_8_to_64", |b| {
            b.iter(|| black_box(experiment::scale_out(Benchmark::ResNet, &[8, 16, 32, 64])))
        });
}

criterion_group!(benches, scalability, sensitivity, ablations, scale_out);
criterion_main!(benches);
