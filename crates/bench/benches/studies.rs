//! Timing benches for the §V-B sensitivity and §V-D scalability studies.

use std::hint::black_box;

use mcdla_bench::timing::bench;
use mcdla_core::experiment;
use mcdla_dnn::Benchmark;

fn main() {
    bench("scalability/cnn_1_to_8_devices", 10, || {
        black_box(experiment::scalability(&Benchmark::CNNS))
    });

    bench("sensitivity/all_studies", 10, || {
        black_box(experiment::sensitivity())
    });

    bench("ablations/dc_dla_suite", 10, || {
        black_box(mcdla_core::ablation::ablations(
            mcdla_core::SystemDesign::DcDla,
        ))
    });

    bench("scale_out/resnet_8_to_64", 10, || {
        black_box(experiment::scale_out(Benchmark::ResNet, &[8, 16, 32, 64]))
    });
}
