//! Timing benches regenerating each table's data (Tables II, III, IV).

use std::hint::black_box;

use mcdla_accel::DeviceConfig;
use mcdla_bench::timing::bench;
use mcdla_dnn::{Benchmark, DataType};
use mcdla_memnode::{DimmKind, MemoryNodeConfig, SystemPower};

fn main() {
    bench("table2/configs", 100, || {
        let d = DeviceConfig::paper_baseline();
        let m = MemoryNodeConfig::paper_baseline();
        black_box((d.peak_macs_per_sec(), m.capacity_bytes()))
    });

    for bm in Benchmark::ALL {
        bench(&format!("table3/build_{bm}"), 20, || {
            let net = bm.build();
            black_box((net.total_params(), net.footprint(512, DataType::F32)))
        });
    }

    bench("table4/power_model", 100, || {
        let mut acc = 0.0f64;
        for dimm in DimmKind::ALL {
            let node = MemoryNodeConfig::with_dimm(dimm);
            let p = SystemPower::mc_dla(&node, 8);
            acc += node.gb_per_watt() + p.perf_per_watt_gain(2.8);
        }
        black_box(acc)
    });
}
