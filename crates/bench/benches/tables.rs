//! Criterion benches regenerating each table's data (Tables II, III, IV).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcdla_accel::DeviceConfig;
use mcdla_dnn::{Benchmark, DataType};
use mcdla_memnode::{DimmKind, MemoryNodeConfig, SystemPower};

fn table2(c: &mut Criterion) {
    c.bench_function("table2/configs", |b| {
        b.iter(|| {
            let d = DeviceConfig::paper_baseline();
            let m = MemoryNodeConfig::paper_baseline();
            black_box((d.peak_macs_per_sec(), m.capacity_bytes()))
        })
    });
}

fn table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    for bm in Benchmark::ALL {
        g.bench_function(format!("build_{bm}"), |b| {
            b.iter(|| {
                let net = bm.build();
                black_box((net.total_params(), net.footprint(512, DataType::F32)))
            })
        });
    }
    g.finish();
}

fn table4(c: &mut Criterion) {
    c.bench_function("table4/power_model", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for dimm in DimmKind::ALL {
                let node = MemoryNodeConfig::with_dimm(dimm);
                let p = SystemPower::mc_dla(&node, 8);
                acc += node.gb_per_watt() + p.perf_per_watt_gain(2.8);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, table2, table3, table4);
criterion_main!(benches);
