//! The fleet bench behind `mcdla cluster-bench`: spins up in-process
//! fleets of 1/2/4 workers behind a gateway and measures what a fleet
//! is *for*, packaging the result as `BENCH_cluster.json`.
//!
//! Two workloads, measured at every fleet size:
//!
//! * **Hot path** — the full 96-cell paper matrix, fully warmed, then
//!   hammered through the gateway over keep-alive connections: cached
//!   req/s and p50/p99 latency, plus streamed-grid cells/s. This prices
//!   the gateway hop; on a box with enough cores it also shows worker
//!   parallelism.
//! * **Capacity pressure** — the headline scaling story and the CI
//!   gate. A working set of [`PRESSURE_WORKING_SET`] distinct cells is
//!   served by workers whose stores are bounded to
//!   [`PRESSURE_CACHE_CAP`] cells each. One worker can hold only a
//!   quarter of the set, so ~3/4 of uniform-random requests re-simulate
//!   (the single-node baseline `serve-bench` commits to
//!   `BENCH_service.json` under the same workload); four workers hold
//!   nearly the whole set across their consistent-hash slices (slices
//!   aren't perfectly even, so the fullest worker still evicts a
//!   little) and answer ~90 % from cache. Aggregate cache capacity is the fleet resource that scales
//!   on *any* machine — including single-core CI boxes where wall-clock
//!   parallelism cannot.

use std::time::Instant;

use mcdla_cluster::{spawn_local_fleet, FleetConfig};
use mcdla_core::{Scenario, SystemDesign};
use mcdla_dnn::Benchmark;
use mcdla_obs::Histogram;
use mcdla_parallel::ParallelStrategy;
use mcdla_serve::client::Connection;
use serde::{Serialize, Value};

use crate::render_table;

/// Distinct cells in the capacity-pressure working set.
pub const PRESSURE_WORKING_SET: usize = 128;

/// Per-worker store bound for the pressure workload: a quarter of the
/// working set, so one worker thrashes and four hold everything.
pub const PRESSURE_CACHE_CAP: usize = 32;

/// The shared capacity-pressure working set — identical in
/// `serve-bench` (the committed single-node baseline) and
/// `cluster-bench` (the fleet measurement), so the scaling ratio
/// compares like with like. Distinct global batch sizes make distinct
/// cells of near-identical simulation cost. The cells are deliberately
/// **expensive** ones — 4096-device scale-out ResNet (§VI fabric, ~2 ms
/// each) — because the capacity story is about what a miss costs: a
/// cheap-to-recompute working set doesn't need a bigger cache, a 4096-
/// device sweep does.
pub fn pressure_cells() -> Vec<Scenario> {
    (0..PRESSURE_WORKING_SET)
        .map(|i| {
            Scenario::new(
                SystemDesign::McDlaBwAware,
                Benchmark::ResNet,
                ParallelStrategy::DataParallel,
            )
            .with_devices(4096)
            .with_batch(8192 + i as u64)
        })
        .collect()
}

/// Requests per thread for the pressure phase, derived from the hot
/// phase's count: misses cost ~2 ms each, so a quarter of the hot
/// request count keeps the thrashing single-node run to a few seconds
/// while still measuring thousands of requests.
pub(crate) fn pressure_requests(requests_per_thread: usize) -> usize {
    (requests_per_thread / 4).max(50)
}

/// One load phase's measurement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Load {
    pub requests_per_sec: f64,
    pub latency_p50_us: f64,
    pub latency_p99_us: f64,
}

impl Load {
    pub(crate) fn to_value(self) -> Value {
        Value::Map(vec![
            ("requests_per_sec".into(), Value::F64(self.requests_per_sec)),
            ("latency_p50_us".into(), Value::F64(self.latency_p50_us)),
            ("latency_p99_us".into(), Value::F64(self.latency_p99_us)),
        ])
    }
}

/// Hammers `POST /simulate` at `addr` from `threads` persistent
/// connections, `per_thread` requests each, bodies drawn
/// deterministically (seeded LCG per thread) from `bodies`. Latencies
/// are accumulated into one shared lock-free [`Histogram`] (no
/// per-request `Vec` growth, no post-hoc sort) and the percentiles read
/// off its snapshot.
///
/// # Panics
///
/// Panics when a connection or request fails — a bench environment
/// problem, not a measurement.
pub(crate) fn hammer(addr: &str, bodies: &[String], threads: usize, per_thread: usize) -> Load {
    let hist = Histogram::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let hist = &hist;
            scope.spawn(move || {
                let mut conn = Connection::open(addr).expect("open bench connection");
                let mut lcg: u64 = 0x9e37_79b9_7f4a_7c15 ^ (t as u64).wrapping_mul(0xdead_beef);
                for _ in 0..per_thread {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let body = &bodies[((lcg >> 33) as usize) % bodies.len()];
                    let t0 = Instant::now();
                    let resp = conn
                        .request("POST", "/simulate", Some(body))
                        .expect("bench simulate");
                    hist.observe_duration(t0.elapsed());
                    assert!(resp.is_ok(), "bench simulate failed: {}", resp.body);
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let snap = hist.snapshot();
    Load {
        requests_per_sec: (threads * per_thread) as f64 / wall.max(1e-9),
        latency_p50_us: snap.quantile(0.5) * 1e6,
        latency_p99_us: snap.quantile(0.99) * 1e6,
    }
}

/// The `mcdla cluster-bench` result.
#[derive(Debug)]
pub struct ClusterBenchResult {
    /// Pretty-printed JSON payload (the `BENCH_cluster.json` content).
    pub json: String,
    /// Human-readable summary table.
    pub summary: String,
    /// Capacity-pressure req/s at 4 workers over 1 worker.
    pub pressure_scaling: f64,
    /// Capacity-pressure req/s at 4 workers (the CI-gated number,
    /// compared against the committed single-node baseline).
    pub pressure_rps_4w: f64,
}

struct FleetRun {
    workers: usize,
    hot: Load,
    stream_cells: usize,
    stream_cells_per_sec: f64,
    pressure: Load,
    pressure_hit_rate: f64,
}

/// One `(hits, misses)` reading of the fleet via `GET /cluster/stats`.
fn fleet_hits_misses(conn: &mut Connection) -> (u64, u64) {
    let resp = conn
        .request("GET", "/cluster/stats", None)
        .expect("cluster stats");
    assert!(resp.is_ok(), "cluster stats failed: {}", resp.body);
    let parsed = serde::json::parse(&resp.body).expect("cluster stats JSON");
    let get = |path: &[&str]| -> u64 {
        let mut v = &parsed;
        for key in path {
            let Value::Map(entries) = v else { return 0 };
            match entries.iter().find(|(k, _)| k == key) {
                Some((_, inner)) => v = inner,
                None => return 0,
            }
        }
        match v {
            Value::U64(n) => *n,
            _ => 0,
        }
    };
    (get(&["fleet", "hits"]), get(&["fleet", "misses"]))
}

fn run_fleet(workers: usize, client_threads: usize, requests_per_thread: usize) -> FleetRun {
    // --- Hot path: unbounded stores, fully warmed paper matrix. ---
    let fleet = spawn_local_fleet(&FleetConfig {
        workers,
        worker_threads: client_threads + 1,
        cache_cap: None,
        gateway_threads: client_threads + 2,
        probe_interval: None,
        ..FleetConfig::default()
    })
    .expect("spawn hot fleet");
    let addr = fleet.gateway_addr().to_string();
    let mut probe = Connection::open(&addr).expect("open probe connection");

    // Warm every worker's slice of the matrix, and collect the cell
    // bodies the hammer cycles over.
    let warm = probe
        .request("POST", "/grid", Some("{}"))
        .expect("warm grid");
    assert!(warm.is_ok(), "warm grid failed: {}", warm.body);
    let parsed = serde::json::parse(&warm.body).expect("warm grid JSON");
    let Value::Map(entries) = &parsed else {
        panic!("grid answer is not an object")
    };
    let Some((_, Value::Seq(cells))) = entries.iter().find(|(k, _)| k == "cells") else {
        panic!("grid answer has no cells")
    };
    let bodies: Vec<String> = cells
        .iter()
        .map(|cell| {
            let Value::Map(cell) = cell else {
                panic!("cell is not an object")
            };
            let (_, scenario) = cell
                .iter()
                .find(|(k, _)| k == "scenario")
                .expect("cell scenario");
            serde::json::to_string(scenario)
        })
        .collect();

    let hot = hammer(&addr, &bodies, client_threads, requests_per_thread);

    // Streamed grid, fully cached: sustained cells/s through the
    // gateway's scatter-gather merge.
    let t0 = Instant::now();
    let stream = probe
        .request_stream("POST", "/grid?stream=1", Some("{}"))
        .expect("grid stream");
    assert_eq!(stream.status, 200, "grid stream rejected");
    let lines = stream.collect_lines().expect("clean stream");
    let stream_wall = t0.elapsed().as_secs_f64();
    let stream_cells = lines.len();
    let stream_cells_per_sec = stream_cells as f64 / stream_wall.max(1e-9);
    drop(probe);
    fleet.shutdown();

    // --- Capacity pressure: bounded stores, working set 4x one bound. ---
    let fleet = spawn_local_fleet(&FleetConfig {
        workers,
        worker_threads: client_threads + 1,
        cache_cap: Some(PRESSURE_CACHE_CAP),
        gateway_threads: client_threads + 2,
        probe_interval: None,
        ..FleetConfig::default()
    })
    .expect("spawn pressure fleet");
    let addr = fleet.gateway_addr().to_string();
    let mut probe = Connection::open(&addr).expect("open probe connection");
    let pressure_bodies: Vec<String> = pressure_cells()
        .iter()
        .map(serde::json::to_string)
        .collect();
    // One warm pass so every resident slot is filled before measuring.
    let cells_body = serde::json::to_string(&Value::Map(vec![(
        "cells".into(),
        Value::Seq(pressure_cells().iter().map(|s| s.to_value()).collect()),
    )]));
    let warm = probe
        .request("POST", "/grid", Some(&cells_body))
        .expect("pressure warm grid");
    assert!(warm.is_ok(), "pressure warm failed: {}", warm.body);
    let (hits_before, misses_before) = fleet_hits_misses(&mut probe);
    let pressure = hammer(
        &addr,
        &pressure_bodies,
        client_threads,
        pressure_requests(requests_per_thread),
    );
    let (hits_after, misses_after) = fleet_hits_misses(&mut probe);
    drop(probe);
    fleet.shutdown();
    let hits = hits_after.saturating_sub(hits_before);
    let misses = misses_after.saturating_sub(misses_before);
    let pressure_hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    FleetRun {
        workers,
        hot,
        stream_cells,
        stream_cells_per_sec,
        pressure,
        pressure_hit_rate,
    }
}

/// Runs the 1/2/4-worker fleet sweep.
///
/// # Panics
///
/// Panics when a fleet cannot bind loopback ports or a request fails —
/// a bench environment problem, not a measurement.
pub fn cluster_bench(client_threads: usize, requests_per_thread: usize) -> ClusterBenchResult {
    let client_threads = client_threads.max(1);
    let requests_per_thread = requests_per_thread.max(1);
    let runs: Vec<FleetRun> = [1usize, 2, 4]
        .into_iter()
        .map(|workers| run_fleet(workers, client_threads, requests_per_thread))
        .collect();

    let one = &runs[0];
    let four = runs.iter().find(|r| r.workers == 4).expect("4-worker run");
    let pressure_scaling = four.pressure.requests_per_sec / one.pressure.requests_per_sec.max(1e-9);
    let hot_scaling = four.hot.requests_per_sec / one.hot.requests_per_sec.max(1e-9);

    let payload = Value::Map(vec![
        (
            "generated_by".into(),
            Value::Str("mcdla cluster-bench".into()),
        ),
        ("client_threads".into(), Value::U64(client_threads as u64)),
        (
            "requests_per_thread".into(),
            Value::U64(requests_per_thread as u64),
        ),
        (
            "pressure".into(),
            Value::Map(vec![
                (
                    "working_set".into(),
                    Value::U64(PRESSURE_WORKING_SET as u64),
                ),
                (
                    "cache_cap_per_worker".into(),
                    Value::U64(PRESSURE_CACHE_CAP as u64),
                ),
            ]),
        ),
        (
            "runs".into(),
            Value::Seq(
                runs.iter()
                    .map(|run| {
                        Value::Map(vec![
                            ("workers".into(), Value::U64(run.workers as u64)),
                            ("cached".into(), run.hot.to_value()),
                            (
                                "grid_stream".into(),
                                Value::Map(vec![
                                    ("cells".into(), Value::U64(run.stream_cells as u64)),
                                    ("cells_per_sec".into(), Value::F64(run.stream_cells_per_sec)),
                                ]),
                            ),
                            (
                                "capacity_pressure".into(),
                                match run.pressure.to_value() {
                                    Value::Map(mut entries) => {
                                        entries.push((
                                            "fleet_hit_rate".into(),
                                            Value::F64(run.pressure_hit_rate),
                                        ));
                                        Value::Map(entries)
                                    }
                                    other => other,
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "scaling".into(),
            Value::Map(vec![
                ("pressure_4w_over_1w".into(), Value::F64(pressure_scaling)),
                ("cached_4w_over_1w".into(), Value::F64(hot_scaling)),
            ]),
        ),
    ]);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for run in &runs {
        rows.push(vec![
            format!("{} worker(s): cached via gateway", run.workers),
            format!(
                "{:.0} req/s (p50 {:.1} us, p99 {:.1} us)",
                run.hot.requests_per_sec, run.hot.latency_p50_us, run.hot.latency_p99_us
            ),
        ]);
        rows.push(vec![
            format!(
                "{} worker(s): streamed grid ({} cells)",
                run.workers, run.stream_cells
            ),
            format!("{:.0} cells/s", run.stream_cells_per_sec),
        ]);
        rows.push(vec![
            format!("{} worker(s): capacity pressure", run.workers),
            format!(
                "{:.0} req/s (hit rate {:.0}%, p99 {:.1} us)",
                run.pressure.requests_per_sec,
                run.pressure_hit_rate * 100.0,
                run.pressure.latency_p99_us
            ),
        ]);
    }
    rows.push(vec![
        "pressure scaling 4w / 1w".into(),
        format!("{pressure_scaling:.2}x"),
    ]);
    let summary = render_table(
        &format!(
            "cluster-bench (loopback fleet; pressure = {PRESSURE_WORKING_SET}-cell working set, \
             {PRESSURE_CACHE_CAP}-cell store per worker)"
        ),
        &["metric", "value"],
        &rows,
    );

    ClusterBenchResult {
        json: serde::json::to_string_pretty(&payload),
        summary,
        pressure_scaling,
        pressure_rps_4w: four.pressure.requests_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_cells_are_distinct_and_valid() {
        let cells = pressure_cells();
        assert_eq!(cells.len(), PRESSURE_WORKING_SET);
        for cell in &cells {
            cell.validate().expect("pressure cell validates");
        }
        let digests: std::collections::BTreeSet<u64> = cells.iter().map(|c| c.digest()).collect();
        assert_eq!(
            digests.len(),
            PRESSURE_WORKING_SET,
            "cells must be distinct"
        );
        // The working set must overflow one worker's bound 4x, and fit
        // exactly into a 4-worker fleet.
        assert_eq!(PRESSURE_WORKING_SET, 4 * PRESSURE_CACHE_CAP);
    }

    #[test]
    fn a_tiny_fleet_sweep_measures_and_scales_capacity() {
        // A deliberately small run (debug build, shared CI cores): the
        // release-build scaling gate lives in CI against the committed
        // JSON; here we only require the machinery to work end to end.
        let result = cluster_bench(2, 60);
        assert!(result.json.contains("capacity_pressure"));
        assert!(result.json.contains("grid_stream"));
        assert!(result.summary.contains("pressure scaling"));
        assert!(result.pressure_rps_4w > 0.0);
    }
}
