//! # `mcdla-bench` — the evaluation harness
//!
//! One `mcdla` CLI regenerates every table and figure of the paper
//! (`cargo run --release --bin mcdla -- <subcommand>`):
//!
//! | subcommand | regenerates |
//! |---|---|
//! | `table2` | Table II device/memory-node configuration |
//! | `table3` | Table III benchmark suite |
//! | `table4` | Table IV memory-node power + §V-C perf/W |
//! | `fig2` | Fig. 2 execution time across device generations |
//! | `fig7` | Fig. 5/7 ring structure and link budgets |
//! | `fig9` | Fig. 9 collective latency vs ring size |
//! | `fig10` | Fig. 10 LOCAL vs BW_AWARE placement |
//! | `fig11` | Fig. 11 latency breakdown stacks |
//! | `fig12` | Fig. 12 CPU memory-bandwidth usage |
//! | `fig13` | Fig. 13 normalized performance |
//! | `fig14` | Fig. 14 batch-size sensitivity |
//! | `scalability` | §V-D multi-device scaling |
//! | `sensitivity` | §V-B sensitivity studies |
//! | `scale-out` | §VI NVSwitch-class weak scaling |
//! | `ablations` | mechanism ablation studies |
//! | `energy` | dynamic energy-per-iteration comparison |
//! | `paper-report` | the full paper-vs-measured summary |
//! | `sweep` | times every grid cell, writes `BENCH_scenarios.json` |
//! | `fabric-bench` | times the routed flow-level fabric vs the analytical model, writes `BENCH_fabric.json` |
//! | `all` | every report above, in order |
//!
//! Global flags: `--json` (machine-readable experiment data where
//! available), `--threads N` (worker threads; equivalent to the
//! `MCDLA_THREADS` environment variable), `--out FILE` (`sweep` output
//! path). The report bodies live in [`reports`]; the `mcdla` binary is a
//! thin dispatcher.
//!
//! Timing benches (`cargo bench -p mcdla-bench`) time the simulator
//! itself on each experiment through the [`timing`] harness.

#![warn(missing_docs)]

use std::fmt::Write as _;

pub mod cluster_bench;
pub mod collate;
pub mod fabric_bench;
pub mod obs_bench;
pub mod reports;
pub mod service;
pub mod stage_bench;
pub mod store_bench;
pub mod timing;

/// Renders an aligned ASCII table.
///
/// # Examples
///
/// ```
/// let t = mcdla_bench::render_table(
///     "demo",
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["b".into(), "2".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.contains("| b"));
/// ```
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |out: &mut String| {
        let _ = write!(out, "+");
        for w in &widths {
            let _ = write!(out, "{}+", "-".repeat(w + 2));
        }
        let _ = writeln!(out);
    };
    line(&mut out);
    let _ = write!(out, "|");
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:<w$} |");
    }
    let _ = writeln!(out);
    line(&mut out);
    for row in rows {
        let _ = write!(out, "|");
        for (c, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {c:<w$} |");
        }
        let _ = writeln!(out);
    }
    line(&mut out);
    out
}

/// Prints an aligned ASCII table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a GB/s quantity.
pub fn fmt_gbs(v: f64) -> String {
    format!("{v:.1} GB/s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "t",
            &["a", "long-header"],
            &[vec!["xxxxxx".into(), "1".into()]],
        );
        // All body lines equal width.
        let lens: Vec<usize> = t.lines().skip(1).map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{t}");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_x(2.816), "2.82x");
        assert_eq!(fmt_pct(0.321), "32.1%");
        assert_eq!(fmt_gbs(149.96), "150.0 GB/s");
    }
}
