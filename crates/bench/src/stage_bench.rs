//! The staged-engine bench behind `mcdla stage-bench`: times mega-grid
//! sweeps through the staged pipeline against the monolithic engine and
//! packages the result as `BENCH_stages.json`.
//!
//! Two grid shapes, both one-knob-varying over the full six-design
//! matrix:
//!
//! * **knob grid** (CI-gated, `speedup >= 5`): sweeps the cDMA
//!   activation-compression ratio (§V-B), a per-cell knob that enters
//!   the pipeline only at report assembly. Every stage table stays hot
//!   after the first handful of cells, so this shape measures the
//!   staged engine's designed sweet spot: fabric summaries, layer
//!   timings, worker plans, schedules, and collective costs are each
//!   built a handful of times instead of once per cell.
//! * **batch grid** (reported, not gated): sweeps the global batch
//!   size, the knob with the *widest* key blast radius — plans,
//!   schedules, and collective costs all key on it, so only the
//!   across-design reuse (six designs share one batch's artifacts)
//!   amortizes. The honest lower bound on what staging buys.
//!
//! Each grid also cross-checks a deterministic sample of cells for
//! bit-identical staged-vs-monolithic reports, so the bench doubles as
//! an end-to-end equivalence smoke at mega-grid scale.

use std::time::Instant;

use mcdla_core::{stages, Scenario, StageStats, SystemDesign};
use mcdla_dnn::Benchmark;
use mcdla_parallel::ParallelStrategy;
use serde::{Serialize as _, Value};

use crate::render_table;

/// The `mcdla stage-bench` result.
#[derive(Debug)]
pub struct StageBenchResult {
    /// Pretty-printed JSON payload (the `BENCH_stages.json` content).
    pub json: String,
    /// Human-readable summary table.
    pub summary: String,
    /// Staged-over-monolithic speedup on the knob grid (median of the
    /// per-chunk ratios) — the number the CI floor gates (>= 5x).
    pub speedup: f64,
}

/// One grid shape's measurements.
struct GridRow {
    label: String,
    knob: &'static str,
    cells: usize,
    mono_cells_per_sec: f64,
    staged_cells_per_sec: f64,
    /// Median of the per-chunk staged-over-monolithic ratios.
    speedup: f64,
    /// Per-stage counter deltas across this grid's staged pass.
    stages: Vec<StageStats>,
}

const DESIGNS: [SystemDesign; 6] = [
    SystemDesign::DcDla,
    SystemDesign::HcDla,
    SystemDesign::McDlaStar,
    SystemDesign::McDlaLocal,
    SystemDesign::McDlaBwAware,
    SystemDesign::DcDlaOracle,
];

const SUITE: [Benchmark; 4] = [
    Benchmark::GoogLeNet,
    Benchmark::RnnGru,
    Benchmark::ResNet,
    Benchmark::VggE,
];

/// Subtracts `before` from `after` counter-wise (gauges keep the after
/// value), yielding this grid's traffic out of the process-global
/// tables.
fn stage_delta(before: &[StageStats], after: &[StageStats]) -> Vec<StageStats> {
    after
        .iter()
        .zip(before)
        .map(|(a, b)| {
            debug_assert_eq!(a.stage, b.stage);
            let hits = a.hits - b.hits;
            let misses = a.misses - b.misses;
            StageStats {
                stage: a.stage.clone(),
                hits,
                misses,
                evictions: a.evictions - b.evictions,
                entries: a.entries,
                capacity: a.capacity,
                hit_rate: if hits + misses > 0 {
                    hits as f64 / (hits + misses) as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Times one grid shape: `make(i, benchmark, design)` yields the cell
/// at the i-th knob setting for one workload on one design; the grid is
/// `values` settings crossed with the full benchmark-suite x design
/// matrix. Every `sample_every`-th cell is cross-checked for a
/// bit-identical staged-vs-monolithic report.
fn bench_grid(
    label: &str,
    knob: &'static str,
    values: usize,
    make: impl Fn(u64, Benchmark, SystemDesign) -> Scenario,
) -> GridRow {
    let cells = values * SUITE.len() * DESIGNS.len();
    let sample_every = (cells / 64).max(1);

    // Untimed warmup through both engines: the first pass in a fresh
    // process otherwise pays its lazy startup costs (heap growth,
    // first-touch paging) and skews the ratio.
    for i in 0..(values.min(64)) as u64 {
        for &benchmark in &SUITE {
            for &design in &DESIGNS {
                std::hint::black_box(make(i, benchmark, design).simulate());
                std::hint::black_box(make(i, benchmark, design).simulate_monolithic());
            }
        }
    }

    // Time the engines interleaved over the same knob chunks: a
    // mega-grid pass runs for a minute-plus, so back-to-back whole-grid
    // passes would fold ambient frequency/thermal drift into the ratio.
    // The monolithic pass never touches the stage tables, so the
    // whole-loop counter delta is still pure staged traffic (and the
    // warmup above touches only the first few knob values, leaving the
    // tables effectively cold for the sweep).
    let before = stages::stage_stats();
    let chunk = (values / 64).max(1) as u64;
    let (mut staged_wall, mut mono_wall) = (0.0f64, 0.0f64);
    let mut ratios: Vec<f64> = Vec::new();
    let mut lo = 0u64;
    while lo < values as u64 {
        let hi = (lo + chunk).min(values as u64);
        let start = Instant::now();
        for i in lo..hi {
            for &benchmark in &SUITE {
                for &design in &DESIGNS {
                    std::hint::black_box(make(i, benchmark, design).simulate());
                }
            }
        }
        let staged_chunk = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for i in lo..hi {
            for &benchmark in &SUITE {
                for &design in &DESIGNS {
                    std::hint::black_box(make(i, benchmark, design).simulate_monolithic());
                }
            }
        }
        let mono_chunk = start.elapsed().as_secs_f64();
        staged_wall += staged_chunk;
        mono_wall += mono_chunk;
        ratios.push(mono_chunk / staged_chunk.max(1e-9));
        lo = hi;
    }
    let stage_traffic = stage_delta(&before, &stages::stage_stats());

    // The gated speedup is the *median* of the per-chunk ratios: both
    // engines see the same cells per chunk, so each ratio is an
    // unbiased sample, and the median votes out chunks where another
    // tenant of the host happened to steal memory bandwidth. The
    // cells/sec columns stay whole-grid totals.
    ratios.sort_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];

    // Equivalence spot-check on a deterministic sample: the staged
    // report must be bit-identical to a from-scratch compute.
    let mut checked = 0usize;
    for n in (0..cells).step_by(sample_every) {
        let i = n / (SUITE.len() * DESIGNS.len());
        let rest = n % (SUITE.len() * DESIGNS.len());
        let cell = make(
            i as u64,
            SUITE[rest / DESIGNS.len()],
            DESIGNS[rest % DESIGNS.len()],
        );
        assert_eq!(
            cell.simulate(),
            cell.simulate_monolithic(),
            "staged report diverged from monolithic on {}",
            cell.label()
        );
        checked += 1;
    }
    assert!(checked > 0, "equivalence sample must be non-empty");

    let mono_cells_per_sec = cells as f64 / mono_wall.max(1e-9);
    let staged_cells_per_sec = cells as f64 / staged_wall.max(1e-9);
    GridRow {
        label: label.to_owned(),
        knob,
        cells,
        mono_cells_per_sec,
        staged_cells_per_sec,
        speedup,
        stages: stage_traffic,
    }
}

fn grid_value(r: &GridRow) -> Value {
    Value::Map(vec![
        ("label".into(), Value::Str(r.label.clone())),
        ("knob".into(), Value::Str(r.knob.into())),
        ("cells".into(), Value::U64(r.cells as u64)),
        (
            "mono_cells_per_sec".into(),
            Value::F64(r.mono_cells_per_sec),
        ),
        (
            "staged_cells_per_sec".into(),
            Value::F64(r.staged_cells_per_sec),
        ),
        ("speedup".into(), Value::F64(r.speedup)),
        (
            "stages".into(),
            Value::Seq(r.stages.iter().map(|s| s.to_value()).collect()),
        ),
    ])
}

/// Runs the staged-engine bench: a `knob_values`-point compression
/// sweep and a `batch_values`-point batch sweep, each across the full
/// four-benchmark x six-design data-parallel matrix.
pub fn stage_bench(knob_values: usize, batch_values: usize) -> StageBenchResult {
    let base = |benchmark, design| Scenario::new(design, benchmark, ParallelStrategy::DataParallel);
    let knob = bench_grid(
        "compression sweep",
        "compression",
        knob_values.max(1),
        |i, benchmark, design| base(benchmark, design).with_compression(1.0 + 1e-5 * i as f64),
    );
    let batch = bench_grid(
        "batch sweep",
        "global_batch",
        batch_values.max(1),
        |i, benchmark, design| base(benchmark, design).with_batch(512 + 8 * i),
    );

    let payload = Value::Map(vec![
        (
            "generated_by".into(),
            Value::Str("mcdla stage-bench".into()),
        ),
        (
            "workload".into(),
            Value::Str("4-benchmark suite x 6 designs, data-parallel".into()),
        ),
        ("knob_grid".into(), grid_value(&knob)),
        ("batch_grid".into(), grid_value(&batch)),
        ("speedup".into(), Value::F64(knob.speedup)),
    ]);

    let table: Vec<Vec<String>> = [&knob, &batch]
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.knob.into(),
                r.cells.to_string(),
                format!("{:.0}", r.mono_cells_per_sec),
                format!("{:.0}", r.staged_cells_per_sec),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    let mut summary = render_table(
        "stage-bench (cells/sec, staged pipeline vs monolithic engine)",
        &[
            "grid",
            "swept knob",
            "cells",
            "mono cells/s",
            "staged cells/s",
            "speedup",
        ],
        &table,
    );
    let stage_table: Vec<Vec<String>> = knob
        .stages
        .iter()
        .zip(&batch.stages)
        .map(|(k, b)| {
            vec![
                k.stage.clone(),
                format!("{}/{}", k.hits, k.misses),
                crate::fmt_pct(k.hit_rate),
                format!("{}/{}", b.hits, b.misses),
                crate::fmt_pct(b.hit_rate),
            ]
        })
        .collect();
    summary.push_str(&render_table(
        "per-stage traffic (hits/misses during the staged pass)",
        &["stage", "knob grid", "hit rate", "batch grid", "hit rate"],
        &stage_table,
    ));

    StageBenchResult {
        json: serde::json::to_string_pretty(&payload),
        summary,
        speedup: knob.speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_bench_reports_both_grids_and_checks_equivalence() {
        // Small enough for a debug-build test; the release-build floor
        // (knob-grid speedup >= 5x) is gated in CI on the real run.
        let result = stage_bench(8, 8);
        assert!(result.speedup > 0.0);
        let payload = serde::json::parse(&result.json).unwrap();
        for grid in ["knob_grid", "batch_grid"] {
            let g = payload.get(grid).expect(grid);
            assert_eq!(g.get("cells").and_then(|v| v.as_u64()), Some(192));
            let stages = g
                .get("stages")
                .and_then(|s| s.as_seq())
                .expect("stage traffic");
            assert_eq!(stages.len(), 7, "one row per stage table");
            for s in stages {
                let stage = s.get("stage").and_then(|v| v.as_str()).unwrap();
                let hits = s.get("hits").and_then(|v| v.as_u64()).unwrap();
                let misses = s.get("misses").and_then(|v| v.as_u64()).unwrap();
                // The per-op collective table only sees traffic when the
                // per-plan sync vector misses; on a warm knob grid it is
                // legitimately idle.
                assert!(
                    hits + misses > 0 || stage == "collective",
                    "stage saw no traffic: {s:?}"
                );
            }
        }
        // The compression knob only touches report assembly, so the
        // knob grid's stage traffic must be hit-dominated. (Aggregate,
        // not per-stage: other tests in this process share the global
        // tables, so a concurrent sweep can add a few misses.)
        let knob_stages = payload
            .get("knob_grid")
            .and_then(|g| g.get("stages"))
            .and_then(|s| s.as_seq())
            .unwrap();
        let (hits, misses) = knob_stages.iter().fold((0, 0), |(h, m), s| {
            (
                h + s.get("hits").and_then(|v| v.as_u64()).unwrap(),
                m + s.get("misses").and_then(|v| v.as_u64()).unwrap(),
            )
        });
        assert!(
            hits > 4 * misses,
            "knob grid should stay hot: {hits} hits vs {misses} misses"
        );
        assert!(result.summary.contains("staged cells/s"));
        assert_eq!(
            payload.get("speedup").and_then(|v| v.as_f64()),
            payload
                .get("knob_grid")
                .and_then(|g| g.get("speedup"))
                .and_then(|v| v.as_f64()),
            "the gated speedup is the knob grid's"
        );
    }
}
