//! A tiny wall-clock benchmark harness for the `benches/` targets.
//!
//! The build environment cannot fetch `criterion`, so the bench targets
//! use this self-contained harness instead (`harness = false`): each
//! bench runs a closure a fixed number of times after a warm-up pass and
//! prints min/median/mean wall-clock per iteration in a stable,
//! grep-friendly format.

use std::time::{Duration, Instant};

/// Runs `f` `iters` times (after one warm-up call) and prints
/// `bench <name> ... min/median/mean` timings.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) {
    let iters = iters.max(1);
    std::hint::black_box(f()); // warm-up: touch lazy caches, page in code
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "bench {name:<44} min {:>10} median {:>10} mean {:>10} ({iters} iters)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.1} us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0usize;
        bench("test/noop", 3, || calls += 1);
        assert_eq!(calls, 4); // warm-up + 3 timed iterations
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0 us");
    }
}
