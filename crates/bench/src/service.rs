//! The service bench behind `mcdla serve-bench`: spins up an in-process
//! `mcdla-serve`, measures cold- and cached-cell latency plus sustained
//! cached-cell throughput over keep-alive connections, and packages the
//! result as `BENCH_service.json`.
//!
//! The ISSUE-2 acceptance bar — ≥ 10k cached-cell requests/sec — is what
//! this bench checks; the `requests_per_sec` field in the JSON is the
//! number to watch across PRs.

use std::time::Instant;

use mcdla_core::{Scenario, SystemDesign};
use mcdla_dnn::Benchmark;
use mcdla_obs::Histogram;
use mcdla_parallel::ParallelStrategy;
use serde::{Serialize, Value};

use crate::render_table;
use mcdla_serve::{client::Connection, ServeConfig, Server};

/// The `mcdla serve-bench` result.
#[derive(Debug)]
pub struct ServiceBenchResult {
    /// Pretty-printed JSON payload (the `BENCH_service.json` content).
    pub json: String,
    /// Human-readable summary table.
    pub summary: String,
    /// Sustained cached-cell throughput, requests/sec.
    pub cached_rps: f64,
}

/// Runs the throughput/latency sweep against an in-process server.
///
/// `client_threads` persistent connections each issue
/// `requests_per_thread` cached-cell `POST /simulate` requests; the
/// bench also times one cold `/simulate` and a cold-vs-warm `/grid`.
///
/// # Panics
///
/// Panics when the server cannot bind a loopback port or a request
/// fails — a bench environment problem, not a measurement.
pub fn service_bench(client_threads: usize, requests_per_thread: usize) -> ServiceBenchResult {
    let client_threads = client_threads.max(1);
    let requests_per_thread = requests_per_thread.max(1);

    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: client_threads + 1, // headroom for the probe connection
        cache_cap: None,
        snapshot: None,
        ..ServeConfig::default()
    })
    .expect("bind loopback server");
    let handle = server.spawn().expect("spawn event loop");
    let addr = handle.addr().to_string();

    let cell = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    let body = serde::json::to_string(&cell);

    // Cold cell: pays one full simulation.
    let mut probe = Connection::open(&addr).expect("open probe connection");
    let start = Instant::now();
    let cold = probe
        .request("POST", "/simulate", Some(&body))
        .expect("cold simulate");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(cold.is_ok(), "cold simulate failed: {}", cold.body);

    // Cached cells: hammer the warmed cell from persistent connections,
    // accumulating latencies into one shared lock-free histogram (no
    // per-request Vec growth, no post-hoc sort).
    let hist = Histogram::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..client_threads {
            let addr = addr.clone();
            let body = body.clone();
            let hist = &hist;
            scope.spawn(move || {
                let mut conn = Connection::open(&addr).expect("open bench connection");
                for _ in 0..requests_per_thread {
                    let t = Instant::now();
                    let resp = conn
                        .request("POST", "/simulate", Some(&body))
                        .expect("cached simulate");
                    hist.observe_duration(t.elapsed());
                    debug_assert!(resp.is_ok());
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let total_requests = client_threads * requests_per_thread;
    let cached_rps = total_requests as f64 / wall.max(1e-9);

    let snap = hist.snapshot();
    let pick = |q: f64| snap.quantile(q) * 1e6;
    let max_us = snap.max_estimate() * 1e6;

    // Pipelined cached cells: the same warmed cell, PIPELINE_DEPTH
    // requests per write. The serial loop above pays one client
    // round trip per request; pipelining amortizes that away and
    // measures how fast the event loop itself parses and answers
    // (the ISSUE-8 acceptance bar — ≥ 100k req/s — reads this number).
    const PIPELINE_DEPTH: usize = 64;
    let batches_per_thread = requests_per_thread.div_ceil(PIPELINE_DEPTH);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..client_threads {
            let addr = addr.clone();
            let body = body.clone();
            scope.spawn(move || {
                let mut conn = Connection::open(&addr).expect("open pipeline connection");
                let batch: Vec<(&str, &str, Option<&str>)> = (0..PIPELINE_DEPTH)
                    .map(|_| ("POST", "/simulate", Some(body.as_str())))
                    .collect();
                for _ in 0..batches_per_thread {
                    let responses = conn.request_pipelined(&batch).expect("pipelined simulate");
                    debug_assert!(responses.iter().all(|r| r.is_ok()));
                }
            });
        }
    });
    let pipelined_wall = start.elapsed().as_secs_f64();
    let pipelined_total = client_threads * batches_per_thread * PIPELINE_DEPTH;
    let pipelined_rps = pipelined_total as f64 / pipelined_wall.max(1e-9);

    // Grid: a 12-cell batch, cold then fully cached.
    let grid_body = r#"{"benchmarks": ["GoogLeNet"]}"#;
    let start = Instant::now();
    let grid_cold = probe
        .request("POST", "/grid", Some(grid_body))
        .expect("cold grid");
    let grid_cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(grid_cold.is_ok(), "cold grid failed: {}", grid_cold.body);
    let start = Instant::now();
    let grid_warm = probe
        .request("POST", "/grid", Some(grid_body))
        .expect("warm grid");
    let grid_warm_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(grid_warm.is_ok());

    // Streamed grid: the full paper matrix over `?stream=1` chunked
    // NDJSON, measuring sustained cells/sec through the wire (cold the
    // first pass for most cells, then a fully-cached pass).
    let stream_body = "{}";
    let stream_cells_per_sec = |probe: &mut Connection| {
        let start = Instant::now();
        let stream = probe
            .request_stream("POST", "/grid?stream=1", Some(stream_body))
            .expect("grid stream");
        assert_eq!(stream.status, 200, "grid stream rejected");
        let lines = stream.collect_lines().expect("clean stream");
        let wall = start.elapsed().as_secs_f64();
        (lines.len(), wall, lines.len() as f64 / wall.max(1e-9))
    };
    let (stream_cells, stream_cold_wall, stream_cold_cps) = stream_cells_per_sec(&mut probe);
    let (_, stream_warm_wall, stream_warm_cps) = stream_cells_per_sec(&mut probe);

    let stats = handle.store().stats();
    drop(probe);
    handle.shutdown();

    // Capacity pressure: the committed single-node baseline the
    // cluster-bench scaling gate compares against. Same workload as
    // `mcdla cluster-bench`: a working set of PRESSURE_WORKING_SET
    // distinct cells against a store bounded to PRESSURE_CACHE_CAP, so
    // ~3/4 of uniform-random requests miss and re-simulate — the cost a
    // fleet's aggregate cache capacity removes.
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: client_threads + 1,
        cache_cap: Some(crate::cluster_bench::PRESSURE_CACHE_CAP),
        snapshot: None,
        ..ServeConfig::default()
    })
    .expect("bind pressure server");
    let handle = server.spawn().expect("spawn pressure event loop");
    let addr = handle.addr().to_string();
    let pressure_cells = crate::cluster_bench::pressure_cells();
    let pressure_bodies: Vec<String> = pressure_cells.iter().map(serde::json::to_string).collect();
    // One warm pass fills the resident slots before measuring.
    let warm_body = serde::json::to_string(&Value::Map(vec![(
        "cells".into(),
        Value::Seq(pressure_cells.iter().map(|s| s.to_value()).collect()),
    )]));
    let mut probe = Connection::open(&addr).expect("open pressure probe");
    let warm = probe
        .request("POST", "/grid", Some(&warm_body))
        .expect("pressure warm grid");
    assert!(warm.is_ok(), "pressure warm failed: {}", warm.body);
    let pressure_hits_before = handle.store().stats();
    let pressure = crate::cluster_bench::hammer(
        &addr,
        &pressure_bodies,
        client_threads,
        crate::cluster_bench::pressure_requests(requests_per_thread),
    );
    let pressure_stats = handle.store().stats();
    drop(probe);
    handle.shutdown();
    let pressure_hits = pressure_stats.hits - pressure_hits_before.hits;
    let pressure_misses = pressure_stats.misses - pressure_hits_before.misses;
    let pressure_hit_rate = if pressure_hits + pressure_misses > 0 {
        pressure_hits as f64 / (pressure_hits + pressure_misses) as f64
    } else {
        0.0
    };

    let payload = Value::Map(vec![
        (
            "generated_by".into(),
            Value::Str("mcdla serve-bench".into()),
        ),
        ("client_threads".into(), Value::U64(client_threads as u64)),
        (
            "requests_per_thread".into(),
            Value::U64(requests_per_thread as u64),
        ),
        (
            "cached".into(),
            Value::Map(vec![
                ("total_requests".into(), Value::U64(total_requests as u64)),
                ("wall_ms".into(), Value::F64(wall * 1e3)),
                ("requests_per_sec".into(), Value::F64(cached_rps)),
                ("latency_p50_us".into(), Value::F64(pick(0.5))),
                ("latency_p90_us".into(), Value::F64(pick(0.9))),
                ("latency_p99_us".into(), Value::F64(pick(0.99))),
                ("latency_max_us".into(), Value::F64(max_us)),
            ]),
        ),
        (
            "cached_pipelined".into(),
            Value::Map(vec![
                ("depth".into(), Value::U64(PIPELINE_DEPTH as u64)),
                ("total_requests".into(), Value::U64(pipelined_total as u64)),
                ("wall_ms".into(), Value::F64(pipelined_wall * 1e3)),
                ("requests_per_sec".into(), Value::F64(pipelined_rps)),
            ]),
        ),
        ("cold_simulate_ms".into(), Value::F64(cold_ms)),
        (
            "grid".into(),
            Value::Map(vec![
                ("cells".into(), Value::U64(12)),
                ("cold_ms".into(), Value::F64(grid_cold_ms)),
                ("warm_ms".into(), Value::F64(grid_warm_ms)),
            ]),
        ),
        (
            "grid_stream".into(),
            Value::Map(vec![
                ("cells".into(), Value::U64(stream_cells as u64)),
                ("cold_wall_ms".into(), Value::F64(stream_cold_wall * 1e3)),
                ("cold_cells_per_sec".into(), Value::F64(stream_cold_cps)),
                ("warm_wall_ms".into(), Value::F64(stream_warm_wall * 1e3)),
                ("warm_cells_per_sec".into(), Value::F64(stream_warm_cps)),
            ]),
        ),
        (
            "capacity_pressure".into(),
            Value::Map(vec![
                (
                    "working_set".into(),
                    Value::U64(crate::cluster_bench::PRESSURE_WORKING_SET as u64),
                ),
                (
                    "cache_cap".into(),
                    Value::U64(crate::cluster_bench::PRESSURE_CACHE_CAP as u64),
                ),
                (
                    "requests_per_sec".into(),
                    Value::F64(pressure.requests_per_sec),
                ),
                ("latency_p50_us".into(), Value::F64(pressure.latency_p50_us)),
                ("latency_p99_us".into(), Value::F64(pressure.latency_p99_us)),
                ("hit_rate".into(), Value::F64(pressure_hit_rate)),
            ]),
        ),
        ("store".into(), stats.to_value()),
    ]);

    let summary = render_table(
        "serve-bench (loopback HTTP, keep-alive connections)",
        &["metric", "value"],
        &[
            vec![
                "cached throughput".into(),
                format!(
                    "{cached_rps:.0} req/s ({client_threads} conns x {requests_per_thread} reqs)"
                ),
            ],
            vec![
                format!("pipelined throughput (depth {PIPELINE_DEPTH})"),
                format!("{pipelined_rps:.0} req/s"),
            ],
            vec!["cached p50".into(), format!("{:.1} us", pick(0.5))],
            vec!["cached p99".into(), format!("{:.1} us", pick(0.99))],
            vec!["cold /simulate".into(), format!("{cold_ms:.2} ms")],
            vec![
                "cold /grid (12 cells)".into(),
                format!("{grid_cold_ms:.2} ms"),
            ],
            vec![
                "warm /grid (12 cells)".into(),
                format!("{grid_warm_ms:.2} ms"),
            ],
            vec![
                format!("streamed /grid?stream=1 ({stream_cells} cells)"),
                format!("cold {stream_cold_cps:.0} cells/s, warm {stream_warm_cps:.0} cells/s"),
            ],
            vec![
                "store hits/misses".into(),
                format!("{}/{}", stats.hits, stats.misses),
            ],
            vec![
                format!(
                    "capacity pressure ({} cells vs cap {})",
                    crate::cluster_bench::PRESSURE_WORKING_SET,
                    crate::cluster_bench::PRESSURE_CACHE_CAP
                ),
                format!(
                    "{:.0} req/s (hit rate {:.0}%, p50 {:.1} us, p99 {:.1} us)",
                    pressure.requests_per_sec,
                    pressure_hit_rate * 100.0,
                    pressure.latency_p50_us,
                    pressure.latency_p99_us
                ),
            ],
        ],
    );

    ServiceBenchResult {
        json: serde::json::to_string_pretty(&payload),
        summary,
        cached_rps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_bench_measures_and_clears_the_floor() {
        // A deliberately small run: enough requests to measure, small
        // enough for a debug-build test. The release-build bar (>= 10k
        // cached req/s) is checked by `mcdla serve-bench` itself; debug
        // builds get a generous floor so CI boxes never flake.
        let result = service_bench(2, 500);
        assert!(
            result.cached_rps >= 1_000.0,
            "cached throughput {:.0} req/s is implausibly slow even for a debug build",
            result.cached_rps
        );
        assert!(result.json.contains("requests_per_sec"));
        assert!(result.summary.contains("cached throughput"));
        // The pipelined phase reports its batch depth and throughput.
        assert!(result.json.contains("cached_pipelined"));
        assert!(result.summary.contains("pipelined throughput"));
        // The streamed-grid mode reports cells/sec for both passes.
        assert!(result.json.contains("grid_stream"));
        assert!(result.json.contains("cold_cells_per_sec"));
        assert!(result.json.contains("warm_cells_per_sec"));
        // Latency percentiles and the capacity-pressure single-node
        // baseline (what cluster-bench's scaling gate compares against).
        assert!(result.json.contains("latency_p50_us"));
        assert!(result.json.contains("latency_p99_us"));
        assert!(result.json.contains("capacity_pressure"));
        assert!(result.summary.contains("capacity pressure"));
    }
}
