//! The routed-fabric bench behind `mcdla fabric-bench`: measures the
//! flow-level fabric two ways and packages the result as
//! `BENCH_fabric.json`.
//!
//! * **solver throughput** — all-reduces priced on a standalone
//!   three-plane ring [`RoutedFabric`] at 8/64/1024 devices, reported as
//!   flows drained per second (each collective opens one flow per ring
//!   hop per plane, so the flow count grows with the device count);
//! * **end-to-end overhead** — the same DC-DLA/VGG-E iteration priced
//!   analytically vs through the routed fabric (both monolithic, no
//!   stage cache), reported as cells/sec on each side plus the ratio —
//!   what the `topology` knob costs a sweep.
//!
//! The bench also replays the single-backplane agreement matrix (every
//! design x {2, 4, 8} devices): inside one island the routed ring has
//! dedicated links, so the flow price must collapse to the analytical
//! formula. The worst relative iteration-time error is the number CI
//! gates (<= 1%) — the bench doubles as a fabric-vs-analytical smoke.

use std::time::Instant;

use mcdla_core::{Scenario, SystemDesign};
use mcdla_dnn::Benchmark;
use mcdla_interconnect::{
    CollectiveKind, CollectiveModel, FabricSpec, FabricTopology, RingShape, RoutedFabric,
};
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::Bytes;
use serde::Value;

use crate::render_table;

/// The `mcdla fabric-bench` result.
#[derive(Debug)]
pub struct FabricBenchResult {
    /// Pretty-printed JSON payload (the `BENCH_fabric.json` content).
    pub json: String,
    /// Human-readable summary table.
    pub summary: String,
    /// Worst fabric-vs-analytical relative iteration-time error across
    /// the single-backplane agreement matrix — the number CI gates
    /// (<= 0.01).
    pub max_rel_err: f64,
}

/// The committed `BENCH_fabric.json` scales: `(devices, global batch)`.
/// The batch grows with the device count so the data-parallel split
/// stays valid (a worker needs at least one sample).
pub const PAPER_SCALES: [(usize, u64); 3] = [(8, 512), (64, 512), (1024, 4096)];

/// One device-count scale's measurements.
struct ScaleRow {
    devices: usize,
    batch: u64,
    /// Flows one collective opens on the standalone ring fabric.
    flows_per_collective: usize,
    /// Solver throughput: flows drained per second across the timed
    /// collective calls.
    flows_per_sec: f64,
    analytic_cells_per_sec: f64,
    fabric_cells_per_sec: f64,
    /// Fabric-over-analytic slowdown per cell (>= 1 means the routed
    /// fabric costs more, as expected).
    overhead: f64,
}

/// Times one `(devices, batch)` scale. `reps` is the timed repetition
/// count at this scale (already scaled down by the caller for large
/// fabrics, whose single calls are far heavier).
fn bench_scale(devices: usize, batch: u64, reps: usize) -> ScaleRow {
    // Solver throughput on a standalone three-plane device ring with the
    // paper's link budget: 50 GB/s collective planes over 8-device
    // backplane islands bridged by a PCIe-share escape channel.
    let spec = FabricSpec {
        devices,
        planes: vec![RingShape::device_ring(devices); 3],
        plane_gbs: 50.0,
        backplane: 8,
        escape_gbs: 8.0,
    };
    let fabric = RoutedFabric::build(FabricTopology::Ring, &spec);
    let model = CollectiveModel::with_link_bandwidth(50.0);
    let size = Bytes::new(64 << 20);
    std::hint::black_box(fabric.collective_time(&model, CollectiveKind::AllReduce, size));
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(fabric.collective_time(&model, CollectiveKind::AllReduce, size));
    }
    let flow_wall = start.elapsed().as_secs_f64();
    let flows_per_sec = (reps * fabric.flows_per_collective()) as f64 / flow_wall.max(1e-9);

    // End-to-end overhead: the same iteration priced analytically vs
    // through the routed fabric. Monolithic on both sides (no stage
    // cache — every rep re-prices every collective), interleaved so
    // ambient frequency drift lands on both sides equally.
    let analytic = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::VggE,
        ParallelStrategy::DataParallel,
    )
    .with_devices(devices)
    .with_batch(batch);
    let routed = analytic.with_topology(FabricTopology::Ring);
    std::hint::black_box(analytic.simulate_monolithic());
    std::hint::black_box(routed.simulate_monolithic());
    let (mut a_wall, mut f_wall) = (0.0f64, 0.0f64);
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(analytic.simulate_monolithic());
        a_wall += start.elapsed().as_secs_f64();
        let start = Instant::now();
        std::hint::black_box(routed.simulate_monolithic());
        f_wall += start.elapsed().as_secs_f64();
    }
    ScaleRow {
        devices,
        batch,
        flows_per_collective: fabric.flows_per_collective(),
        flows_per_sec,
        analytic_cells_per_sec: reps as f64 / a_wall.max(1e-9),
        fabric_cells_per_sec: reps as f64 / f_wall.max(1e-9),
        overhead: f_wall.max(1e-9) / a_wall.max(1e-9),
    }
}

/// Replays the single-backplane agreement matrix (the property the core
/// test suite pins): every design x {2, 4, 8} devices, AlexNet
/// data-parallel, routed ring vs analytical. Returns `(cells, worst
/// relative iteration-time error)`.
fn agreement() -> (usize, f64) {
    let mut cells = 0usize;
    let mut max_rel = 0.0f64;
    for design in SystemDesign::ALL {
        for devices in [2usize, 4, 8] {
            let cell = Scenario::new(design, Benchmark::AlexNet, ParallelStrategy::DataParallel)
                .with_devices(devices);
            let a = cell.simulate_monolithic().iteration_time.as_secs_f64();
            let r = cell
                .with_topology(FabricTopology::Ring)
                .simulate_monolithic()
                .iteration_time
                .as_secs_f64();
            max_rel = max_rel.max((r - a).abs() / a);
            cells += 1;
        }
    }
    (cells, max_rel)
}

fn scale_value(r: &ScaleRow) -> Value {
    Value::Map(vec![
        ("devices".into(), Value::U64(r.devices as u64)),
        ("batch".into(), Value::U64(r.batch)),
        (
            "flows_per_collective".into(),
            Value::U64(r.flows_per_collective as u64),
        ),
        ("flows_per_sec".into(), Value::F64(r.flows_per_sec)),
        (
            "analytic_cells_per_sec".into(),
            Value::F64(r.analytic_cells_per_sec),
        ),
        (
            "fabric_cells_per_sec".into(),
            Value::F64(r.fabric_cells_per_sec),
        ),
        ("overhead_x".into(), Value::F64(r.overhead)),
    ])
}

/// Runs the routed-fabric bench: solver throughput and per-cell overhead
/// at each `(devices, batch)` scale, plus the agreement matrix. `reps`
/// is the timed repetition count at 8 devices; larger fabrics run
/// proportionally fewer reps (one call does proportionally more work).
pub fn fabric_bench(reps: usize, scales: &[(usize, u64)]) -> FabricBenchResult {
    let reps = reps.max(1);
    let rows: Vec<ScaleRow> = scales
        .iter()
        .map(|&(devices, batch)| bench_scale(devices, batch, (reps * 8 / devices.max(8)).max(1)))
        .collect();
    let (cells, max_rel_err) = agreement();

    let payload = Value::Map(vec![
        (
            "generated_by".into(),
            Value::Str("mcdla fabric-bench".into()),
        ),
        (
            "topology".into(),
            Value::Str(FabricTopology::Ring.wire_name().into()),
        ),
        (
            "workload".into(),
            Value::Str("DC-DLA / VGG-E data-parallel cells; 3-plane ring solver".into()),
        ),
        (
            "scales".into(),
            Value::Seq(rows.iter().map(scale_value).collect()),
        ),
        (
            "agreement".into(),
            Value::Map(vec![
                (
                    "workload".into(),
                    Value::Str("6 designs x {2,4,8} devices, AlexNet data-parallel".into()),
                ),
                ("cells".into(), Value::U64(cells as u64)),
                ("max_rel_err".into(), Value::F64(max_rel_err)),
                ("gate".into(), Value::F64(0.01)),
            ]),
        ),
    ]);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.devices.to_string(),
                r.batch.to_string(),
                r.flows_per_collective.to_string(),
                format!("{:.0}", r.flows_per_sec),
                format!("{:.1}", r.analytic_cells_per_sec),
                format!("{:.3}", r.fabric_cells_per_sec),
                crate::fmt_x(r.overhead),
            ]
        })
        .collect();
    let mut summary = render_table(
        "fabric-bench (routed ring fabric vs analytical pricing)",
        &[
            "devices",
            "batch",
            "flows/coll",
            "flows/s",
            "analytic cells/s",
            "fabric cells/s",
            "overhead",
        ],
        &table,
    );
    summary.push_str(&format!(
        "agreement: max rel err {:.2e} over {} single-backplane cells (gate 1%)\n",
        max_rel_err, cells
    ));

    FabricBenchResult {
        json: serde::json::to_string_pretty(&payload),
        summary,
        max_rel_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_bench_reports_scales_and_gates_agreement() {
        // Small scales for a debug-build test; the committed
        // `BENCH_fabric.json` runs `PAPER_SCALES` in release.
        let result = fabric_bench(1, &[(8, 512), (64, 512)]);
        assert!(
            result.max_rel_err <= 0.01,
            "single-backplane ring must agree with the analytical model: {}",
            result.max_rel_err
        );
        let payload = serde::json::parse(&result.json).unwrap();
        let scales = payload
            .get("scales")
            .and_then(|s| s.as_seq())
            .expect("scales");
        assert_eq!(scales.len(), 2);
        for (s, (devices, _)) in scales.iter().zip([(8, 512u64), (64, 512)]) {
            assert_eq!(s.get("devices").and_then(|v| v.as_u64()), Some(devices));
            let flows = s
                .get("flows_per_sec")
                .and_then(|v| v.as_f64())
                .expect("flows_per_sec");
            assert!(flows > 0.0, "solver throughput must be positive: {flows}");
            let overhead = s
                .get("overhead_x")
                .and_then(|v| v.as_f64())
                .expect("overhead_x");
            assert!(overhead > 0.0, "overhead must be positive: {overhead}");
        }
        let agreement = payload.get("agreement").expect("agreement block");
        assert_eq!(agreement.get("cells").and_then(|v| v.as_u64()), Some(18));
        assert_eq!(
            agreement.get("max_rel_err").and_then(|v| v.as_f64()),
            Some(result.max_rel_err)
        );
        assert!(result.summary.contains("fabric-bench"));
        assert!(result.summary.contains("agreement"));
    }
}
