//! `mcdla bench-report`: collates every committed `BENCH_*.json` into
//! one trajectory table — the headline metric of each benchmark family,
//! side by side, so a reviewer can read the repo's performance story
//! without opening six JSON files.
//!
//! The collator is deliberately schema-light: it walks each file with a
//! path lookup and skips families whose file is absent or whose field
//! moved, reporting `—` instead of failing, so the report keeps working
//! as benchmark schemas grow.

use std::path::Path;

use serde::Value;

use crate::render_table;

/// One headline row pulled out of a benchmark file.
#[derive(Debug)]
pub struct Headline {
    /// Which `BENCH_*.json` the row came from.
    pub file: &'static str,
    /// Human label for the metric.
    pub metric: &'static str,
    /// The extracted value, if the file and field were present.
    pub value: Option<f64>,
    /// How to print it.
    pub unit: Unit,
    /// The roadmap floor the value is gated on, when one exists.
    pub floor: Option<f64>,
}

/// Print formats for headline values.
#[derive(Debug, Clone, Copy)]
pub enum Unit {
    /// Operations (or requests) per second, scaled to k/M.
    PerSec,
    /// Milliseconds.
    Millis,
    /// A 0..1 fraction printed as a percentage.
    Ratio,
    /// A speedup multiple (`5.72x`).
    SpeedupX,
    /// A bare count.
    Count,
}

fn fmt_value(value: f64, unit: Unit) -> String {
    match unit {
        Unit::PerSec => {
            if value >= 1e6 {
                format!("{:.2}M/s", value / 1e6)
            } else if value >= 1e3 {
                format!("{:.1}k/s", value / 1e3)
            } else {
                format!("{value:.1}/s")
            }
        }
        Unit::Millis => format!("{value:.2} ms"),
        Unit::Ratio => format!("{:.1}%", value * 100.0),
        Unit::SpeedupX => format!("{value:.2}x"),
        Unit::Count => format!("{value:.0}"),
    }
}

/// Navigates a JSON map path.
fn get<'a>(value: &'a Value, path: &[&str]) -> Option<&'a Value> {
    let mut current = value;
    for key in path {
        let Value::Map(entries) = current else {
            return None;
        };
        current = &entries.iter().find(|(k, _)| k == key)?.1;
    }
    Some(current)
}

fn num(value: &Value) -> Option<f64> {
    match value {
        Value::F64(n) => Some(*n),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

fn lookup(root: Option<&Value>, path: &[&str]) -> Option<f64> {
    root.and_then(|v| get(v, path)).and_then(num)
}

/// The headline metrics of every benchmark family, extracted from the
/// parsed `BENCH_*.json` bodies (`None` for a file that is absent).
fn headlines(files: &[(&'static str, Option<Value>)]) -> Vec<Headline> {
    let file = |name: &str| -> Option<&Value> {
        files
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.as_ref())
    };
    let service = file("BENCH_service.json");
    let store = file("BENCH_store.json");
    let stages = file("BENCH_stages.json");
    let scenarios = file("BENCH_scenarios.json");
    let cluster = file("BENCH_cluster.json");
    let fabric = file("BENCH_fabric.json");
    let obs = file("BENCH_obs.json");
    vec![
        Headline {
            file: "BENCH_service.json",
            metric: "cached req/s (serial)",
            value: lookup(service, &["cached", "requests_per_sec"]),
            unit: Unit::PerSec,
            floor: None,
        },
        Headline {
            file: "BENCH_service.json",
            metric: "cached req/s (pipelined)",
            value: lookup(service, &["cached_pipelined", "requests_per_sec"]),
            unit: Unit::PerSec,
            floor: None,
        },
        Headline {
            file: "BENCH_service.json",
            metric: "cold simulate",
            value: lookup(service, &["cold_simulate_ms"]),
            unit: Unit::Millis,
            floor: None,
        },
        Headline {
            file: "BENCH_service.json",
            metric: "pressure hit rate",
            value: lookup(service, &["capacity_pressure", "hit_rate"]),
            unit: Unit::Ratio,
            floor: None,
        },
        Headline {
            file: "BENCH_store.json",
            metric: "store min get/s under pressure",
            value: lookup(store, &["min_get_per_sec"]),
            unit: Unit::PerSec,
            floor: Some(1e6),
        },
        Headline {
            file: "BENCH_stages.json",
            metric: "stage-memo speedup (knob grid)",
            value: lookup(stages, &["knob_grid", "speedup"]),
            unit: Unit::SpeedupX,
            floor: Some(5.0),
        },
        Headline {
            file: "BENCH_scenarios.json",
            metric: "mega-grid cells",
            value: lookup(scenarios, &["cells_total"]),
            unit: Unit::Count,
            floor: None,
        },
        Headline {
            file: "BENCH_cluster.json",
            metric: "fleet scaling 4w/1w (pressure)",
            value: lookup(cluster, &["scaling", "pressure_4w_over_1w"]),
            unit: Unit::SpeedupX,
            floor: Some(2.0),
        },
        Headline {
            file: "BENCH_fabric.json",
            metric: "fabric vs analytic max rel err",
            value: lookup(fabric, &["agreement", "max_rel_err"]),
            unit: Unit::Ratio,
            floor: None,
        },
        Headline {
            file: "BENCH_obs.json",
            metric: "sampler overhead (pipelined)",
            value: lookup(obs, &["overhead_ratio"]),
            unit: Unit::Ratio,
            floor: None,
        },
    ]
}

/// Reads every known `BENCH_*.json` under `dir` and extracts headlines.
pub fn collect(dir: &Path) -> Vec<Headline> {
    const FILES: &[&str] = &[
        "BENCH_service.json",
        "BENCH_store.json",
        "BENCH_stages.json",
        "BENCH_scenarios.json",
        "BENCH_cluster.json",
        "BENCH_fabric.json",
        "BENCH_obs.json",
    ];
    let parsed: Vec<(&'static str, Option<Value>)> = FILES
        .iter()
        .map(|name| {
            let body = std::fs::read_to_string(dir.join(name)).ok();
            (*name, body.and_then(|b| serde::json::parse(&b).ok()))
        })
        .collect();
    headlines(&parsed)
}

/// The human-readable trajectory table.
pub fn report_text(rows: &[Headline]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|h| {
            vec![
                h.file.to_string(),
                h.metric.to_string(),
                h.value.map_or_else(|| "—".into(), |v| fmt_value(v, h.unit)),
                match (h.value, h.floor) {
                    (Some(v), Some(floor)) => {
                        if v >= floor {
                            format!("≥ {} ok", fmt_value(floor, h.unit))
                        } else {
                            format!("BELOW {}", fmt_value(floor, h.unit))
                        }
                    }
                    (None, _) => "missing".into(),
                    (Some(_), None) => String::new(),
                },
            ]
        })
        .collect();
    render_table(
        "Benchmark trajectory (committed BENCH_*.json)",
        &["file", "metric", "value", "gate"],
        &table,
    )
}

/// The same table as a machine-readable JSON document.
pub fn report_json(rows: &[Headline]) -> Value {
    Value::Map(vec![(
        "headlines".into(),
        Value::Seq(
            rows.iter()
                .map(|h| {
                    let mut entry = vec![
                        ("file".to_string(), Value::Str(h.file.into())),
                        ("metric".to_string(), Value::Str(h.metric.into())),
                        ("value".to_string(), h.value.map_or(Value::Null, Value::F64)),
                    ];
                    if let Some(floor) = h.floor {
                        entry.push(("floor".into(), Value::F64(floor)));
                        entry.push((
                            "meets_floor".into(),
                            Value::Bool(h.value.is_some_and(|v| v >= floor)),
                        ));
                    }
                    Value::Map(entry)
                })
                .collect(),
        ),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headlines_extract_known_fields_and_tolerate_missing_files() {
        let service = serde::json::parse(
            r#"{"cached": {"requests_per_sec": 77000.0},
                "cached_pipelined": {"requests_per_sec": 174000.0},
                "cold_simulate_ms": 55.0,
                "capacity_pressure": {"hit_rate": 0.52}}"#,
        )
        .unwrap();
        let rows = headlines(&[
            ("BENCH_service.json", Some(service)),
            ("BENCH_store.json", None),
        ]);
        let cached = rows
            .iter()
            .find(|h| h.metric == "cached req/s (serial)")
            .unwrap();
        assert_eq!(cached.value, Some(77000.0));
        let store = rows.iter().find(|h| h.file == "BENCH_store.json").unwrap();
        assert_eq!(store.value, None);
    }

    #[test]
    fn text_report_flags_floors_and_missing_values() {
        let rows = vec![
            Headline {
                file: "BENCH_stages.json",
                metric: "stage-memo speedup (knob grid)",
                value: Some(5.7),
                unit: Unit::SpeedupX,
                floor: Some(5.0),
            },
            Headline {
                file: "BENCH_stages.json",
                metric: "below floor",
                value: Some(3.0),
                unit: Unit::SpeedupX,
                floor: Some(5.0),
            },
            Headline {
                file: "BENCH_obs.json",
                metric: "sampler overhead (pipelined)",
                value: None,
                unit: Unit::Ratio,
                floor: None,
            },
        ];
        let text = report_text(&rows);
        assert!(text.contains("5.70x"), "{text}");
        assert!(text.contains("≥ 5.00x ok"), "{text}");
        assert!(text.contains("BELOW 5.00x"), "{text}");
        assert!(text.contains("missing"), "{text}");
    }

    #[test]
    fn json_report_carries_floor_verdicts() {
        let rows = vec![Headline {
            file: "BENCH_store.json",
            metric: "store min get/s under pressure",
            value: Some(4.2e6),
            unit: Unit::PerSec,
            floor: Some(1e6),
        }];
        let text = serde::json::to_string(&report_json(&rows));
        assert!(text.contains("\"meets_floor\":true"), "{text}");
        assert!(text.contains("\"floor\":1000000.0"), "{text}");
    }

    #[test]
    fn collator_reads_the_committed_benchmarks() {
        // The repo commits these files, so running from the workspace
        // root should populate most rows.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let rows = collect(&dir);
        assert_eq!(rows.len(), 10);
        let populated = rows.iter().filter(|h| h.value.is_some()).count();
        assert!(populated >= 6, "only {populated} headline rows populated");
    }
}
