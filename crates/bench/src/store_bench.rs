//! The store bench behind `mcdla store-bench`: hammers the
//! [`ResultStore`] cache core directly — no sockets, no simulator — and
//! packages the result as `BENCH_store.json`.
//!
//! The store is the hot layer under every serving path (`Runner` memo
//! hits, `/simulate` cached cells, streamed grids), so this bench tracks
//! the numbers that layer lives or dies by: cached-get throughput,
//! insert throughput, and eviction churn under several **capacity
//! pressures** (how much smaller the bound is than the key space),
//! against the unbounded store as the baseline. The CI gate reads
//! `min(.pressures[].get_per_sec)` — cached gets must stay in the
//! hundreds of thousands per second even while eviction is churning.

use std::time::Instant;

use mcdla_core::{IterationReport, ResultStore, Scenario, SystemDesign};
use mcdla_dnn::Benchmark;
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::{Bytes, SimDuration};
use serde::Value;

use crate::render_table;

/// The `mcdla store-bench` result.
#[derive(Debug)]
pub struct StoreBenchResult {
    /// Pretty-printed JSON payload (the `BENCH_store.json` content).
    pub json: String,
    /// Human-readable summary table.
    pub summary: String,
    /// The slowest cached-get throughput across all pressures — the
    /// number the CI floor gates.
    pub min_get_per_sec: f64,
}

/// One capacity pressure's measurements.
struct PressureRow {
    label: String,
    capacity: Option<usize>,
    insert_per_sec: f64,
    get_per_sec: f64,
    mix_per_sec: f64,
    evictions: u64,
    entries: usize,
    hit_rate: f64,
}

/// A distinguishable dummy report; store mechanics do not care what the
/// simulator would have produced, and constructing one keeps the bench
/// loopback-free *and* simulator-free.
fn template_report(tag: u64) -> IterationReport {
    IterationReport {
        design: SystemDesign::DcDla,
        benchmark: format!("store-bench-{tag}"),
        strategy: ParallelStrategy::DataParallel,
        devices: 8,
        global_batch: tag.max(1),
        iteration_time: SimDuration::from_us(tag.max(1)),
        compute_busy: SimDuration::ZERO,
        sync_busy: SimDuration::ZERO,
        virt_busy: SimDuration::ZERO,
        memory_stall: SimDuration::ZERO,
        virt_bytes: Bytes::ZERO,
        sync_bytes: Bytes::ZERO,
        cpu_socket_avg_gbs: 0.0,
        cpu_socket_max_gbs: 0.0,
    }
}

/// `keys` distinct scenarios, keyed by batch size.
fn key_space(keys: usize) -> Vec<Scenario> {
    (0..keys)
        .map(|i| {
            Scenario::new(
                SystemDesign::DcDla,
                Benchmark::AlexNet,
                ParallelStrategy::DataParallel,
            )
            .with_batch(i as u64 + 512)
        })
        .collect()
}

/// Measures one store at one capacity pressure.
fn bench_pressure(
    label: &str,
    capacity: Option<usize>,
    keys: &[Scenario],
    threads: usize,
    insert_ops: usize,
    get_ops: usize,
) -> PressureRow {
    let store = match capacity {
        Some(cap) => ResultStore::bounded(cap),
        None => ResultStore::unbounded(),
    };

    // Insert churn: every thread walks the whole key space at a
    // different stride, so inserts collide across shards and (for
    // bounded stores) evict continuously.
    let per_thread = insert_ops.div_ceil(threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = &store;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let k = (i * (2 * t + 1) + t) % keys.len();
                    store.insert(keys[k], template_report(k as u64));
                }
            });
        }
    });
    let insert_per_sec = (per_thread * threads) as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // Pin a hot set the size of the residency bound: re-inserting it
    // sequentially makes it the `min(cap, keys)` most-recently-used
    // entries, so the get phase below is 100% cached.
    let hot = capacity.map_or(keys.len(), |cap| cap.min(keys.len()));
    for (i, key) in keys[..hot].iter().enumerate() {
        store.insert(*key, template_report(i as u64));
    }
    let hits_before = store.hits();
    let per_thread = get_ops.div_ceil(threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = &store;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let k = (i * (2 * t + 1) + t) % hot;
                    assert!(
                        store.get(&keys[k]).is_some(),
                        "hot key {k} evicted from a {capacity:?}-cap store"
                    );
                }
            });
        }
    });
    let get_per_sec = (per_thread * threads) as f64 / start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        store.hits() - hits_before,
        (per_thread * threads) as u64,
        "the get phase must be 100% cached"
    );

    // Mixed get_or_compute over the whole key space: resident keys hit,
    // evicted keys recompute and re-evict — the realistic under-pressure
    // serving mix.
    let per_thread = get_ops.div_ceil(threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = &store;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let k = (i * (2 * t + 1) + t) % keys.len();
                    let _ = store.get_or_compute(keys[k], || template_report(k as u64));
                }
            });
        }
    });
    let mix_per_sec = (per_thread * threads) as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let stats = store.stats();
    if let Some(cap) = capacity {
        assert!(
            stats.entries as usize <= cap,
            "store over its bound after the bench: {stats:?}"
        );
    }
    PressureRow {
        label: label.to_owned(),
        capacity,
        insert_per_sec,
        get_per_sec,
        mix_per_sec,
        evictions: stats.evictions,
        entries: stats.entries as usize,
        hit_rate: stats.hit_rate,
    }
}

/// Runs the store bench: `keys` distinct cells through an unbounded
/// store and three bounded ones (capacity = 100%, 25%, and ~6% of the
/// key space), `threads` concurrent workers, `insert_ops` insert-churn
/// operations and `get_ops` operations per read phase.
pub fn store_bench(
    keys: usize,
    threads: usize,
    insert_ops: usize,
    get_ops: usize,
) -> StoreBenchResult {
    let keys = key_space(keys.max(64));
    let threads = threads.max(1);
    let pressures = [
        ("unbounded".to_owned(), None),
        ("cap 100%".to_owned(), Some(keys.len())),
        ("cap 25%".to_owned(), Some((keys.len() / 4).max(1))),
        ("cap 6%".to_owned(), Some((keys.len() / 16).max(1))),
    ];
    let rows: Vec<PressureRow> = pressures
        .iter()
        .map(|(label, cap)| bench_pressure(label, *cap, &keys, threads, insert_ops, get_ops))
        .collect();
    let min_get_per_sec = rows.iter().map(|r| r.get_per_sec).fold(f64::MAX, f64::min);

    let payload = Value::Map(vec![
        (
            "generated_by".into(),
            Value::Str("mcdla store-bench".into()),
        ),
        ("keys".into(), Value::U64(keys.len() as u64)),
        ("threads".into(), Value::U64(threads as u64)),
        ("insert_ops".into(), Value::U64(insert_ops as u64)),
        ("get_ops".into(), Value::U64(get_ops as u64)),
        (
            "pressures".into(),
            Value::Seq(
                rows.iter()
                    .map(|r| {
                        Value::Map(vec![
                            ("label".into(), Value::Str(r.label.clone())),
                            (
                                "capacity".into(),
                                match r.capacity {
                                    Some(c) => Value::U64(c as u64),
                                    None => Value::Null,
                                },
                            ),
                            ("insert_per_sec".into(), Value::F64(r.insert_per_sec)),
                            ("get_per_sec".into(), Value::F64(r.get_per_sec)),
                            ("mix_per_sec".into(), Value::F64(r.mix_per_sec)),
                            ("evictions".into(), Value::U64(r.evictions)),
                            (
                                "evictions_per_insert".into(),
                                Value::F64(r.evictions as f64 / insert_ops.max(1) as f64),
                            ),
                            ("entries".into(), Value::U64(r.entries as u64)),
                            ("hit_rate".into(), Value::F64(r.hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("min_get_per_sec".into(), Value::F64(min_get_per_sec)),
    ]);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                match r.capacity {
                    Some(c) => c.to_string(),
                    None => "-".into(),
                },
                format!("{:.0}", r.insert_per_sec),
                format!("{:.0}", r.get_per_sec),
                format!("{:.0}", r.mix_per_sec),
                r.evictions.to_string(),
                r.entries.to_string(),
            ]
        })
        .collect();
    let summary = render_table(
        &format!(
            "store-bench ({} keys, {threads} threads, in-process)",
            keys.len()
        ),
        &[
            "pressure",
            "capacity",
            "inserts/s",
            "cached gets/s",
            "mixed ops/s",
            "evictions",
            "resident",
        ],
        &table,
    );

    StoreBenchResult {
        json: serde::json::to_string_pretty(&payload),
        summary,
        min_get_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_bench_measures_all_pressures_and_holds_bounds() {
        // Small enough for a debug-build test; the release-build floor
        // (>= 100k cached gets/s) is gated in CI on the real run.
        let result = store_bench(128, 2, 2_000, 4_000);
        assert!(result.min_get_per_sec > 0.0);
        let payload = serde::json::parse(&result.json).unwrap();
        let pressures = payload
            .get("pressures")
            .and_then(|p| p.as_seq())
            .expect("pressures array");
        assert_eq!(pressures.len(), 4, "unbounded + 3 capacity pressures");
        // Bounded pressures must show churn; the unbounded baseline none.
        assert_eq!(
            pressures[0].get("evictions").and_then(|v| v.as_u64()),
            Some(0)
        );
        for p in &pressures[2..] {
            assert!(
                p.get("evictions").and_then(|v| v.as_u64()).unwrap() > 0,
                "under-capacity pressure must evict: {p:?}"
            );
            let entries = p.get("entries").and_then(|v| v.as_u64()).unwrap();
            let cap = p.get("capacity").and_then(|v| v.as_u64()).unwrap();
            assert!(entries <= cap, "resident {entries} > capacity {cap}");
        }
        assert!(result.summary.contains("cached gets/s"));
    }
}
