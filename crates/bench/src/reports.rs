//! Renderers for every paper table/figure — the bodies of the `mcdla`
//! CLI subcommands, kept in the library so integration tests can exercise
//! them without spawning processes.
//!
//! Each `*_text` function returns the human-readable report the old
//! one-binary-per-figure harness printed; the `*_json` functions return
//! the underlying experiment data through the serde data model.

use std::fmt::Write as _;

use std::sync::Arc;

use mcdla_core::scenario::global_runner;
use mcdla_core::{
    ablation, experiment, EnergyReport, PowerModel, ResultStore, Runner, ScenarioGrid, SystemDesign,
};
use mcdla_dnn::{Benchmark, DataType};
use mcdla_interconnect::{
    check_link_budget, CollectiveKind, CollectiveModel, FabricTopology, Ring, RingShape,
    SystemInterconnect,
};
use mcdla_memnode::{
    DimmKind, MemoryNodeConfig, PagePolicy, RemoteAllocator, Side, SystemPower,
    DGX_SYSTEM_TDP_WATTS,
};
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::stats::harmonic_mean;
use mcdla_sim::Bytes;
use serde::{Serialize, Value};

use crate::{fmt_gbs, fmt_pct, fmt_x, render_table};

/// Table II: device-/memory-node configuration parameters.
pub fn table2_text() -> String {
    let d = mcdla_accel::DeviceConfig::paper_baseline();
    let mut out = render_table(
        "Table II (device-node)",
        &["parameter", "value"],
        &[
            vec!["Number of PEs".into(), d.pe_count.to_string()],
            vec!["MACs per PE".into(), d.macs_per_pe.to_string()],
            vec![
                "PE operating frequency".into(),
                format!("{} GHz", d.frequency_ghz),
            ],
            vec![
                "Local SRAM buffer size per PE".into(),
                format!("{} KB", d.sram_per_pe_bytes / 1024),
            ],
            vec![
                "Memory bandwidth".into(),
                format!("{} GB/sec", d.memory_bandwidth_gbs),
            ],
            vec![
                "Memory access latency".into(),
                format!("{} cycles", d.memory_latency_cycles),
            ],
            vec![
                "Number of high-bandwidth links (N)".into(),
                d.link_count.to_string(),
            ],
            vec![
                "Communication bandwidth per link (B)".into(),
                format!("{} GB/sec", d.link_bandwidth_gbs),
            ],
        ],
    );
    let m = MemoryNodeConfig::paper_baseline();
    out.push_str(&render_table(
        "Table II (memory-node)",
        &["parameter", "value"],
        &[
            vec![
                "Memory bandwidth".into(),
                format!("{} GB/sec", m.memory_bandwidth_gbs),
            ],
            vec![
                "Memory access latency".into(),
                format!("{} ns (100 cycles at 1 GHz)", m.memory_latency_ns),
            ],
            vec![
                "Number of high-bandwidth links (N)".into(),
                m.link_count.to_string(),
            ],
            vec![
                "Communication bandwidth per link (B)".into(),
                format!("{} GB/sec", m.link_bandwidth_gbs),
            ],
            vec![
                "DIMMs / capacity".into(),
                format!(
                    "{} x {} = {:.2} TB",
                    m.dimm_count,
                    m.dimm,
                    m.capacity_bytes() as f64 / 1e12
                ),
            ],
        ],
    ));
    out
}

/// Table III: the evaluated benchmark suite.
pub fn table3_text() -> String {
    let rows: Vec<Vec<String>> = Benchmark::ALL
        .iter()
        .map(|bm| {
            let net = bm.build();
            let depth = match bm.timesteps() {
                Some(t) => format!("{t} timesteps"),
                None => format!("{} layers", net.weighted_depth()),
            };
            let fp = net.footprint(512, DataType::F32);
            vec![
                bm.name().to_owned(),
                net.application().to_string(),
                depth,
                format!("{:.1}M", net.total_params() as f64 / 1e6),
                format!("{:.1} GB", fp.total_unvirtualized() as f64 / 1e9),
            ]
        })
        .collect();
    render_table(
        "Table III (benchmarks; footprint at batch 512, unvirtualized)",
        &[
            "network",
            "application",
            "depth",
            "params",
            "train footprint",
        ],
        &rows,
    )
}

/// Table IV (memory-node power) and the §V-C power-efficiency numbers.
pub fn table4_text() -> String {
    let rows: Vec<Vec<String>> = DimmKind::ALL
        .iter()
        .map(|d| {
            let node = MemoryNodeConfig::with_dimm(*d);
            vec![
                d.name().to_owned(),
                format!("{:.1}", d.tdp_watts()),
                format!("{:.0}", node.tdp_watts()),
                format!("{:.1}", node.gb_per_watt()),
            ]
        })
        .collect();
    let mut out = render_table(
        "Table IV (DDR4-2400 memory-node power)",
        &["DDR4 module", "DIMM TDP (W)", "node TDP (W)", "GB/W"],
        &rows,
    );

    let speedup = experiment::headline_speedup();
    let _ = writeln!(
        out,
        "measured MC-DLA(B) harmonic-mean speedup: {}",
        fmt_x(speedup)
    );
    let _ = writeln!(
        out,
        "DGX-class baseline system TDP: {DGX_SYSTEM_TDP_WATTS} W"
    );
    let mut rows = Vec::new();
    for dimm in [DimmKind::Rdimm8, DimmKind::Lrdimm128] {
        let p = SystemPower::mc_dla(&MemoryNodeConfig::with_dimm(dimm), 8);
        rows.push(vec![
            dimm.name().to_owned(),
            format!("{:.0} W", p.memnode_watts),
            fmt_pct(p.overhead_fraction()),
            format!("{:.2} TB", p.added_capacity_bytes as f64 / 1e12),
            fmt_x(p.perf_per_watt_gain(speedup)),
        ]);
    }
    out.push_str(&render_table(
        "§V-C system power (8 memory-nodes)",
        &[
            "memory-node DIMM",
            "added power",
            "overhead",
            "added capacity",
            "perf/W vs DC-DLA",
        ],
        &rows,
    ));
    out
}

/// Figure 2: CNN execution time across five accelerator generations.
pub fn fig2_text() -> String {
    let cells = experiment::fig2();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.benchmark.clone(),
                c.generation.to_string(),
                format!("{:.3}", c.normalized_time),
                fmt_pct(c.overhead),
            ]
        })
        .collect();
    let mut out = render_table(
        "Figure 2 (single device, PCIe gen3 host interface)",
        &[
            "network",
            "device",
            "time (norm. to Kepler)",
            "virt overhead",
        ],
        &rows,
    );
    // The headline claims of §I.
    for bm in ["AlexNet", "GoogLeNet", "VGG-E", "ResNet"] {
        let series: Vec<&experiment::Fig2Cell> =
            cells.iter().filter(|c| c.benchmark == bm).collect();
        let last = series.last().expect("five generations");
        let _ = writeln!(
            out,
            "{bm}: Kepler->TPUv2 time reduction {:.1}x, overhead {} -> {}",
            1.0 / last.normalized_time,
            fmt_pct(series[0].overhead),
            fmt_pct(last.overhead),
        );
    }
    out
}

/// Figure 2 experiment data.
pub fn fig2_json() -> Value {
    experiment::fig2().to_value()
}

/// Figs. 5 & 7: interconnect structures and link budgets.
pub fn fig7_text() -> String {
    let layouts = [
        SystemInterconnect::dgx_cube_mesh(25.0),
        SystemInterconnect::hc_dla(25.0),
        SystemInterconnect::mc_dla_star_a(25.0),
        SystemInterconnect::mc_dla_star_b(25.0),
        SystemInterconnect::mc_dla_ring(25.0),
    ];
    let mut rows = Vec::new();
    for sys in &layouts {
        let shapes = sys.ring_shapes();
        let hops: Vec<String> = shapes.iter().map(|s| s.hops.to_string()).collect();
        let rings: Vec<Ring> = sys.rings().iter().map(|r| r.ring.clone()).collect();
        let budget = match check_link_budget(sys.topology(), &rings, 6) {
            Ok(used) => format!("ok (max {} of 6)", used.iter().max().unwrap_or(&0)),
            Err((node, used)) => format!("exceeded at {node} ({used})"),
        };
        rows.push(vec![
            sys.name().to_owned(),
            format!(
                "{} dev + {} mem",
                sys.devices().len(),
                sys.memory_nodes().len()
            ),
            hops.join("/"),
            budget,
            fmt_gbs(sys.virt_bandwidth_gbs(1)),
            fmt_gbs(sys.virt_bandwidth_gbs(2)),
        ]);
    }
    let mut out = render_table(
        "Figs. 5 & 7 (interconnect layouts, B = 25 GB/s per link)",
        &[
            "layout",
            "nodes",
            "ring hops",
            "link budget",
            "virt BW (1 target)",
            "virt BW (2 targets)",
        ],
        &rows,
    );
    out.push_str("note: the star layouts are modeled at hop-count fidelity; their\n");
    out.push_str("ring link budget is carried by the long rings of Fig. 7(a)/(b).\n");
    out
}

/// Figure 9: collective latency vs ring size.
pub fn fig9_text() -> String {
    let model = CollectiveModel::paper_fig9();
    let sync = Bytes::from_mib(8);
    let base: Vec<f64> = CollectiveKind::ALL
        .iter()
        .map(|k| {
            model
                .latency(*k, sync, RingShape::device_ring(2))
                .as_secs_f64()
        })
        .collect();
    let mut rows = Vec::new();
    for nodes in (2..=36).step_by(2) {
        let mut row = vec![nodes.to_string()];
        for (k, b) in CollectiveKind::ALL.iter().zip(&base) {
            let t = model
                .latency(*k, sync, RingShape::device_ring(nodes))
                .as_secs_f64();
            row.push(format!("{:.3}", t / b));
        }
        rows.push(row);
    }
    let mut out = render_table(
        "Figure 9 (latency normalized to a 2-node ring)",
        &["nodes", "all-gather", "all-reduce", "broadcast"],
        &rows,
    );
    let t8 = model
        .latency(CollectiveKind::AllReduce, sync, RingShape::device_ring(8))
        .as_secs_f64();
    let t16 = model
        .latency(CollectiveKind::AllReduce, sync, RingShape::device_ring(16))
        .as_secs_f64();
    let _ = writeln!(
        out,
        "DC-DLA (8 nodes) -> MC-DLA (16 nodes) all-reduce overhead at 8 MB: {:.1}% (paper: ~7%)",
        (t16 / t8 - 1.0) * 100.0
    );
    out
}

/// Figure 10: LOCAL vs BW_AWARE page allocation.
pub fn fig10_text() -> String {
    let node = MemoryNodeConfig::paper_baseline();
    let side_bw = node.group_bandwidth_gbs(); // N*B/2 = 75 GB/s
    let d_bytes: u64 = 1 << 30; // a 1 GiB cudaMallocRemote request

    let mut rows = Vec::new();
    for policy in [PagePolicy::Local, PagePolicy::BwAware] {
        let mut alloc = RemoteAllocator::new(
            node.capacity_bytes() / 2,
            node.capacity_bytes() / 2,
            2 << 20,
        );
        let a = alloc.malloc_remote(d_bytes, policy).expect("fits");
        let bw = RemoteAllocator::effective_bandwidth_gbs(policy, side_bw);
        rows.push(vec![
            policy.to_string(),
            format!(
                "{:.0} MiB",
                a.bytes_on(Side::Left) as f64 / (1 << 20) as f64
            ),
            format!(
                "{:.0} MiB",
                a.bytes_on(Side::Right) as f64 / (1 << 20) as f64
            ),
            fmt_gbs(bw),
            format!("{:.2} ms", d_bytes as f64 / (bw * 1e9) * 1e3),
        ]);
    }
    let mut out = render_table(
        "Figure 10 (1 GiB allocation, N=6 links, B=25 GB/s)",
        &[
            "policy",
            "left node",
            "right node",
            "effective BW",
            "latency",
        ],
        &rows,
    );
    let _ = writeln!(
        out,
        "Latency_LOCAL    = D / (N*B/2)  -> {:.2} ms",
        d_bytes as f64 / (side_bw * 1e9) * 1e3
    );
    let _ = writeln!(
        out,
        "Latency_BW_AWARE = D / (N*B)    -> {:.2} ms",
        d_bytes as f64 / (2.0 * side_bw * 1e9) * 1e3
    );
    out
}

/// Figure 11: latency breakdown stacks for both strategies.
pub fn fig11_text() -> String {
    let mut out = String::new();
    for strategy in ParallelStrategy::ALL {
        let bars = experiment::fig11(strategy);
        let rows: Vec<Vec<String>> = bars
            .iter()
            .map(|b| {
                vec![
                    b.benchmark.clone(),
                    b.design.to_string(),
                    format!("{:.3}", b.stack[0]),
                    format!("{:.3}", b.stack[1]),
                    format!("{:.3}", b.stack[2]),
                    format!("{:.3}", b.stack.iter().sum::<f64>()),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &format!("Figure 11 ({strategy})"),
            &[
                "network",
                "design",
                "computation",
                "synchronization",
                "memory virt",
                "stack total",
            ],
            &rows,
        ));
    }
    out
}

/// Figure 11 experiment data (both strategies).
pub fn fig11_json() -> Value {
    Value::Map(
        ParallelStrategy::ALL
            .iter()
            .map(|s| (s.to_string(), experiment::fig11(*s).to_value()))
            .collect(),
    )
}

/// Figure 12: CPU memory-bandwidth usage.
pub fn fig12_text() -> String {
    let rows_data = experiment::fig12();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.design.to_string(),
                r.benchmark.clone(),
                fmt_gbs(r.avg_data_parallel_gbs),
                fmt_gbs(r.avg_model_parallel_gbs),
                fmt_gbs(r.max_gbs),
            ]
        })
        .collect();
    let mut out = render_table(
        "Figure 12 (per-socket CPU memory bandwidth usage)",
        &[
            "design",
            "network",
            "avg (data-par)",
            "avg (model-par)",
            "max",
        ],
        &rows,
    );
    // §V-A: HC-DLA consumes an average 92% of host memory bandwidth for
    // certain workloads.
    let worst = rows_data
        .iter()
        .filter(|r| r.design == SystemDesign::HcDla)
        .map(|r| r.avg_data_parallel_gbs.max(r.avg_model_parallel_gbs) / 300.0)
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "HC-DLA worst-case average socket draw: {:.0}% of the provisioned 300 GB/s (paper: 92%)",
        worst * 100.0
    );
    out
}

/// Figure 12 experiment data.
pub fn fig12_json() -> Value {
    experiment::fig12().to_value()
}

/// Figure 13: normalized performance of all six designs.
pub fn fig13_text() -> String {
    let mut out = String::new();
    for strategy in ParallelStrategy::ALL {
        let data = experiment::fig13(strategy);
        let headers: Vec<String> = std::iter::once("network".to_owned())
            .chain(SystemDesign::ALL.iter().map(|d| d.name().to_owned()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|row| {
                std::iter::once(row.benchmark.clone())
                    .chain(row.performance.iter().map(|(_, p)| format!("{p:.3}")))
                    .collect()
            })
            .collect();
        out.push_str(&render_table(
            &format!("Figure 13 ({strategy})"),
            &header_refs,
            &rows,
        ));
        for design in [
            SystemDesign::HcDla,
            SystemDesign::McDlaStar,
            SystemDesign::McDlaLocal,
            SystemDesign::McDlaBwAware,
        ] {
            let s = experiment::speedup_vs_dc(design, strategy);
            let _ = writeln!(
                out,
                "{} vs DC-DLA ({strategy}): HarMean {}",
                design.name(),
                fmt_x(s.harmonic_mean)
            );
        }
    }
    let _ = writeln!(
        out,
        "MC-DLA(B) overall harmonic-mean speedup: {} (paper: 2.8x)",
        fmt_x(experiment::headline_speedup())
    );
    out
}

/// Figure 13 experiment data (both strategies).
pub fn fig13_json() -> Value {
    Value::Map(
        ParallelStrategy::ALL
            .iter()
            .map(|s| (s.to_string(), experiment::fig13(*s).to_value()))
            .collect(),
    )
}

/// Figure 14: batch-size sensitivity.
pub fn fig14_text() -> String {
    let batches = [128u64, 256, 512, 1024, 2048];
    let cells = experiment::fig14(&batches);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.batch.to_string(),
                c.strategy.to_string(),
                c.benchmark.clone(),
                fmt_x(c.speedup),
            ]
        })
        .collect();
    let mut out = render_table(
        "Figure 14 (MC-DLA(B) speedup over DC-DLA vs batch size)",
        &["batch", "strategy", "network", "speedup"],
        &rows,
    );
    let all: Vec<f64> = cells
        .iter()
        .filter(|c| c.benchmark != "HarMean")
        .map(|c| c.speedup)
        .collect();
    let _ = writeln!(
        out,
        "harmonic mean across all batch sizes: {} (paper: 2.17x)",
        fmt_x(harmonic_mean(&all).unwrap_or(0.0))
    );
    out
}

/// Figure 14 experiment data.
pub fn fig14_json() -> Value {
    experiment::fig14(&[128, 256, 512, 1024, 2048]).to_value()
}

/// §V-D scalability study.
pub fn scalability_text() -> String {
    let rows_data = experiment::scalability(&Benchmark::CNNS);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.devices.to_string(),
                fmt_x(r.dc_virt_on),
                fmt_x(r.dc_virt_off),
                fmt_x(r.mc),
            ]
        })
        .collect();
    let mut out = render_table(
        "§V-D scalability (speedup over the same design's 1-device run)",
        &[
            "network",
            "devices",
            "DC-DLA (virt on)",
            "DC-DLA (virt off)",
            "MC-DLA(B)",
        ],
        &rows,
    );
    for devices in [4usize, 8] {
        let mean = |f: &dyn Fn(&experiment::ScalabilityRow) -> f64| {
            let v: Vec<f64> = rows_data
                .iter()
                .filter(|r| r.devices == devices)
                .map(f)
                .collect();
            harmonic_mean(&v).unwrap_or(0.0)
        };
        let _ = writeln!(
            out,
            "{devices} devices: DC virt-on {} (paper: {}), virt-off {} (paper: ~{devices}x), MC {}",
            fmt_x(mean(&|r| r.dc_virt_on)),
            if devices == 4 { "1.3x" } else { "2.7x" },
            fmt_x(mean(&|r| r.dc_virt_off)),
            fmt_x(mean(&|r| r.mc)),
        );
    }
    out
}

/// §V-D scalability data.
pub fn scalability_json() -> Value {
    experiment::scalability(&Benchmark::CNNS).to_value()
}

/// §V-B sensitivity studies.
pub fn sensitivity_text() -> String {
    let s = experiment::sensitivity();
    render_table(
        "§V-B sensitivity (MC-DLA(B) over DC-DLA, harmonic means)",
        &["study", "measured", "paper"],
        &[
            vec!["baseline".into(), fmt_x(s.baseline), "2.8x".into()],
            vec![
                "DC-DLA improvement from PCIe gen4".into(),
                fmt_pct(s.dc_gen4_improvement),
                "38%".into(),
            ],
            vec![
                "gap with PCIe gen4".into(),
                fmt_x(s.gen4_gap),
                "2.1x".into(),
            ],
            vec![
                "gap with TPUv2-class device".into(),
                fmt_x(s.faster_device_gap),
                "3.2x".into(),
            ],
            vec![
                "gap with DGX-2-class node".into(),
                fmt_x(s.dgx2_gap),
                "2.9x".into(),
            ],
            vec![
                "gap with cDMA compression (CNNs)".into(),
                fmt_x(s.cdma_cnn_gap),
                "2.3x".into(),
            ],
        ],
    )
}

/// §V-B sensitivity data.
pub fn sensitivity_json() -> Value {
    experiment::sensitivity().to_value()
}

/// §VI scale-out study.
pub fn scale_out_text() -> String {
    let mut out = String::new();
    for bm in [Benchmark::ResNet, Benchmark::RnnGru] {
        let rows: Vec<Vec<String>> = experiment::scale_out(bm, &[8, 16, 32, 64])
            .iter()
            .map(|r| {
                vec![
                    r.devices.to_string(),
                    format!("{:.2} ms", r.iteration_secs * 1e3),
                    format!("{:.2}x", r.throughput_vs_8),
                    fmt_pct(r.sync_fraction),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &format!("§VI scale-out, {bm} (weak scaling, 64 samples/device)"),
            &["devices", "iteration", "throughput vs 8", "sync fraction"],
            &rows,
        ));
    }
    out
}

/// §VI scale-out data.
pub fn scale_out_json() -> Value {
    Value::Map(
        [Benchmark::ResNet, Benchmark::RnnGru]
            .iter()
            .map(|bm| {
                (
                    bm.name().to_owned(),
                    experiment::scale_out(*bm, &[8, 16, 32, 64]).to_value(),
                )
            })
            .collect(),
    )
}

/// Ablation studies over the design choices.
pub fn ablations_text() -> String {
    let mut out = String::new();
    for design in [SystemDesign::DcDla, SystemDesign::McDlaBwAware] {
        let rows: Vec<Vec<String>> = ablation::ablations(design)
            .iter()
            .flat_map(|a| {
                let spread = a.spread();
                a.variants
                    .iter()
                    .map(|(label, secs)| {
                        vec![
                            a.name.clone(),
                            a.benchmark.clone(),
                            label.clone(),
                            format!("{:.3} ms", secs * 1e3),
                            format!("{spread:.2}x"),
                        ]
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        out.push_str(&render_table(
            &format!("ablations on {design}"),
            &["mechanism", "network", "variant", "iteration", "spread"],
            &rows,
        ));
    }
    out
}

/// Dynamic energy-per-iteration comparison (§V-C extended).
pub fn energy_text() -> String {
    // Warm the memo cache in one parallel fan-out; the per-benchmark loop
    // below then reads cached cells instead of simulating serially.
    let _ = global_runner().run_grid(
        &ScenarioGrid::paper_default()
            .designs(&[SystemDesign::DcDla, SystemDesign::McDlaBwAware])
            .strategies(&[ParallelStrategy::DataParallel])
            .scenarios(),
    );
    let node = MemoryNodeConfig::with_dimm(DimmKind::Lrdimm128);
    let mut rows = Vec::new();
    for bm in Benchmark::ALL {
        let dc = experiment::simulate(SystemDesign::DcDla, bm, ParallelStrategy::DataParallel);
        let mc = experiment::simulate(
            SystemDesign::McDlaBwAware,
            bm,
            ParallelStrategy::DataParallel,
        );
        let e_dc = EnergyReport::from_iteration(&dc, &PowerModel::dgx_baseline());
        let e_mc = EnergyReport::from_iteration(&mc, &PowerModel::mc_dla(&node, 8));
        rows.push(vec![
            bm.name().to_owned(),
            format!("{:.1} J", e_dc.total_joules()),
            format!("{:.1} J", e_mc.total_joules()),
            format!("{:.2}x", e_mc.perf_per_watt_vs(&e_dc)),
        ]);
    }
    let mut out = render_table(
        "energy per iteration (data-parallel, 128 GB LRDIMM memory-nodes)",
        &["network", "DC-DLA", "MC-DLA(B)", "energy gain"],
        &rows,
    );
    out.push_str("static §V-C estimate for comparison: 2.1x-2.6x perf/W\n");
    out
}

/// The complete paper-vs-measured summary.
pub fn paper_report_text() -> String {
    // Every per-cell loop below draws from the §V default matrix; warm
    // the whole 96-cell grid through one parallel fan-out first so the
    // loops hit the memo cache instead of simulating serially.
    let _ = global_runner().run_grid(&ScenarioGrid::paper_default().scenarios());

    let mut out = String::from("mcdla paper report — Kwon & Rhu, MICRO-51 2018\n\n");

    // Fig. 13 headline numbers.
    let dp = experiment::speedup_vs_dc(SystemDesign::McDlaBwAware, ParallelStrategy::DataParallel);
    let mp = experiment::speedup_vs_dc(SystemDesign::McDlaBwAware, ParallelStrategy::ModelParallel);
    let mut rows = vec![
        vec![
            "MC-DLA(B) speedup, data-parallel".into(),
            fmt_x(dp.harmonic_mean),
            "3.5x".into(),
        ],
        vec![
            "MC-DLA(B) speedup, model-parallel".into(),
            fmt_x(mp.harmonic_mean),
            "2.1x".into(),
        ],
        vec![
            "MC-DLA(B) speedup, overall".into(),
            fmt_x(experiment::headline_speedup()),
            "2.8x".into(),
        ],
    ];

    // Oracle fraction (§V-B: 84%-99%, average 95%).
    let mut fr = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let mc = experiment::simulate(SystemDesign::McDlaBwAware, bm, strategy);
            let o = experiment::simulate(SystemDesign::DcDlaOracle, bm, strategy);
            fr.push(o.iteration_time.as_secs_f64() / mc.iteration_time.as_secs_f64());
        }
    }
    let lo = fr.iter().cloned().fold(f64::MAX, f64::min);
    let hi = fr.iter().cloned().fold(0.0f64, f64::max);
    rows.push(vec![
        "MC-DLA(B) fraction of oracle".into(),
        format!(
            "{}-{} (HarMean {})",
            fmt_pct(lo),
            fmt_pct(hi.min(1.0)),
            fmt_pct(harmonic_mean(&fr).unwrap_or(0.0))
        ),
        "84%-99% (avg 95%)".into(),
    ]);

    // MC-DLA(S) loss vs MC-DLA(B) (§V-B: avg 14%, max 24%).
    let mut losses = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let s = experiment::simulate(SystemDesign::McDlaStar, bm, strategy);
            let b = experiment::simulate(SystemDesign::McDlaBwAware, bm, strategy);
            losses.push(1.0 - b.iteration_time.as_secs_f64() / s.iteration_time.as_secs_f64());
        }
    }
    rows.push(vec![
        "MC-DLA(S) performance loss vs (B)".into(),
        format!(
            "avg {} max {}",
            fmt_pct(losses.iter().sum::<f64>() / losses.len() as f64),
            fmt_pct(losses.iter().cloned().fold(0.0f64, f64::max))
        ),
        "avg 14%, max 24%".into(),
    ]);

    // MC-DLA(L) fraction of MC-DLA(B) (§V-B: 96%).
    let mut lb = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let l = experiment::simulate(SystemDesign::McDlaLocal, bm, strategy);
            let b = experiment::simulate(SystemDesign::McDlaBwAware, bm, strategy);
            lb.push(b.iteration_time.as_secs_f64() / l.iteration_time.as_secs_f64());
        }
    }
    rows.push(vec![
        "MC-DLA(L) fraction of MC-DLA(B)".into(),
        fmt_pct(harmonic_mean(&lb).unwrap_or(0.0)),
        "96%".into(),
    ]);

    // HC-DLA (§V-B: +32% DP, +38% MP).
    let hc_dp = experiment::speedup_vs_dc(SystemDesign::HcDla, ParallelStrategy::DataParallel);
    let hc_mp = experiment::speedup_vs_dc(SystemDesign::HcDla, ParallelStrategy::ModelParallel);
    rows.push(vec![
        "HC-DLA speedup (DP / MP)".into(),
        format!(
            "{} / {}",
            fmt_x(hc_dp.harmonic_mean),
            fmt_x(hc_mp.harmonic_mean)
        ),
        "1.32x / 1.38x".into(),
    ]);

    // Sensitivity studies.
    let s = experiment::sensitivity();
    rows.push(vec![
        "DC-DLA gain from PCIe gen4".into(),
        fmt_pct(s.dc_gen4_improvement),
        "38%".into(),
    ]);
    rows.push(vec![
        "gap with PCIe gen4".into(),
        fmt_x(s.gen4_gap),
        "2.1x".into(),
    ]);
    rows.push(vec![
        "gap with TPUv2-class device".into(),
        fmt_x(s.faster_device_gap),
        "3.2x".into(),
    ]);
    rows.push(vec![
        "gap with DGX-2-class node".into(),
        fmt_x(s.dgx2_gap),
        "2.9x".into(),
    ]);
    rows.push(vec![
        "gap with cDMA compression (CNNs)".into(),
        fmt_x(s.cdma_cnn_gap),
        "2.3x".into(),
    ]);

    // Fig. 14 aggregate.
    let cells = experiment::fig14(&[128, 256, 1024, 2048]);
    let all: Vec<f64> = cells
        .iter()
        .filter(|c| c.benchmark != "HarMean")
        .map(|c| c.speedup)
        .collect();
    rows.push(vec![
        "batch-sweep speedup (Fig. 14)".into(),
        fmt_x(harmonic_mean(&all).unwrap_or(0.0)),
        "2.17x".into(),
    ]);

    // Scalability (§V-D).
    let sc = experiment::scalability(&Benchmark::CNNS);
    for devices in [4usize, 8] {
        let on: Vec<f64> = sc
            .iter()
            .filter(|r| r.devices == devices)
            .map(|r| r.dc_virt_on)
            .collect();
        rows.push(vec![
            format!("DC-DLA scaling at {devices} devices (virt on)"),
            fmt_x(harmonic_mean(&on).unwrap_or(0.0)),
            if devices == 4 { "1.3x" } else { "2.7x" }.into(),
        ]);
    }

    out.push_str(&render_table(
        "paper vs measured",
        &["metric", "measured", "paper"],
        &rows,
    ));
    out
}

/// The `mcdla sweep` result: per-cell wall-clock of the evaluation grid,
/// for tracking simulator performance across PRs.
#[derive(Debug)]
pub struct SweepResult {
    /// Pretty-printed JSON payload (the `BENCH_scenarios.json` content).
    pub json: String,
    /// Human-readable summary table.
    pub summary: String,
}

/// A validated, expanded, filtered sweep — built *before* any output
/// file is touched, so invalid axes or a no-match filter can never
/// clobber an existing `BENCH_scenarios.json`.
#[derive(Debug)]
pub struct SweepPlan {
    /// Cells in the unfiltered grid.
    pub grid_cells: usize,
    /// The cells to run, post-filter.
    pub scenarios: Vec<mcdla_core::Scenario>,
    filter: Option<String>,
    cache_cap: Option<usize>,
}

/// The runner a [`SweepPlan`] executes on: the process-global runner
/// (unbounded shared memo cache) unless `--cache-cap` bounds the sweep,
/// in which case a private LRU-bounded store of that capacity is used —
/// the knob that keeps arbitrarily large sweeps in flat memory.
enum SweepRunner {
    Global(&'static Runner),
    Bounded(Runner),
}

impl SweepRunner {
    fn for_plan(plan: &SweepPlan) -> SweepRunner {
        match plan.cache_cap {
            None => SweepRunner::Global(global_runner()),
            Some(cap) => SweepRunner::Bounded(Runner::with_store(
                global_runner().threads(),
                Arc::new(ResultStore::bounded(cap)),
            )),
        }
    }

    fn get(&self) -> &Runner {
        match self {
            SweepRunner::Global(r) => r,
            SweepRunner::Bounded(r) => r,
        }
    }
}

/// One sweep cell as JSON. The deterministic payload fields come first
/// and in a fixed order; `provenance` optionally appends the per-run
/// `wall_ms`/`cached` metadata (batch `BENCH_scenarios.json` cells), so
/// a streamed (`--ndjson`) cell is byte-identical to the batch
/// payload's cell with those two metadata fields removed — and is
/// itself byte-stable across cold and warm runs.
fn sweep_cell_value(t: &mcdla_core::TimedRun, provenance: Option<(f64, bool)>) -> Value {
    let mut map = vec![
        ("scenario".into(), t.scenario.to_value()),
        ("label".into(), Value::Str(t.scenario.label())),
        (
            "digest".into(),
            Value::Str(format!("{:016x}", t.scenario.digest())),
        ),
    ];
    if let Some((wall_ms, cached)) = provenance {
        map.push(("wall_ms".into(), Value::F64(wall_ms)));
        map.push(("cached".into(), Value::Bool(cached)));
    }
    map.push((
        "iteration_secs".into(),
        Value::F64(t.report.iteration_time.as_secs_f64()),
    ));
    map.push(("performance".into(), Value::F64(t.report.performance())));
    Value::Map(map)
}

/// One `--ndjson` line for a streamed sweep cell (no trailing newline).
pub fn sweep_cell_line(t: &mcdla_core::TimedRun) -> String {
    serde::json::to_string(&sweep_cell_value(t, None))
}

/// Expands, validates, and filters a sweep grid into a [`SweepPlan`].
///
/// `batches`/`device_counts`/`topologies` extend (not replace) the
/// default §V matrix along those axes when non-empty — cells an
/// extension duplicates (a flag repeating a default value) are collapsed
/// to their first occurrence before compute; `filter` keeps only the
/// cells whose [`label`](mcdla_core::Scenario::label) contains the given
/// substring (case-insensitive); `cache_cap` bounds the sweep's memo
/// cache. Extending `topologies` keeps the analytical default cells and
/// adds a flow-routed copy of the matrix per listed fabric.
///
/// # Errors
///
/// Rejects sweeps whose extended axes expand to an invalid cell (e.g. a
/// data-parallel batch smaller than a device count) and filters that
/// match **zero** cells — a silent empty sweep would overwrite a real
/// `BENCH_scenarios.json` with a degenerate report.
pub fn plan_sweep(
    batches: &[u64],
    device_counts: &[usize],
    topologies: &[FabricTopology],
    filter: Option<&str>,
    cache_cap: Option<usize>,
) -> Result<SweepPlan, String> {
    // The flags *extend* the default §V matrix: the paper-default cells
    // stay in the sweep so perf-tracking consumers keep their baselines.
    let mut grid = ScenarioGrid::paper_default();
    if !batches.is_empty() {
        grid = grid.extend_batches(batches);
    }
    if !device_counts.is_empty() {
        grid = grid.extend_device_counts(device_counts);
    }
    if !topologies.is_empty() {
        grid = grid.extend_topologies(topologies);
    }
    let mut expanded = grid.scenarios();
    // Extended axes can repeat values already in the paper matrix (e.g.
    // `--batches 256` when 256 is a default); simulating a cell twice
    // wastes compute and double-counts it in the report, so keep the
    // first occurrence of each distinct scenario.
    let mut seen = std::collections::HashSet::new();
    expanded.retain(|s| seen.insert(*s));
    let grid_cells = expanded.len();
    // Axis extensions multiply, so individually sane lists can produce
    // nonsensical cells (e.g. --batches 64 --devices 256): reject the
    // whole sweep with the first offending cell named.
    for s in &expanded {
        if let Err(msg) = s.validate() {
            return Err(format!("invalid sweep cell `{}`: {msg}", s.label()));
        }
    }
    let scenarios = match filter {
        Some(needle) => {
            let lowered = needle.to_lowercase();
            let matched: Vec<mcdla_core::Scenario> = expanded
                .into_iter()
                .filter(|s| s.label().to_lowercase().contains(&lowered))
                .collect();
            if matched.is_empty() {
                return Err(format!(
                    "--filter `{needle}` matches none of the {grid_cells} grid cells \
                     (labels look like `MC-DLA(B)/AlexNet/data-parallel`); \
                     no output was written"
                ));
            }
            matched
        }
        None => expanded,
    };
    Ok(SweepPlan {
        grid_cells,
        scenarios,
        filter: filter.map(str::to_owned),
        cache_cap,
    })
}

/// Runs a planned scenario grid, timing every cell, and packages the
/// result.
pub fn sweep(plan: SweepPlan) -> SweepResult {
    let sweep_runner = SweepRunner::for_plan(&plan);
    let runner = sweep_runner.get();
    let SweepPlan {
        grid_cells,
        scenarios,
        filter,
        ..
    } = plan;
    let filter = filter.as_deref();
    let start = std::time::Instant::now();
    let runs = runner.run_grid_timed(&scenarios);
    let total = start.elapsed();

    let cells: Vec<Value> = runs
        .iter()
        .map(|t| sweep_cell_value(t, Some((t.wall.as_secs_f64() * 1e3, t.cached))))
        .collect();
    let cache = runner.store().stats();
    let payload = Value::Map(vec![
        ("generated_by".into(), Value::Str("mcdla sweep".into())),
        ("threads".into(), Value::U64(runner.threads() as u64)),
        (
            "filter".into(),
            match filter {
                Some(f) => Value::Str(f.into()),
                None => Value::Null,
            },
        ),
        ("grid_cells".into(), Value::U64(grid_cells as u64)),
        ("cells_total".into(), Value::U64(runs.len() as u64)),
        (
            "cells_simulated".into(),
            Value::U64(runs.iter().filter(|t| !t.cached).count() as u64),
        ),
        (
            "total_wall_ms".into(),
            Value::F64(total.as_secs_f64() * 1e3),
        ),
        ("cache".into(), cache.to_value()),
        ("cells".into(), Value::Seq(cells)),
    ]);

    let simulated: Vec<&mcdla_core::TimedRun> = runs.iter().filter(|t| !t.cached).collect();
    let mut walls: Vec<f64> = simulated
        .iter()
        .map(|t| t.wall.as_secs_f64() * 1e3)
        .collect();
    walls.sort_by(f64::total_cmp);
    // All-cached sweeps (a warm in-process cache) have nothing to time.
    let pick = |q: f64| {
        if walls.is_empty() {
            0.0
        } else {
            walls[(((walls.len() - 1) as f64) * q).round() as usize]
        }
    };
    let mut summary = render_table(
        "sweep (simulator wall-clock per grid cell)",
        &["metric", "value"],
        &[
            vec!["grid cells".into(), grid_cells.to_string()],
            vec![
                "matched cells".into(),
                match filter {
                    Some(f) => format!("{} (filter `{f}`)", runs.len()),
                    None => runs.len().to_string(),
                },
            ],
            vec![
                "simulated (cache misses)".into(),
                simulated.len().to_string(),
            ],
            vec![
                "cache entries".into(),
                match cache.capacity {
                    Some(cap) => format!("{} (cap {cap})", cache.entries),
                    None => format!("{} (unbounded)", cache.entries),
                },
            ],
            vec!["cache hit rate".into(), crate::fmt_pct(cache.hit_rate)],
            vec!["cache evictions".into(), cache.evictions.to_string()],
            vec!["single-flight waits".into(), cache.dedup_waits.to_string()],
            vec!["worker threads".into(), runner.threads().to_string()],
            vec![
                "total wall".into(),
                format!("{:.1} ms", total.as_secs_f64() * 1e3),
            ],
            vec!["cell p50".into(), format!("{:.2} ms", pick(0.5))],
            vec!["cell p90".into(), format!("{:.2} ms", pick(0.9))],
            vec!["cell max".into(), format!("{:.2} ms", pick(1.0))],
        ],
    );
    let stage_rows: Vec<Vec<String>> = cache
        .stages
        .iter()
        .map(|s| {
            vec![
                s.stage.clone(),
                format!("{}/{}", s.hits, s.misses),
                crate::fmt_pct(s.hit_rate),
                s.evictions.to_string(),
                match s.capacity {
                    Some(cap) => format!("{} (cap {cap})", s.entries),
                    None => format!("{} (unbounded)", s.entries),
                },
            ]
        })
        .collect();
    summary.push_str(&render_table(
        "staged engine (per-stage memo-table traffic, process lifetime)",
        &["stage", "hits/misses", "hit rate", "evictions", "entries"],
        &stage_rows,
    ));
    let _ = writeln!(summary, "slowest cells:");
    let mut by_wall: Vec<&&mcdla_core::TimedRun> = simulated.iter().collect();
    by_wall.sort_by_key(|t| std::cmp::Reverse(t.wall));
    for t in by_wall.iter().take(5) {
        let _ = writeln!(
            summary,
            "  {:>8.2} ms  {} / {} / {}",
            t.wall.as_secs_f64() * 1e3,
            t.scenario.design.name(),
            t.scenario.benchmark.name(),
            t.scenario.strategy,
        );
    }
    SweepResult {
        json: serde::json::to_string_pretty(&payload),
        summary,
    }
}

/// Summary counters of a streamed (`--ndjson`) sweep.
#[derive(Debug)]
pub struct SweepStreamSummary {
    /// Cells in the unfiltered grid.
    pub grid_cells: usize,
    /// Cells written (after the filter).
    pub cells: usize,
    /// Cells actually simulated (cache misses).
    pub simulated: usize,
    /// Human-readable summary table.
    pub summary: String,
}

/// The `mcdla sweep --ndjson` body: streams one compact JSON object per
/// cell of a planned grid to `out` **as workers finish** — constant
/// memory, bounded by the executor's channel, with no whole-grid `Vec`
/// on the path. Cells arrive in completion order; consumers pair
/// streamed and batch cells by `digest`.
///
/// # Errors
///
/// Propagates write failures (a closed pipe ends the sweep early and
/// cleanly). Invalid axes and no-match filters are rejected earlier, by
/// [`plan_sweep`].
pub fn sweep_ndjson(
    plan: SweepPlan,
    out: &mut dyn std::io::Write,
) -> Result<SweepStreamSummary, String> {
    let sweep_runner = SweepRunner::for_plan(&plan);
    let runner = sweep_runner.get();
    let SweepPlan {
        grid_cells,
        scenarios,
        filter,
        ..
    } = plan;
    let filter = filter.as_deref();
    let total_cells = scenarios.len();
    let start = std::time::Instant::now();
    let mut written = 0usize;
    let mut simulated = 0usize;
    // Buffer a few cells per worker: enough to keep the writer fed,
    // small enough that memory stays flat for arbitrarily large grids.
    let stream = runner.run_grid_streaming(scenarios, 2 * runner.threads());
    let mut pipe_closed = false;
    for run in stream {
        simulated += usize::from(!run.cached);
        if let Err(e) = writeln!(out, "{}", sweep_cell_line(&run)) {
            // A downstream consumer closing the pipe early (`| head`,
            // `| jq -e`) is a normal end for a streaming producer —
            // dropping the stream cancels the remaining cells.
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                pipe_closed = true;
                break;
            }
            return Err(format!("writing NDJSON cell: {e}"));
        }
        written += 1;
    }
    if !pipe_closed {
        match out.flush() {
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
            other => other.map_err(|e| format!("flushing NDJSON: {e}"))?,
        }
    }
    let total = start.elapsed();
    let summary = render_table(
        "sweep --ndjson (streamed grid)",
        &["metric", "value"],
        &[
            vec!["grid cells".into(), grid_cells.to_string()],
            vec![
                "streamed cells".into(),
                match filter {
                    Some(f) => format!("{written} of {total_cells} (filter `{f}`)"),
                    None => written.to_string(),
                },
            ],
            vec!["simulated (cache misses)".into(), simulated.to_string()],
            vec!["worker threads".into(), runner.threads().to_string()],
            vec![
                "total wall".into(),
                format!("{:.1} ms", total.as_secs_f64() * 1e3),
            ],
            vec![
                "cells/sec".into(),
                format!("{:.0}", written as f64 / total.as_secs_f64().max(1e-9)),
            ],
        ],
    );
    Ok(SweepStreamSummary {
        grid_cells,
        cells: written,
        simulated,
        summary,
    })
}
