//! `mcdla obs-bench`: what does the telemetry sampler cost?
//!
//! Boots two identical in-process servers — one sampling aggressively
//! (far faster than the production 1 s default, so any cost is
//! amplified), one with the sampler disabled — warms the same cached
//! cell on both, then drives interleaved pipelined chunks against them
//! in alternation. Interleaving means drift (thermal, scheduler, page
//! cache) hits both sides equally; the reported overhead is
//! `1 − median(on/off)` over the per-chunk throughput ratios, and the
//! ISSUE-10 gate requires it under 1% on this pipelined cached path.

use std::time::Instant;

use mcdla_core::{Scenario, SystemDesign};
use mcdla_dnn::Benchmark;
use mcdla_parallel::ParallelStrategy;
use mcdla_serve::{client::Connection, ServeConfig, Server, ServerHandle};
use serde::Value;

use crate::render_table;

/// Sampler cadence under test: 40x the production 1 s default, so a
/// tick cost invisible at this pace is certainly invisible in prod.
const SAMPLE_MS: u64 = 25;
/// Pipelining depth, matching the service bench's cached path.
const PIPELINE_DEPTH: usize = 64;
/// The acceptance bar: sampler overhead must stay under this fraction.
pub const OVERHEAD_GATE: f64 = 0.01;

/// Everything `obs-bench` measured.
#[derive(Debug)]
pub struct ObsBenchResult {
    /// Human-readable table.
    pub summary: String,
    /// Machine-readable document (written to `BENCH_obs.json`).
    pub json: String,
    /// `1 − median(on/off)` throughput ratio; negative means the
    /// sampled server happened to measure faster (pure noise).
    pub overhead_ratio: f64,
    /// Whether the overhead clears [`OVERHEAD_GATE`].
    pub meets_gate: bool,
}

fn boot(threads: usize, sample_ms: u64) -> (ServerHandle, String) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: threads + 1,
        cache_cap: None,
        snapshot: None,
        sample_ms: Some(sample_ms),
        ..ServeConfig::default()
    })
    .expect("bind loopback server");
    let handle = server.spawn().expect("spawn event loop");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// One interleaved chunk: `client_threads` connections each push
/// `requests_per_thread` cached `/simulate`s in depth-64 batches.
/// Returns requests per second.
fn chunk_rps(addr: &str, body: &str, client_threads: usize, requests_per_thread: usize) -> f64 {
    let batches_per_thread = requests_per_thread.div_ceil(PIPELINE_DEPTH);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..client_threads {
            scope.spawn(move || {
                let mut conn = Connection::open(addr).expect("open bench connection");
                let batch: Vec<(&str, &str, Option<&str>)> = (0..PIPELINE_DEPTH)
                    .map(|_| ("POST", "/simulate", Some(body)))
                    .collect();
                for _ in 0..batches_per_thread {
                    let responses = conn.request_pipelined(&batch).expect("pipelined simulate");
                    debug_assert!(responses.iter().all(|r| r.is_ok()));
                }
            });
        }
    });
    let total = client_threads * batches_per_thread * PIPELINE_DEPTH;
    total as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Runs the sampler-overhead A/B.
///
/// # Panics
///
/// Panics when a server cannot bind or a request fails — a bench
/// environment problem, not a measurement.
pub fn obs_bench(
    client_threads: usize,
    requests_per_thread: usize,
    chunks: usize,
) -> ObsBenchResult {
    let client_threads = client_threads.max(1);
    let requests_per_thread = requests_per_thread.max(PIPELINE_DEPTH);
    let chunks = chunks.max(3);

    let (on_handle, on_addr) = boot(client_threads, SAMPLE_MS);
    let (off_handle, off_addr) = boot(client_threads, 0);

    let cell = Scenario::new(
        SystemDesign::DcDla,
        Benchmark::AlexNet,
        ParallelStrategy::DataParallel,
    );
    let body = serde::json::to_string(&cell);

    // Warm the cell on both servers, plus one throwaway chunk each so
    // the allocator and page cache settle before anything is timed.
    for addr in [&on_addr, &off_addr] {
        let mut probe = Connection::open(addr).expect("open warm connection");
        let warm = probe
            .request("POST", "/simulate", Some(&body))
            .expect("warm simulate");
        assert!(warm.is_ok(), "warm simulate failed: {}", warm.body);
        chunk_rps(addr, &body, client_threads, requests_per_thread);
    }

    let mut on_rps = Vec::with_capacity(chunks);
    let mut off_rps = Vec::with_capacity(chunks);
    let mut ratios = Vec::with_capacity(chunks);
    for i in 0..chunks {
        // Alternate which side goes first so ordering bias cancels too.
        let (first, second) = if i % 2 == 0 {
            (&off_addr, &on_addr)
        } else {
            (&on_addr, &off_addr)
        };
        let first_rps = chunk_rps(first, &body, client_threads, requests_per_thread);
        let second_rps = chunk_rps(second, &body, client_threads, requests_per_thread);
        let (off, on) = if i % 2 == 0 {
            (first_rps, second_rps)
        } else {
            (second_rps, first_rps)
        };
        off_rps.push(off);
        on_rps.push(on);
        ratios.push(on / off.max(1e-9));
    }

    // The sampled server must actually have been sampling: at depth-64
    // pipelining a chunk is fast, but the warm-up chunk plus `chunks`
    // timed ones span enough 25 ms ticks to populate the ring.
    let mut probe = Connection::open(&on_addr).expect("open history probe");
    let history = probe
        .request("GET", "/metrics/history?series=req_per_s", None)
        .expect("fetch history");
    assert!(history.is_ok(), "history fetch failed: {}", history.body);
    let samples = serde::json::parse(&history.body)
        .ok()
        .and_then(|v| match v {
            Value::Map(entries) => entries
                .into_iter()
                .find(|(k, _)| k == "samples")
                .map(|(_, v)| v),
            _ => None,
        })
        .and_then(|v| match v {
            Value::U64(n) => Some(n),
            _ => None,
        })
        .unwrap_or(0);
    assert!(samples > 0, "sampled server recorded no history samples");

    drop(on_handle);
    drop(off_handle);

    let median_ratio = median(&ratios);
    let overhead_ratio = 1.0 - median_ratio;
    let meets_gate = overhead_ratio < OVERHEAD_GATE;

    let rows: Vec<Vec<String>> = (0..chunks)
        .map(|i| {
            vec![
                format!("chunk {i}"),
                format!("{:.0}", off_rps[i]),
                format!("{:.0}", on_rps[i]),
                format!("{:.4}", ratios[i]),
            ]
        })
        .chain(std::iter::once(vec![
            "median".into(),
            String::new(),
            String::new(),
            format!("{median_ratio:.4}"),
        ]))
        .collect();
    let mut summary = render_table(
        &format!("Sampler overhead (pipelined cached /simulate, sampler every {SAMPLE_MS} ms)"),
        &["chunk", "off req/s", "on req/s", "on/off"],
        &rows,
    );
    summary.push_str(&format!(
        "\noverhead {:+.2}%  gate < {:.0}%  [{}]  ({} history samples recorded)\n",
        overhead_ratio * 100.0,
        OVERHEAD_GATE * 100.0,
        if meets_gate { "ok" } else { "FAIL" },
        samples,
    ));

    let json = serde::json::to_string_pretty(&Value::Map(vec![
        ("generated_by".into(), Value::Str("mcdla obs-bench".into())),
        ("sample_ms".into(), Value::U64(SAMPLE_MS)),
        ("pipeline_depth".into(), Value::U64(PIPELINE_DEPTH as u64)),
        ("client_threads".into(), Value::U64(client_threads as u64)),
        (
            "requests_per_thread".into(),
            Value::U64(requests_per_thread as u64),
        ),
        ("chunks".into(), Value::U64(chunks as u64)),
        (
            "off_req_per_sec".into(),
            Value::Seq(off_rps.iter().map(|&v| Value::F64(v)).collect()),
        ),
        (
            "on_req_per_sec".into(),
            Value::Seq(on_rps.iter().map(|&v| Value::F64(v)).collect()),
        ),
        (
            "ratios".into(),
            Value::Seq(ratios.iter().map(|&v| Value::F64(v)).collect()),
        ),
        ("median_ratio".into(), Value::F64(median_ratio)),
        ("overhead_ratio".into(), Value::F64(overhead_ratio)),
        ("gate".into(), Value::F64(OVERHEAD_GATE)),
        ("meets_gate".into(), Value::Bool(meets_gate)),
        ("history_samples".into(), Value::U64(samples)),
    ]));

    ObsBenchResult {
        summary,
        json,
        overhead_ratio,
        meets_gate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_handle_odd_even_and_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn obs_bench_measures_and_reports() {
        // Small sizes: this is a smoke test of the harness, not the
        // CI-grade measurement (which runs via `mcdla obs-bench`).
        let result = obs_bench(2, 256, 3);
        assert!(result.summary.contains("Sampler overhead"));
        assert!(result.json.contains("\"overhead_ratio\""));
        assert!(result.json.contains("\"history_samples\""));
        // No gate assertion here: tiny chunks are noisy by design.
        assert!(result.overhead_ratio.is_finite());
    }
}
