//! Runs the complete evaluation matrix and prints the paper-vs-measured
//! summary recorded in EXPERIMENTS.md.

use mcdla_bench::{fmt_pct, fmt_x, print_table};
use mcdla_core::{experiment, SystemDesign};
use mcdla_dnn::Benchmark;
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::stats::harmonic_mean;

fn main() {
    println!("mcdla paper report — Kwon & Rhu, MICRO-51 2018\n");

    // Fig. 13 headline numbers.
    let dp = experiment::speedup_vs_dc(SystemDesign::McDlaBwAware, ParallelStrategy::DataParallel);
    let mp = experiment::speedup_vs_dc(SystemDesign::McDlaBwAware, ParallelStrategy::ModelParallel);
    let mut rows = vec![
        vec![
            "MC-DLA(B) speedup, data-parallel".into(),
            fmt_x(dp.harmonic_mean),
            "3.5x".into(),
        ],
        vec![
            "MC-DLA(B) speedup, model-parallel".into(),
            fmt_x(mp.harmonic_mean),
            "2.1x".into(),
        ],
        vec![
            "MC-DLA(B) speedup, overall".into(),
            fmt_x(experiment::headline_speedup()),
            "2.8x".into(),
        ],
    ];

    // Oracle fraction (§V-B: 84%-99%, average 95%).
    let mut fr = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let mc = experiment::simulate(SystemDesign::McDlaBwAware, bm, strategy);
            let o = experiment::simulate(SystemDesign::DcDlaOracle, bm, strategy);
            fr.push(o.iteration_time.as_secs_f64() / mc.iteration_time.as_secs_f64());
        }
    }
    let lo = fr.iter().cloned().fold(f64::MAX, f64::min);
    let hi = fr.iter().cloned().fold(0.0f64, f64::max);
    rows.push(vec![
        "MC-DLA(B) fraction of oracle".into(),
        format!(
            "{}-{} (HarMean {})",
            fmt_pct(lo),
            fmt_pct(hi.min(1.0)),
            fmt_pct(harmonic_mean(&fr).unwrap_or(0.0))
        ),
        "84%-99% (avg 95%)".into(),
    ]);

    // MC-DLA(S) loss vs MC-DLA(B) (§V-B: avg 14%, max 24%).
    let mut losses = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let s = experiment::simulate(SystemDesign::McDlaStar, bm, strategy);
            let b = experiment::simulate(SystemDesign::McDlaBwAware, bm, strategy);
            losses.push(1.0 - b.iteration_time.as_secs_f64() / s.iteration_time.as_secs_f64());
        }
    }
    rows.push(vec![
        "MC-DLA(S) performance loss vs (B)".into(),
        format!(
            "avg {} max {}",
            fmt_pct(losses.iter().sum::<f64>() / losses.len() as f64),
            fmt_pct(losses.iter().cloned().fold(0.0f64, f64::max))
        ),
        "avg 14%, max 24%".into(),
    ]);

    // MC-DLA(L) fraction of MC-DLA(B) (§V-B: 96%).
    let mut lb = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let l = experiment::simulate(SystemDesign::McDlaLocal, bm, strategy);
            let b = experiment::simulate(SystemDesign::McDlaBwAware, bm, strategy);
            lb.push(b.iteration_time.as_secs_f64() / l.iteration_time.as_secs_f64());
        }
    }
    rows.push(vec![
        "MC-DLA(L) fraction of MC-DLA(B)".into(),
        fmt_pct(harmonic_mean(&lb).unwrap_or(0.0)),
        "96%".into(),
    ]);

    // HC-DLA (§V-B: +32% DP, +38% MP).
    let hc_dp = experiment::speedup_vs_dc(SystemDesign::HcDla, ParallelStrategy::DataParallel);
    let hc_mp = experiment::speedup_vs_dc(SystemDesign::HcDla, ParallelStrategy::ModelParallel);
    rows.push(vec![
        "HC-DLA speedup (DP / MP)".into(),
        format!("{} / {}", fmt_x(hc_dp.harmonic_mean), fmt_x(hc_mp.harmonic_mean)),
        "1.32x / 1.38x".into(),
    ]);

    // Sensitivity studies.
    let s = experiment::sensitivity();
    rows.push(vec![
        "DC-DLA gain from PCIe gen4".into(),
        fmt_pct(s.dc_gen4_improvement),
        "38%".into(),
    ]);
    rows.push(vec!["gap with PCIe gen4".into(), fmt_x(s.gen4_gap), "2.1x".into()]);
    rows.push(vec![
        "gap with TPUv2-class device".into(),
        fmt_x(s.faster_device_gap),
        "3.2x".into(),
    ]);
    rows.push(vec!["gap with DGX-2-class node".into(), fmt_x(s.dgx2_gap), "2.9x".into()]);
    rows.push(vec![
        "gap with cDMA compression (CNNs)".into(),
        fmt_x(s.cdma_cnn_gap),
        "2.3x".into(),
    ]);

    // Fig. 14 aggregate.
    let cells = experiment::fig14(&[128, 256, 1024, 2048]);
    let all: Vec<f64> = cells
        .iter()
        .filter(|c| c.benchmark != "HarMean")
        .map(|c| c.speedup)
        .collect();
    rows.push(vec![
        "batch-sweep speedup (Fig. 14)".into(),
        fmt_x(harmonic_mean(&all).unwrap_or(0.0)),
        "2.17x".into(),
    ]);

    // Scalability (§V-D).
    let sc = experiment::scalability(&Benchmark::CNNS);
    for devices in [4usize, 8] {
        let on: Vec<f64> = sc
            .iter()
            .filter(|r| r.devices == devices)
            .map(|r| r.dc_virt_on)
            .collect();
        rows.push(vec![
            format!("DC-DLA scaling at {devices} devices (virt on)"),
            fmt_x(harmonic_mean(&on).unwrap_or(0.0)),
            if devices == 4 { "1.3x" } else { "2.7x" }.into(),
        ]);
    }

    print_table("paper vs measured", &["metric", "measured", "paper"], &rows);
}
