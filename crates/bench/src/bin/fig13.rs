//! Regenerates Figure 13: performance of all six designs, normalized per
//! benchmark, for data-parallel (a) and model-parallel (b) training, plus
//! the §V-B headline speedups.

use mcdla_bench::{fmt_x, print_table};
use mcdla_core::{experiment, SystemDesign};
use mcdla_parallel::ParallelStrategy;

fn main() {
    for strategy in ParallelStrategy::ALL {
        let data = experiment::fig13(strategy);
        let headers: Vec<String> = std::iter::once("network".to_owned())
            .chain(SystemDesign::ALL.iter().map(|d| d.name().to_owned()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|row| {
                std::iter::once(row.benchmark.clone())
                    .chain(row.performance.iter().map(|(_, p)| format!("{p:.3}")))
                    .collect()
            })
            .collect();
        print_table(&format!("Figure 13 ({strategy})"), &header_refs, &rows);
        for design in [
            SystemDesign::HcDla,
            SystemDesign::McDlaStar,
            SystemDesign::McDlaLocal,
            SystemDesign::McDlaBwAware,
        ] {
            let s = experiment::speedup_vs_dc(design, strategy);
            println!(
                "{} vs DC-DLA ({strategy}): HarMean {}",
                design.name(),
                fmt_x(s.harmonic_mean)
            );
        }
    }
    println!(
        "MC-DLA(B) overall harmonic-mean speedup: {} (paper: 2.8x)",
        fmt_x(experiment::headline_speedup())
    );
}
