//! Regenerates the §V-B sensitivity studies: PCIe gen4, a TPUv2-class
//! device-node, a DGX-2-class node, and cDMA-style activation compression.

use mcdla_bench::{fmt_pct, fmt_x, print_table};
use mcdla_core::experiment;

fn main() {
    let s = experiment::sensitivity();
    print_table(
        "§V-B sensitivity (MC-DLA(B) over DC-DLA, harmonic means)",
        &["study", "measured", "paper"],
        &[
            vec!["baseline".into(), fmt_x(s.baseline), "2.8x".into()],
            vec![
                "DC-DLA improvement from PCIe gen4".into(),
                fmt_pct(s.dc_gen4_improvement),
                "38%".into(),
            ],
            vec!["gap with PCIe gen4".into(), fmt_x(s.gen4_gap), "2.1x".into()],
            vec![
                "gap with TPUv2-class device".into(),
                fmt_x(s.faster_device_gap),
                "3.2x".into(),
            ],
            vec!["gap with DGX-2-class node".into(), fmt_x(s.dgx2_gap), "2.9x".into()],
            vec![
                "gap with cDMA compression (CNNs)".into(),
                fmt_x(s.cdma_cnn_gap),
                "2.3x".into(),
            ],
        ],
    );
}
