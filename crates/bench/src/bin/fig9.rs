//! Regenerates Figure 9: collective latency vs number of nodes in the ring
//! (normalized to a 2-node ring), 50 GB/s bi-directional links, 4 KB
//! messages, 8 MB synchronization size.

use mcdla_bench::print_table;
use mcdla_interconnect::{CollectiveKind, CollectiveModel, RingShape};
use mcdla_sim::Bytes;

fn main() {
    let model = CollectiveModel::paper_fig9();
    let sync = Bytes::from_mib(8);
    let base: Vec<f64> = CollectiveKind::ALL
        .iter()
        .map(|k| {
            model
                .latency(*k, sync, RingShape::device_ring(2))
                .as_secs_f64()
        })
        .collect();
    let mut rows = Vec::new();
    for nodes in (2..=36).step_by(2) {
        let mut row = vec![nodes.to_string()];
        for (k, b) in CollectiveKind::ALL.iter().zip(&base) {
            let t = model
                .latency(*k, sync, RingShape::device_ring(nodes))
                .as_secs_f64();
            row.push(format!("{:.3}", t / b));
        }
        rows.push(row);
    }
    print_table(
        "Figure 9 (latency normalized to a 2-node ring)",
        &["nodes", "all-gather", "all-reduce", "broadcast"],
        &rows,
    );
    let t8 = model
        .latency(CollectiveKind::AllReduce, sync, RingShape::device_ring(8))
        .as_secs_f64();
    let t16 = model
        .latency(CollectiveKind::AllReduce, sync, RingShape::device_ring(16))
        .as_secs_f64();
    println!(
        "DC-DLA (8 nodes) -> MC-DLA (16 nodes) all-reduce overhead at 8 MB: {:.1}% (paper: ~7%)",
        (t16 / t8 - 1.0) * 100.0
    );
}
