//! Regenerates Table II: device-/memory-node configuration parameters.

use mcdla_accel::DeviceConfig;
use mcdla_bench::print_table;
use mcdla_memnode::MemoryNodeConfig;

fn main() {
    let d = DeviceConfig::paper_baseline();
    print_table(
        "Table II (device-node)",
        &["parameter", "value"],
        &[
            vec!["Number of PEs".into(), d.pe_count.to_string()],
            vec!["MACs per PE".into(), d.macs_per_pe.to_string()],
            vec![
                "PE operating frequency".into(),
                format!("{} GHz", d.frequency_ghz),
            ],
            vec![
                "Local SRAM buffer size per PE".into(),
                format!("{} KB", d.sram_per_pe_bytes / 1024),
            ],
            vec![
                "Memory bandwidth".into(),
                format!("{} GB/sec", d.memory_bandwidth_gbs),
            ],
            vec![
                "Memory access latency".into(),
                format!("{} cycles", d.memory_latency_cycles),
            ],
            vec![
                "Number of high-bandwidth links (N)".into(),
                d.link_count.to_string(),
            ],
            vec![
                "Communication bandwidth per link (B)".into(),
                format!("{} GB/sec", d.link_bandwidth_gbs),
            ],
        ],
    );
    let m = MemoryNodeConfig::paper_baseline();
    print_table(
        "Table II (memory-node)",
        &["parameter", "value"],
        &[
            vec![
                "Memory bandwidth".into(),
                format!("{} GB/sec", m.memory_bandwidth_gbs),
            ],
            vec![
                "Memory access latency".into(),
                format!("{} ns (100 cycles at 1 GHz)", m.memory_latency_ns),
            ],
            vec![
                "Number of high-bandwidth links (N)".into(),
                m.link_count.to_string(),
            ],
            vec![
                "Communication bandwidth per link (B)".into(),
                format!("{} GB/sec", m.link_bandwidth_gbs),
            ],
            vec![
                "DIMMs / capacity".into(),
                format!("{} x {} = {:.2} TB", m.dimm_count, m.dimm, m.capacity_bytes() as f64 / 1e12),
            ],
        ],
    );
}
