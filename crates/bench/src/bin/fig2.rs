//! Regenerates Figure 2: CNN execution time across five accelerator
//! generations (normalized to Kepler, left axis) and the memory
//! virtualization overhead over a fixed PCIe gen3 host interface (right
//! axis).

use mcdla_bench::{fmt_pct, print_table};
use mcdla_core::experiment;

fn main() {
    let cells = experiment::fig2();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.benchmark.clone(),
                c.generation.to_string(),
                format!("{:.3}", c.normalized_time),
                fmt_pct(c.overhead),
            ]
        })
        .collect();
    print_table(
        "Figure 2 (single device, PCIe gen3 host interface)",
        &["network", "device", "time (norm. to Kepler)", "virt overhead"],
        &rows,
    );
    // The headline claims of §I.
    for bm in ["AlexNet", "GoogLeNet", "VGG-E", "ResNet"] {
        let series: Vec<&experiment::Fig2Cell> =
            cells.iter().filter(|c| c.benchmark == bm).collect();
        let last = series.last().expect("five generations");
        println!(
            "{bm}: Kepler->TPUv2 time reduction {:.1}x, overhead {} -> {}",
            1.0 / last.normalized_time,
            fmt_pct(series[0].overhead),
            fmt_pct(last.overhead),
        );
    }
}
