//! Regenerates Figure 14: MC-DLA(B) speedup over DC-DLA as a function of
//! the input batch size (128 / 256 / 1024 / 2048, plus the paper's default
//! 512), with per-strategy harmonic means.

use mcdla_bench::{fmt_x, print_table};
use mcdla_core::experiment;
use mcdla_sim::stats::harmonic_mean;

fn main() {
    let batches = [128u64, 256, 512, 1024, 2048];
    let cells = experiment::fig14(&batches);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.batch.to_string(),
                c.strategy.to_string(),
                c.benchmark.clone(),
                fmt_x(c.speedup),
            ]
        })
        .collect();
    print_table(
        "Figure 14 (MC-DLA(B) speedup over DC-DLA vs batch size)",
        &["batch", "strategy", "network", "speedup"],
        &rows,
    );
    let all: Vec<f64> = cells
        .iter()
        .filter(|c| c.benchmark != "HarMean")
        .map(|c| c.speedup)
        .collect();
    println!(
        "harmonic mean across all batch sizes: {} (paper: 2.17x)",
        fmt_x(harmonic_mean(&all).unwrap_or(0.0))
    );
}
