//! Dynamic energy-per-iteration comparison (§V-C extended): integrates the
//! simulated timelines against a busy/idle device power model instead of
//! static TDPs.

use mcdla_bench::print_table;
use mcdla_core::{experiment, EnergyReport, PowerModel, SystemDesign};
use mcdla_dnn::Benchmark;
use mcdla_memnode::{DimmKind, MemoryNodeConfig};
use mcdla_parallel::ParallelStrategy;

fn main() {
    let node = MemoryNodeConfig::with_dimm(DimmKind::Lrdimm128);
    let mut rows = Vec::new();
    for bm in Benchmark::ALL {
        let dc = experiment::simulate(SystemDesign::DcDla, bm, ParallelStrategy::DataParallel);
        let mc = experiment::simulate(
            SystemDesign::McDlaBwAware,
            bm,
            ParallelStrategy::DataParallel,
        );
        let e_dc = EnergyReport::from_iteration(&dc, &PowerModel::dgx_baseline());
        let e_mc = EnergyReport::from_iteration(&mc, &PowerModel::mc_dla(&node, 8));
        rows.push(vec![
            bm.name().to_owned(),
            format!("{:.1} J", e_dc.total_joules()),
            format!("{:.1} J", e_mc.total_joules()),
            format!("{:.2}x", e_mc.perf_per_watt_vs(&e_dc)),
        ]);
    }
    print_table(
        "energy per iteration (data-parallel, 128 GB LRDIMM memory-nodes)",
        &["network", "DC-DLA", "MC-DLA(B)", "energy gain"],
        &rows,
    );
    println!("static §V-C estimate for comparison: 2.1x-2.6x perf/W");
}
