//! §VI / Fig. 15: MC-DLA on an NVSwitch-class scale-out plane, weak-scaled
//! from 8 to 64 devices (the paper's stated future-work direction,
//! implemented).

use mcdla_bench::{fmt_pct, print_table};
use mcdla_core::experiment;
use mcdla_dnn::Benchmark;

fn main() {
    for bm in [Benchmark::ResNet, Benchmark::RnnGru] {
        let rows: Vec<Vec<String>> =
            experiment::scale_out(bm, &[8, 16, 32, 64])
                .iter()
                .map(|r| {
                    vec![
                        r.devices.to_string(),
                        format!("{:.2} ms", r.iteration_secs * 1e3),
                        format!("{:.2}x", r.throughput_vs_8),
                        fmt_pct(r.sync_fraction),
                    ]
                })
                .collect();
        print_table(
            &format!("§VI scale-out, {bm} (weak scaling, 64 samples/device)"),
            &["devices", "iteration", "throughput vs 8", "sync fraction"],
            &rows,
        );
    }
}
