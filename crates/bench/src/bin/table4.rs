//! Regenerates Table IV (memory-node power) and the §V-C power-efficiency
//! numbers, using the measured MC-DLA(B) speedup.

use mcdla_bench::{fmt_pct, fmt_x, print_table};
use mcdla_core::experiment;
use mcdla_memnode::{DimmKind, MemoryNodeConfig, SystemPower, DGX_SYSTEM_TDP_WATTS};

fn main() {
    let rows: Vec<Vec<String>> = DimmKind::ALL
        .iter()
        .map(|d| {
            let node = MemoryNodeConfig::with_dimm(*d);
            vec![
                d.name().to_owned(),
                format!("{:.1}", d.tdp_watts()),
                format!("{:.0}", node.tdp_watts()),
                format!("{:.1}", node.gb_per_watt()),
            ]
        })
        .collect();
    print_table(
        "Table IV (DDR4-2400 memory-node power)",
        &["DDR4 module", "DIMM TDP (W)", "node TDP (W)", "GB/W"],
        &rows,
    );

    let speedup = experiment::headline_speedup();
    println!("measured MC-DLA(B) harmonic-mean speedup: {}", fmt_x(speedup));
    println!("DGX-class baseline system TDP: {DGX_SYSTEM_TDP_WATTS} W");
    let mut rows = Vec::new();
    for dimm in [DimmKind::Rdimm8, DimmKind::Lrdimm128] {
        let p = SystemPower::mc_dla(&MemoryNodeConfig::with_dimm(dimm), 8);
        rows.push(vec![
            dimm.name().to_owned(),
            format!("{:.0} W", p.memnode_watts),
            fmt_pct(p.overhead_fraction()),
            format!("{:.2} TB", p.added_capacity_bytes as f64 / 1e12),
            fmt_x(p.perf_per_watt_gain(speedup)),
        ]);
    }
    print_table(
        "§V-C system power (8 memory-nodes)",
        &[
            "memory-node DIMM",
            "added power",
            "overhead",
            "added capacity",
            "perf/W vs DC-DLA",
        ],
        &rows,
    );
}
