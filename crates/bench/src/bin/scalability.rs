//! Regenerates the §V-D scalability study: data-parallel CNN training on
//! 2/4/8 devices with and without memory virtualization.

use mcdla_bench::{fmt_x, print_table};
use mcdla_core::experiment;
use mcdla_dnn::Benchmark;
use mcdla_sim::stats::harmonic_mean;

fn main() {
    let rows_data = experiment::scalability(&Benchmark::CNNS);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.devices.to_string(),
                fmt_x(r.dc_virt_on),
                fmt_x(r.dc_virt_off),
                fmt_x(r.mc),
            ]
        })
        .collect();
    print_table(
        "§V-D scalability (speedup over the same design's 1-device run)",
        &[
            "network",
            "devices",
            "DC-DLA (virt on)",
            "DC-DLA (virt off)",
            "MC-DLA(B)",
        ],
        &rows,
    );
    for devices in [4usize, 8] {
        let on: Vec<f64> = rows_data
            .iter()
            .filter(|r| r.devices == devices)
            .map(|r| r.dc_virt_on)
            .collect();
        let off: Vec<f64> = rows_data
            .iter()
            .filter(|r| r.devices == devices)
            .map(|r| r.dc_virt_off)
            .collect();
        let mc: Vec<f64> = rows_data
            .iter()
            .filter(|r| r.devices == devices)
            .map(|r| r.mc)
            .collect();
        println!(
            "{devices} devices: DC virt-on {} (paper: {}), virt-off {} (paper: ~{devices}x), MC {}",
            fmt_x(harmonic_mean(&on).unwrap_or(0.0)),
            if devices == 4 { "1.3x" } else { "2.7x" },
            fmt_x(harmonic_mean(&off).unwrap_or(0.0)),
            fmt_x(harmonic_mean(&mc).unwrap_or(0.0)),
        );
    }
}
