//! Ablation studies over the design choices DESIGN.md calls out
//! (recompute policy, gradient bucketing, prefetch lookahead, boundary
//! pipelining, page placement).

use mcdla_bench::print_table;
use mcdla_core::{ablation, SystemDesign};

fn main() {
    for design in [SystemDesign::DcDla, SystemDesign::McDlaBwAware] {
        let rows: Vec<Vec<String>> = ablation::ablations(design)
            .iter()
            .flat_map(|a| {
                let spread = a.spread();
                a.variants
                    .iter()
                    .map(|(label, secs)| {
                        vec![
                            a.name.clone(),
                            a.benchmark.clone(),
                            label.clone(),
                            format!("{:.3} ms", secs * 1e3),
                            format!("{spread:.2}x"),
                        ]
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        print_table(
            &format!("ablations on {design}"),
            &["mechanism", "network", "variant", "iteration", "spread"],
            &rows,
        );
    }
}
