//! Regenerates Table III: the evaluated benchmark suite.

use mcdla_bench::print_table;
use mcdla_dnn::{Benchmark, DataType};

fn main() {
    let rows: Vec<Vec<String>> = Benchmark::ALL
        .iter()
        .map(|bm| {
            let net = bm.build();
            let depth = match bm.timesteps() {
                Some(t) => format!("{t} timesteps"),
                None => format!("{} layers", net.weighted_depth()),
            };
            let fp = net.footprint(512, DataType::F32);
            vec![
                bm.name().to_owned(),
                net.application().to_string(),
                depth,
                format!("{:.1}M", net.total_params() as f64 / 1e6),
                format!(
                    "{:.1} GB",
                    fp.total_unvirtualized() as f64 / 1e9
                ),
            ]
        })
        .collect();
    print_table(
        "Table III (benchmarks; footprint at batch 512, unvirtualized)",
        &["network", "application", "depth", "params", "train footprint"],
        &rows,
    );
}
