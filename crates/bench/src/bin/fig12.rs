//! Regenerates Figure 12: CPU memory bandwidth usage under the different
//! DLA designs (average per strategy and maximum).

use mcdla_bench::{fmt_gbs, print_table};
use mcdla_core::experiment;
use mcdla_sim::stats::harmonic_mean;

fn main() {
    let rows_data = experiment::fig12();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.design.to_string(),
                r.benchmark.clone(),
                fmt_gbs(r.avg_data_parallel_gbs),
                fmt_gbs(r.avg_model_parallel_gbs),
                fmt_gbs(r.max_gbs),
            ]
        })
        .collect();
    print_table(
        "Figure 12 (per-socket CPU memory bandwidth usage)",
        &["design", "network", "avg (data-par)", "avg (model-par)", "max"],
        &rows,
    );
    // §V-A: HC-DLA consumes an average 92% of host memory bandwidth for
    // certain workloads.
    let hc_fracs: Vec<f64> = rows_data
        .iter()
        .filter(|r| r.design.name() == "HC-DLA")
        .map(|r| r.avg_data_parallel_gbs.max(r.avg_model_parallel_gbs) / 300.0)
        .collect();
    let worst = hc_fracs.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "HC-DLA worst-case average socket draw: {:.0}% of the provisioned 300 GB/s (paper: 92%)",
        worst * 100.0
    );
    let _ = harmonic_mean(&hc_fracs);
}
