//! Regenerates the Fig. 5 / Fig. 7 interconnect structures: ring hop
//! counts, participants, link budgets, and per-device virtualization
//! bandwidth of every layout.

use mcdla_bench::{fmt_gbs, print_table};
use mcdla_interconnect::{check_link_budget, Ring, SystemInterconnect};

fn main() {
    let layouts = [
        SystemInterconnect::dgx_cube_mesh(25.0),
        SystemInterconnect::hc_dla(25.0),
        SystemInterconnect::mc_dla_star_a(25.0),
        SystemInterconnect::mc_dla_star_b(25.0),
        SystemInterconnect::mc_dla_ring(25.0),
    ];
    let mut rows = Vec::new();
    for sys in &layouts {
        let shapes = sys.ring_shapes();
        let hops: Vec<String> = shapes.iter().map(|s| s.hops.to_string()).collect();
        let rings: Vec<Ring> = sys.rings().iter().map(|r| r.ring.clone()).collect();
        let budget = match check_link_budget(sys.topology(), &rings, 6) {
            Ok(used) => format!("ok (max {} of 6)", used.iter().max().unwrap_or(&0)),
            Err((node, used)) => format!("exceeded at {node} ({used})"),
        };
        rows.push(vec![
            sys.name().to_owned(),
            format!("{} dev + {} mem", sys.devices().len(), sys.memory_nodes().len()),
            hops.join("/"),
            budget,
            fmt_gbs(sys.virt_bandwidth_gbs(1)),
            fmt_gbs(sys.virt_bandwidth_gbs(2)),
        ]);
    }
    print_table(
        "Figs. 5 & 7 (interconnect layouts, B = 25 GB/s per link)",
        &[
            "layout",
            "nodes",
            "ring hops",
            "link budget",
            "virt BW (1 target)",
            "virt BW (2 targets)",
        ],
        &rows,
    );
    println!("note: the star layouts are modeled at hop-count fidelity; their");
    println!("ring link budget is carried by the long rings of Fig. 7(a)/(b).");
}
