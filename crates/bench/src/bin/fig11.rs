//! Regenerates Figure 11: breakdown of computation / synchronization /
//! memory-virtualization latencies for data-parallel (a) and
//! model-parallel (b) training, normalized to the tallest stack per
//! benchmark.

use mcdla_bench::print_table;
use mcdla_core::experiment;
use mcdla_parallel::ParallelStrategy;

fn main() {
    for strategy in ParallelStrategy::ALL {
        let bars = experiment::fig11(strategy);
        let rows: Vec<Vec<String>> = bars
            .iter()
            .map(|b| {
                vec![
                    b.benchmark.clone(),
                    b.design.to_string(),
                    format!("{:.3}", b.stack[0]),
                    format!("{:.3}", b.stack[1]),
                    format!("{:.3}", b.stack[2]),
                    format!("{:.3}", b.stack.iter().sum::<f64>()),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 11 ({strategy})"),
            &[
                "network",
                "design",
                "computation",
                "synchronization",
                "memory virt",
                "stack total",
            ],
            &rows,
        );
    }
}
