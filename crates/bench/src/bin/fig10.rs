//! Regenerates Figure 10: the LOCAL vs BW_AWARE page allocation policies
//! and their latency equations.

use mcdla_bench::{fmt_gbs, print_table};
use mcdla_memnode::{MemoryNodeConfig, PagePolicy, RemoteAllocator, Side};

fn main() {
    let node = MemoryNodeConfig::paper_baseline();
    let side_bw = node.group_bandwidth_gbs(); // N*B/2 = 75 GB/s
    let d_bytes: u64 = 1 << 30; // a 1 GiB cudaMallocRemote request

    let mut rows = Vec::new();
    for policy in [PagePolicy::Local, PagePolicy::BwAware] {
        let mut alloc =
            RemoteAllocator::new(node.capacity_bytes() / 2, node.capacity_bytes() / 2, 2 << 20);
        let a = alloc.malloc_remote(d_bytes, policy).expect("fits");
        let bw = RemoteAllocator::effective_bandwidth_gbs(policy, side_bw);
        rows.push(vec![
            policy.to_string(),
            format!("{:.0} MiB", a.bytes_on(Side::Left) as f64 / (1 << 20) as f64),
            format!("{:.0} MiB", a.bytes_on(Side::Right) as f64 / (1 << 20) as f64),
            fmt_gbs(bw),
            format!("{:.2} ms", d_bytes as f64 / (bw * 1e9) * 1e3),
        ]);
    }
    print_table(
        "Figure 10 (1 GiB allocation, N=6 links, B=25 GB/s)",
        &["policy", "left node", "right node", "effective BW", "latency"],
        &rows,
    );
    println!("Latency_LOCAL    = D / (N*B/2)  -> {:.2} ms", d_bytes as f64 / (side_bw * 1e9) * 1e3);
    println!(
        "Latency_BW_AWARE = D / (N*B)    -> {:.2} ms",
        d_bytes as f64 / (2.0 * side_bw * 1e9) * 1e3
    );
}
