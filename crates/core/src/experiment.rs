//! The paper's evaluation experiments (§V), packaged as reusable runners.
//!
//! Each function reproduces the data behind one table or figure; the
//! `mcdla-bench` harness formats them into the paper's rows/series.
//!
//! Every runner is phrased as a [`Scenario`] grid handed to the shared
//! [`global_runner`](crate::scenario::global_runner): cells execute across
//! worker threads (`MCDLA_THREADS` controls the count) and land in a
//! process-wide memo cache, so figures that share cells — Fig. 11 and
//! Fig. 13 span the same 96-cell matrix, every §V-B study reuses the
//! DC-DLA baselines — simulate each cell exactly once per process.

use mcdla_accel::DeviceGeneration;
use mcdla_dnn::Benchmark;
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::stats::harmonic_mean;
use serde::{Deserialize, Serialize};

use crate::design::{SystemConfig, SystemDesign};
use crate::engine::IterationSim;
use crate::report::IterationReport;
use crate::scenario::{global_runner, DeviceModel, Scenario, ScenarioGrid};

/// Runs one (design, benchmark, strategy) cell with paper-default
/// configuration, memoized through the shared scenario runner.
pub fn simulate(
    design: SystemDesign,
    benchmark: Benchmark,
    strategy: ParallelStrategy,
) -> IterationReport {
    global_runner().run(Scenario::new(design, benchmark, strategy))
}

/// Runs one cell with an explicit configuration (uncached: arbitrary
/// configurations have no scenario key).
pub fn simulate_with(
    cfg: SystemConfig,
    benchmark: Benchmark,
    strategy: ParallelStrategy,
) -> IterationReport {
    let net = benchmark.build();
    IterationSim::new(cfg, &net, strategy).run()
}

/// One benchmark's row of Figure 13: performance per design, normalized to
/// the fastest design (the oracle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Row {
    /// Benchmark name.
    pub benchmark: String,
    /// `(design, normalized performance)` in [`SystemDesign::ALL`] order.
    pub performance: Vec<(SystemDesign, f64)>,
}

/// Figure 13 data for one parallelization strategy.
pub fn fig13(strategy: ParallelStrategy) -> Vec<Fig13Row> {
    let grid = ScenarioGrid::paper_default().strategies(&[strategy]);
    let reports = global_runner().run_grid(&grid.scenarios());
    // Benchmark-major expansion: one chunk of SystemDesign::ALL per row.
    reports
        .chunks(SystemDesign::ALL.len())
        .zip(Benchmark::ALL)
        .map(|(reports, bm)| {
            let best = reports
                .iter()
                .map(IterationReport::performance)
                .fold(f64::MIN, f64::max);
            Fig13Row {
                benchmark: bm.name().to_owned(),
                performance: reports
                    .iter()
                    .map(|r| (r.design, r.performance() / best))
                    .collect(),
            }
        })
        .collect()
}

/// Speedups of `design` over DC-DLA across the suite, plus the harmonic
/// mean the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupSummary {
    /// Design compared against DC-DLA.
    pub design: SystemDesign,
    /// Strategy evaluated.
    pub strategy: ParallelStrategy,
    /// `(benchmark, speedup)` per workload.
    pub per_benchmark: Vec<(String, f64)>,
    /// Harmonic mean over the suite (§V: all averages are harmonic means).
    pub harmonic_mean: f64,
}

/// Speedup of a design over DC-DLA for one strategy, over the full suite.
pub fn speedup_vs_dc(design: SystemDesign, strategy: ParallelStrategy) -> SpeedupSummary {
    speedup_vs_dc_scenarios(design, strategy, &Benchmark::ALL, |s| s)
}

/// Like [`speedup_vs_dc`] with a benchmark subset and a scenario
/// transformation applied to **both** the design and the DC-DLA baseline
/// — the memoized, parallel path for every standard study.
pub fn speedup_vs_dc_scenarios(
    design: SystemDesign,
    strategy: ParallelStrategy,
    benchmarks: &[Benchmark],
    modify: impl Fn(Scenario) -> Scenario,
) -> SpeedupSummary {
    let mut cells = Vec::with_capacity(benchmarks.len() * 2);
    for bm in benchmarks {
        cells.push(modify(Scenario::new(SystemDesign::DcDla, *bm, strategy)));
        cells.push(modify(Scenario::new(design, *bm, strategy)));
    }
    let reports = global_runner().run_grid(&cells);
    let per_benchmark: Vec<(String, f64)> = benchmarks
        .iter()
        .zip(reports.chunks(2))
        .map(|(bm, pair)| (bm.name().to_owned(), pair[1].speedup_over(&pair[0])))
        .collect();
    let values: Vec<f64> = per_benchmark.iter().map(|(_, s)| *s).collect();
    SpeedupSummary {
        design,
        strategy,
        harmonic_mean: harmonic_mean(&values).unwrap_or(0.0),
        per_benchmark,
    }
}

/// Like [`speedup_vs_dc`] with a benchmark subset and arbitrary config
/// customization (applied to **both** the design and the DC-DLA
/// baseline). Arbitrary configurations cannot be keyed by a scenario, so
/// this path is uncached; prefer [`speedup_vs_dc_scenarios`] when the
/// change is expressible as scenario overrides.
pub fn speedup_vs_dc_with(
    design: SystemDesign,
    strategy: ParallelStrategy,
    benchmarks: &[Benchmark],
    mut config: impl FnMut(SystemDesign) -> SystemConfig,
) -> SpeedupSummary {
    let mut per_benchmark = Vec::new();
    for bm in benchmarks {
        let dc = simulate_with(config(SystemDesign::DcDla), *bm, strategy);
        let d = simulate_with(config(design), *bm, strategy);
        per_benchmark.push((bm.name().to_owned(), d.speedup_over(&dc)));
    }
    let values: Vec<f64> = per_benchmark.iter().map(|(_, s)| *s).collect();
    SpeedupSummary {
        design,
        strategy,
        harmonic_mean: harmonic_mean(&values).unwrap_or(0.0),
        per_benchmark,
    }
}

/// The paper's headline: MC-DLA(B) speedup over DC-DLA, harmonic-mean over
/// both strategies and all eight workloads (the quoted "average 2.8x").
pub fn headline_speedup() -> f64 {
    let mut all = Vec::new();
    for strategy in ParallelStrategy::ALL {
        let s = speedup_vs_dc(SystemDesign::McDlaBwAware, strategy);
        all.extend(s.per_benchmark.iter().map(|(_, v)| *v));
    }
    harmonic_mean(&all).unwrap_or(0.0)
}

/// One Fig. 11 stacked bar: the three busy-time components, normalized to
/// the tallest stack of the benchmark's group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Bar {
    /// Benchmark name.
    pub benchmark: String,
    /// Design point.
    pub design: SystemDesign,
    /// Normalized (computation, synchronization, memory virtualization).
    pub stack: [f64; 3],
}

/// Figure 11 data for one strategy: per benchmark, one stacked bar per
/// design, normalized to the tallest stack within the benchmark.
pub fn fig11(strategy: ParallelStrategy) -> Vec<Fig11Bar> {
    let grid = ScenarioGrid::paper_default().strategies(&[strategy]);
    let reports = global_runner().run_grid(&grid.scenarios());
    let mut bars = Vec::new();
    for (reports, bm) in reports.chunks(SystemDesign::ALL.len()).zip(Benchmark::ALL) {
        let tallest = reports
            .iter()
            .map(|r| r.breakdown_secs().iter().sum::<f64>())
            .fold(f64::MIN, f64::max);
        for r in reports {
            let b = r.breakdown_secs();
            bars.push(Fig11Bar {
                benchmark: bm.name().to_owned(),
                design: r.design,
                stack: [b[0] / tallest, b[1] / tallest, b[2] / tallest],
            });
        }
    }
    bars
}

/// One Fig. 12 group: CPU memory-bandwidth usage of a benchmark under one
/// design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Design point (DC-DLA, HC-DLA, MC-DLA(B)).
    pub design: SystemDesign,
    /// Benchmark name.
    pub benchmark: String,
    /// Average draw per socket, data-parallel (GB/s).
    pub avg_data_parallel_gbs: f64,
    /// Average draw per socket, model-parallel (GB/s).
    pub avg_model_parallel_gbs: f64,
    /// Peak draw per socket (GB/s), max over both strategies.
    pub max_gbs: f64,
}

/// Figure 12 data: DC-DLA, HC-DLA and MC-DLA CPU memory-bandwidth usage.
pub fn fig12() -> Vec<Fig12Row> {
    let designs = [
        SystemDesign::DcDla,
        SystemDesign::HcDla,
        SystemDesign::McDlaBwAware,
    ];
    let mut cells = Vec::new();
    for design in designs {
        for bm in Benchmark::ALL {
            for strategy in ParallelStrategy::ALL {
                cells.push(Scenario::new(design, bm, strategy));
            }
        }
    }
    let reports = global_runner().run_grid(&cells);
    reports
        .chunks(2)
        .map(|pair| {
            let (dp, mp) = (&pair[0], &pair[1]);
            Fig12Row {
                design: dp.design,
                benchmark: dp.benchmark.clone(),
                avg_data_parallel_gbs: dp.cpu_socket_avg_gbs,
                avg_model_parallel_gbs: mp.cpu_socket_avg_gbs,
                max_gbs: dp.cpu_socket_max_gbs.max(mp.cpu_socket_max_gbs),
            }
        })
        .collect()
}

/// One Fig. 14 cell: MC-DLA(B) speedup over DC-DLA at a batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig14Cell {
    /// Global batch size.
    pub batch: u64,
    /// Strategy.
    pub strategy: ParallelStrategy,
    /// Benchmark name (`"HarMean"` for the aggregate).
    pub benchmark: String,
    /// Speedup over DC-DLA at the same batch.
    pub speedup: f64,
}

/// Figure 14 data: batch-size sensitivity (paper sweeps 128–2048).
pub fn fig14(batches: &[u64]) -> Vec<Fig14Cell> {
    let mut cells = Vec::new();
    for &batch in batches {
        for strategy in ParallelStrategy::ALL {
            let summary = speedup_vs_dc_scenarios(
                SystemDesign::McDlaBwAware,
                strategy,
                &Benchmark::ALL,
                |s| s.with_batch(batch),
            );
            for (bm, s) in &summary.per_benchmark {
                cells.push(Fig14Cell {
                    batch,
                    strategy,
                    benchmark: bm.clone(),
                    speedup: *s,
                });
            }
            cells.push(Fig14Cell {
                batch,
                strategy,
                benchmark: "HarMean".to_owned(),
                speedup: summary.harmonic_mean,
            });
        }
    }
    cells
}

/// One Fig. 2 cell: a CNN on one historical device generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Cell {
    /// CNN benchmark.
    pub benchmark: String,
    /// Device generation.
    pub generation: DeviceGeneration,
    /// Execution time normalized to the benchmark's Kepler time.
    pub normalized_time: f64,
    /// Memory-virtualization overhead fraction (right axis of Fig. 2).
    pub overhead: f64,
}

/// Figure 2 data: single-device execution time across five accelerator
/// generations (PCIe gen3 fixed) plus the virtualization overhead.
pub fn fig2() -> Vec<Fig2Cell> {
    let grid = ScenarioGrid::paper_default()
        .designs(&[SystemDesign::DcDla, SystemDesign::DcDlaOracle])
        .benchmarks(&Benchmark::CNNS)
        .strategies(&[ParallelStrategy::DataParallel])
        .device_counts(&[1])
        .generations(&DeviceGeneration::ALL);
    let runs = global_runner().run_grid(&grid.scenarios());
    // Benchmark-major, then design (DC virt, then oracle), then generation.
    let per_design = DeviceGeneration::ALL.len();
    let mut cells = Vec::new();
    for (chunk, bm) in runs.chunks(2 * per_design).zip(Benchmark::CNNS) {
        let (virts, oracles) = chunk.split_at(per_design);
        let mut kepler_time = None;
        for ((virt, oracle), generation) in virts.iter().zip(oracles).zip(DeviceGeneration::ALL) {
            // Left axis: plain execution time (no virtualization) — the
            // 20x-34x device-compute trend. Right axis: the overhead once
            // memory is virtualized over the fixed PCIe gen3 interface.
            let t = oracle.iteration_time.as_secs_f64();
            let base = *kepler_time.get_or_insert(t);
            cells.push(Fig2Cell {
                benchmark: bm.name().to_owned(),
                generation,
                normalized_time: t / base,
                overhead: virt.virtualization_overhead_vs(oracle),
            });
        }
    }
    cells
}

/// One §V-D scalability row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Device count.
    pub devices: usize,
    /// DC-DLA speedup over its 1-device run, virtualization enabled.
    pub dc_virt_on: f64,
    /// DC-DLA speedup with virtualization disabled (near-linear).
    pub dc_virt_off: f64,
    /// MC-DLA(B) speedup over its 1-device run.
    pub mc: f64,
}

/// §V-D: strong-scaling of data-parallel CNN training to 1/2/4/8 devices.
pub fn scalability(benchmarks: &[Benchmark]) -> Vec<ScalabilityRow> {
    const DESIGNS: [SystemDesign; 3] = [
        SystemDesign::DcDla,
        SystemDesign::DcDlaOracle,
        SystemDesign::McDlaBwAware,
    ];
    const COUNTS: [usize; 4] = [1, 2, 4, 8];
    let grid = ScenarioGrid::paper_default()
        .designs(&DESIGNS)
        .benchmarks(benchmarks)
        .strategies(&[ParallelStrategy::DataParallel])
        .device_counts(&COUNTS);
    let runs = global_runner().run_grid(&grid.scenarios());
    let mut rows = Vec::new();
    for (chunk, bm) in runs.chunks(DESIGNS.len() * COUNTS.len()).zip(benchmarks) {
        let secs = |design_idx: usize, count_idx: usize| {
            chunk[design_idx * COUNTS.len() + count_idx]
                .iteration_time
                .as_secs_f64()
        };
        for (count_idx, devices) in COUNTS.iter().enumerate().skip(1) {
            rows.push(ScalabilityRow {
                benchmark: bm.name().to_owned(),
                devices: *devices,
                dc_virt_on: secs(0, 0) / secs(0, count_idx),
                dc_virt_off: secs(1, 0) / secs(1, count_idx),
                mc: secs(2, 0) / secs(2, count_idx),
            });
        }
    }
    rows
}

/// The §V-B sensitivity studies, as MC-DLA(B)-over-DC-DLA harmonic-mean
/// speedups under modified configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivitySummary {
    /// Baseline gap (paper: 2.8x).
    pub baseline: f64,
    /// DC-DLA's own improvement from PCIe gen4 (paper: +38%).
    pub dc_gen4_improvement: f64,
    /// Gap with PCIe gen4 DC-DLA (paper: 2.1x).
    pub gen4_gap: f64,
    /// Gap with a TPUv2-class device-node (paper: 3.2x).
    pub faster_device_gap: f64,
    /// Gap with a DGX-2-class node (paper: 2.9x).
    pub dgx2_gap: f64,
    /// Gap on CNNs with cDMA-style 2.6x activation compression
    /// (paper: 2.3x).
    pub cdma_cnn_gap: f64,
}

/// Runs all §V-B sensitivity studies.
pub fn sensitivity() -> SensitivitySummary {
    let gap = |modify: &dyn Fn(Scenario) -> Scenario, benchmarks: &[Benchmark]| {
        let mut all = Vec::new();
        for strategy in ParallelStrategy::ALL {
            let s =
                speedup_vs_dc_scenarios(SystemDesign::McDlaBwAware, strategy, benchmarks, modify);
            all.extend(s.per_benchmark.iter().map(|(_, v)| *v));
        }
        harmonic_mean(&all).unwrap_or(0.0)
    };
    let baseline = gap(&|s| s, &Benchmark::ALL);
    let gen4_gap = gap(&Scenario::with_pcie_gen4, &Benchmark::ALL);
    let faster_device_gap = gap(
        &|s| s.with_device_model(DeviceModel::TpuV2Like),
        &Benchmark::ALL,
    );
    let dgx2_gap = gap(
        &|s| s.with_device_model(DeviceModel::Dgx2Like),
        &Benchmark::ALL,
    );
    let cdma_cnn_gap = gap(&|s| s.with_compression(2.6), &Benchmark::CNNS);
    // DC-DLA gen4 vs gen3 improvement, as one paired grid.
    let mut cells = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            cells.push(Scenario::new(SystemDesign::DcDla, bm, strategy));
            cells.push(Scenario::new(SystemDesign::DcDla, bm, strategy).with_pcie_gen4());
        }
    }
    let runs = global_runner().run_grid(&cells);
    let ratios: Vec<f64> = runs
        .chunks(2)
        .map(|pair| pair[1].speedup_over(&pair[0]))
        .collect();
    SensitivitySummary {
        baseline,
        dc_gen4_improvement: harmonic_mean(&ratios).unwrap_or(0.0) - 1.0,
        gen4_gap,
        faster_device_gap,
        dgx2_gap,
        cdma_cnn_gap,
    }
}

/// One §VI scale-out data point: an NVSwitch-class plane of `devices`
/// device-nodes and as many memory-nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutRow {
    /// Device count on the plane.
    pub devices: usize,
    /// Iteration time in seconds (weak scaling: 64 samples per device).
    pub iteration_secs: f64,
    /// Training throughput (samples/sec) relative to the 8-device plane.
    pub throughput_vs_8: f64,
    /// Collective fraction of the iteration.
    pub sync_fraction: f64,
}

/// §VI (Fig. 15): scales the MC-DLA ring beyond one backplane via an
/// NVSwitch-class plane, training data-parallel with 64 samples per device
/// (weak scaling, the large-batch regime of §V-D's citations).
pub fn scale_out(benchmark: Benchmark, device_counts: &[usize]) -> Vec<ScaleOutRow> {
    let cells: Vec<Scenario> = device_counts
        .iter()
        .map(|&devices| {
            Scenario::new(
                SystemDesign::McDlaBwAware,
                benchmark,
                ParallelStrategy::DataParallel,
            )
            .with_devices(devices)
            .with_batch(64 * devices as u64)
        })
        .collect();
    let runs = global_runner().run_grid(&cells);
    let mut rows = Vec::new();
    let mut base: Option<f64> = None;
    for (r, &devices) in runs.iter().zip(device_counts) {
        let t = r.iteration_time.as_secs_f64();
        let throughput = 64.0 * devices as f64 / t;
        let base_tp = *base.get_or_insert(throughput * 8.0 / devices as f64);
        rows.push(ScaleOutRow {
            devices,
            iteration_secs: t,
            throughput_vs_8: throughput / base_tp,
            sync_fraction: (r.sync_busy.as_secs_f64() / t).min(1.0),
        });
    }
    rows
}
