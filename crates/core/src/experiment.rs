//! The paper's evaluation experiments (§V), packaged as reusable runners.
//!
//! Each function reproduces the data behind one table or figure; the
//! `mcdla-bench` harness formats them into the paper's rows/series.

use mcdla_accel::{DeviceConfig, DeviceGeneration};
use mcdla_dnn::Benchmark;
use mcdla_parallel::ParallelStrategy;
use mcdla_sim::stats::harmonic_mean;
use serde::{Deserialize, Serialize};

use crate::design::{SystemConfig, SystemDesign};
use crate::engine::IterationSim;
use crate::report::IterationReport;

/// Runs one (design, benchmark, strategy) cell with paper-default
/// configuration.
pub fn simulate(
    design: SystemDesign,
    benchmark: Benchmark,
    strategy: ParallelStrategy,
) -> IterationReport {
    simulate_with(SystemConfig::new(design), benchmark, strategy)
}

/// Runs one cell with an explicit configuration.
pub fn simulate_with(
    cfg: SystemConfig,
    benchmark: Benchmark,
    strategy: ParallelStrategy,
) -> IterationReport {
    let net = benchmark.build();
    IterationSim::new(cfg, &net, strategy).run()
}

/// One benchmark's row of Figure 13: performance per design, normalized to
/// the fastest design (the oracle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Row {
    /// Benchmark name.
    pub benchmark: String,
    /// `(design, normalized performance)` in [`SystemDesign::ALL`] order.
    pub performance: Vec<(SystemDesign, f64)>,
}

/// Figure 13 data for one parallelization strategy.
pub fn fig13(strategy: ParallelStrategy) -> Vec<Fig13Row> {
    Benchmark::ALL
        .iter()
        .map(|bm| {
            let reports: Vec<IterationReport> = SystemDesign::ALL
                .iter()
                .map(|d| simulate(*d, *bm, strategy))
                .collect();
            let best = reports
                .iter()
                .map(IterationReport::performance)
                .fold(f64::MIN, f64::max);
            Fig13Row {
                benchmark: bm.name().to_owned(),
                performance: reports
                    .iter()
                    .map(|r| (r.design, r.performance() / best))
                    .collect(),
            }
        })
        .collect()
}

/// Speedups of `design` over DC-DLA across the suite, plus the harmonic
/// mean the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupSummary {
    /// Design compared against DC-DLA.
    pub design: SystemDesign,
    /// Strategy evaluated.
    pub strategy: ParallelStrategy,
    /// `(benchmark, speedup)` per workload.
    pub per_benchmark: Vec<(String, f64)>,
    /// Harmonic mean over the suite (§V: all averages are harmonic means).
    pub harmonic_mean: f64,
}

/// Speedup of a design over DC-DLA for one strategy, over the full suite.
pub fn speedup_vs_dc(design: SystemDesign, strategy: ParallelStrategy) -> SpeedupSummary {
    speedup_vs_dc_with(design, strategy, &Benchmark::ALL, SystemConfig::new)
}

/// Like [`speedup_vs_dc`] with a benchmark subset and config customization
/// (applied to **both** the design and the DC-DLA baseline).
pub fn speedup_vs_dc_with(
    design: SystemDesign,
    strategy: ParallelStrategy,
    benchmarks: &[Benchmark],
    mut config: impl FnMut(SystemDesign) -> SystemConfig,
) -> SpeedupSummary {
    let mut per_benchmark = Vec::new();
    for bm in benchmarks {
        let dc = simulate_with(config(SystemDesign::DcDla), *bm, strategy);
        let d = simulate_with(config(design), *bm, strategy);
        per_benchmark.push((bm.name().to_owned(), d.speedup_over(&dc)));
    }
    let values: Vec<f64> = per_benchmark.iter().map(|(_, s)| *s).collect();
    SpeedupSummary {
        design,
        strategy,
        harmonic_mean: harmonic_mean(&values).unwrap_or(0.0),
        per_benchmark,
    }
}

/// The paper's headline: MC-DLA(B) speedup over DC-DLA, harmonic-mean over
/// both strategies and all eight workloads (the quoted "average 2.8x").
pub fn headline_speedup() -> f64 {
    let mut all = Vec::new();
    for strategy in ParallelStrategy::ALL {
        let s = speedup_vs_dc(SystemDesign::McDlaBwAware, strategy);
        all.extend(s.per_benchmark.iter().map(|(_, v)| *v));
    }
    harmonic_mean(&all).unwrap_or(0.0)
}

/// One Fig. 11 stacked bar: the three busy-time components, normalized to
/// the tallest stack of the benchmark's group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Bar {
    /// Benchmark name.
    pub benchmark: String,
    /// Design point.
    pub design: SystemDesign,
    /// Normalized (computation, synchronization, memory virtualization).
    pub stack: [f64; 3],
}

/// Figure 11 data for one strategy: per benchmark, one stacked bar per
/// design, normalized to the tallest stack within the benchmark.
pub fn fig11(strategy: ParallelStrategy) -> Vec<Fig11Bar> {
    let mut bars = Vec::new();
    for bm in Benchmark::ALL {
        let reports: Vec<IterationReport> = SystemDesign::ALL
            .iter()
            .map(|d| simulate(*d, bm, strategy))
            .collect();
        let tallest = reports
            .iter()
            .map(|r| r.breakdown_secs().iter().sum::<f64>())
            .fold(f64::MIN, f64::max);
        for r in &reports {
            let b = r.breakdown_secs();
            bars.push(Fig11Bar {
                benchmark: bm.name().to_owned(),
                design: r.design,
                stack: [b[0] / tallest, b[1] / tallest, b[2] / tallest],
            });
        }
    }
    bars
}

/// One Fig. 12 group: CPU memory-bandwidth usage of a benchmark under one
/// design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Design point (DC-DLA, HC-DLA, MC-DLA(B)).
    pub design: SystemDesign,
    /// Benchmark name.
    pub benchmark: String,
    /// Average draw per socket, data-parallel (GB/s).
    pub avg_data_parallel_gbs: f64,
    /// Average draw per socket, model-parallel (GB/s).
    pub avg_model_parallel_gbs: f64,
    /// Peak draw per socket (GB/s), max over both strategies.
    pub max_gbs: f64,
}

/// Figure 12 data: DC-DLA, HC-DLA and MC-DLA CPU memory-bandwidth usage.
pub fn fig12() -> Vec<Fig12Row> {
    let designs = [
        SystemDesign::DcDla,
        SystemDesign::HcDla,
        SystemDesign::McDlaBwAware,
    ];
    let mut rows = Vec::new();
    for design in designs {
        for bm in Benchmark::ALL {
            let dp = simulate(design, bm, ParallelStrategy::DataParallel);
            let mp = simulate(design, bm, ParallelStrategy::ModelParallel);
            rows.push(Fig12Row {
                design,
                benchmark: bm.name().to_owned(),
                avg_data_parallel_gbs: dp.cpu_socket_avg_gbs,
                avg_model_parallel_gbs: mp.cpu_socket_avg_gbs,
                max_gbs: dp.cpu_socket_max_gbs.max(mp.cpu_socket_max_gbs),
            });
        }
    }
    rows
}

/// One Fig. 14 cell: MC-DLA(B) speedup over DC-DLA at a batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig14Cell {
    /// Global batch size.
    pub batch: u64,
    /// Strategy.
    pub strategy: ParallelStrategy,
    /// Benchmark name (`"HarMean"` for the aggregate).
    pub benchmark: String,
    /// Speedup over DC-DLA at the same batch.
    pub speedup: f64,
}

/// Figure 14 data: batch-size sensitivity (paper sweeps 128–2048).
pub fn fig14(batches: &[u64]) -> Vec<Fig14Cell> {
    let mut cells = Vec::new();
    for &batch in batches {
        for strategy in ParallelStrategy::ALL {
            let summary = speedup_vs_dc_with(
                SystemDesign::McDlaBwAware,
                strategy,
                &Benchmark::ALL,
                |d| SystemConfig::new(d).with_batch(batch),
            );
            for (bm, s) in &summary.per_benchmark {
                cells.push(Fig14Cell {
                    batch,
                    strategy,
                    benchmark: bm.clone(),
                    speedup: *s,
                });
            }
            cells.push(Fig14Cell {
                batch,
                strategy,
                benchmark: "HarMean".to_owned(),
                speedup: summary.harmonic_mean,
            });
        }
    }
    cells
}

/// One Fig. 2 cell: a CNN on one historical device generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Cell {
    /// CNN benchmark.
    pub benchmark: String,
    /// Device generation.
    pub generation: DeviceGeneration,
    /// Execution time normalized to the benchmark's Kepler time.
    pub normalized_time: f64,
    /// Memory-virtualization overhead fraction (right axis of Fig. 2).
    pub overhead: f64,
}

/// Figure 2 data: single-device execution time across five accelerator
/// generations (PCIe gen3 fixed) plus the virtualization overhead.
pub fn fig2() -> Vec<Fig2Cell> {
    let mut cells = Vec::new();
    for bm in Benchmark::CNNS {
        let mut kepler_time = None;
        for generation in DeviceGeneration::ALL {
            let mk = |design: SystemDesign| {
                let mut cfg = SystemConfig::new(design).with_devices(1);
                // Generations already encode sustained throughput.
                cfg.device = generation.device_config();
                cfg
            };
            let virt = simulate_with(mk(SystemDesign::DcDla), bm, ParallelStrategy::DataParallel);
            let oracle = simulate_with(
                mk(SystemDesign::DcDlaOracle),
                bm,
                ParallelStrategy::DataParallel,
            );
            // Left axis: plain execution time (no virtualization) — the
            // 20x-34x device-compute trend. Right axis: the overhead once
            // memory is virtualized over the fixed PCIe gen3 interface.
            let t = oracle.iteration_time.as_secs_f64();
            let base = *kepler_time.get_or_insert(t);
            cells.push(Fig2Cell {
                benchmark: bm.name().to_owned(),
                generation,
                normalized_time: t / base,
                overhead: virt.virtualization_overhead_vs(&oracle),
            });
        }
    }
    cells
}

/// One §V-D scalability row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Device count.
    pub devices: usize,
    /// DC-DLA speedup over its 1-device run, virtualization enabled.
    pub dc_virt_on: f64,
    /// DC-DLA speedup with virtualization disabled (near-linear).
    pub dc_virt_off: f64,
    /// MC-DLA(B) speedup over its 1-device run.
    pub mc: f64,
}

/// §V-D: strong-scaling of data-parallel CNN training to 1/2/4/8 devices.
pub fn scalability(benchmarks: &[Benchmark]) -> Vec<ScalabilityRow> {
    let mut rows = Vec::new();
    for bm in benchmarks {
        let run = |design: SystemDesign, devices: usize| {
            simulate_with(
                SystemConfig::new(design).with_devices(devices),
                *bm,
                ParallelStrategy::DataParallel,
            )
            .iteration_time
            .as_secs_f64()
        };
        let dc1 = run(SystemDesign::DcDla, 1);
        let oracle1 = run(SystemDesign::DcDlaOracle, 1);
        let mc1 = run(SystemDesign::McDlaBwAware, 1);
        for devices in [2usize, 4, 8] {
            rows.push(ScalabilityRow {
                benchmark: bm.name().to_owned(),
                devices,
                dc_virt_on: dc1 / run(SystemDesign::DcDla, devices),
                dc_virt_off: oracle1 / run(SystemDesign::DcDlaOracle, devices),
                mc: mc1 / run(SystemDesign::McDlaBwAware, devices),
            });
        }
    }
    rows
}

/// The §V-B sensitivity studies, as MC-DLA(B)-over-DC-DLA harmonic-mean
/// speedups under modified configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivitySummary {
    /// Baseline gap (paper: 2.8x).
    pub baseline: f64,
    /// DC-DLA's own improvement from PCIe gen4 (paper: +38%).
    pub dc_gen4_improvement: f64,
    /// Gap with PCIe gen4 DC-DLA (paper: 2.1x).
    pub gen4_gap: f64,
    /// Gap with a TPUv2-class device-node (paper: 3.2x).
    pub faster_device_gap: f64,
    /// Gap with a DGX-2-class node (paper: 2.9x).
    pub dgx2_gap: f64,
    /// Gap on CNNs with cDMA-style 2.6x activation compression
    /// (paper: 2.3x).
    pub cdma_cnn_gap: f64,
}

/// Runs all §V-B sensitivity studies.
pub fn sensitivity() -> SensitivitySummary {
    let gap = |config: &dyn Fn(SystemDesign) -> SystemConfig, benchmarks: &[Benchmark]| {
        let mut all = Vec::new();
        for strategy in ParallelStrategy::ALL {
            let s = speedup_vs_dc_with(SystemDesign::McDlaBwAware, strategy, benchmarks, config);
            all.extend(s.per_benchmark.iter().map(|(_, v)| *v));
        }
        harmonic_mean(&all).unwrap_or(0.0)
    };
    let baseline = gap(&|d| SystemConfig::new(d), &Benchmark::ALL);
    let gen4_gap = gap(&|d| SystemConfig::new(d).with_pcie_gen4(), &Benchmark::ALL);
    let faster_device_gap = gap(
        &|d| SystemConfig::new(d).with_device(DeviceConfig::tpu_v2_like()),
        &Benchmark::ALL,
    );
    let dgx2_gap = gap(
        &|d| SystemConfig::new(d).with_device(DeviceConfig::dgx2_like()),
        &Benchmark::ALL,
    );
    let cdma_cnn_gap = gap(
        &|d| SystemConfig::new(d).with_compression(2.6),
        &Benchmark::CNNS,
    );
    // DC-DLA gen4 vs gen3 improvement.
    let mut ratios = Vec::new();
    for strategy in ParallelStrategy::ALL {
        for bm in Benchmark::ALL {
            let gen3 = simulate(SystemDesign::DcDla, bm, strategy);
            let gen4 = simulate_with(
                SystemConfig::new(SystemDesign::DcDla).with_pcie_gen4(),
                bm,
                strategy,
            );
            ratios.push(gen4.speedup_over(&gen3));
        }
    }
    SensitivitySummary {
        baseline,
        dc_gen4_improvement: harmonic_mean(&ratios).unwrap_or(0.0) - 1.0,
        gen4_gap,
        faster_device_gap,
        dgx2_gap,
        cdma_cnn_gap,
    }
}

/// One §VI scale-out data point: an NVSwitch-class plane of `devices`
/// device-nodes and as many memory-nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutRow {
    /// Device count on the plane.
    pub devices: usize,
    /// Iteration time in seconds (weak scaling: 64 samples per device).
    pub iteration_secs: f64,
    /// Training throughput (samples/sec) relative to the 8-device plane.
    pub throughput_vs_8: f64,
    /// Collective fraction of the iteration.
    pub sync_fraction: f64,
}

/// §VI (Fig. 15): scales the MC-DLA ring beyond one backplane via an
/// NVSwitch-class plane, training data-parallel with 64 samples per device
/// (weak scaling, the large-batch regime of §V-D's citations).
pub fn scale_out(benchmark: Benchmark, device_counts: &[usize]) -> Vec<ScaleOutRow> {
    let mut rows = Vec::new();
    let mut base: Option<f64> = None;
    for &devices in device_counts {
        let cfg = SystemConfig::new(SystemDesign::McDlaBwAware)
            .with_devices(devices)
            .with_batch(64 * devices as u64);
        let r = simulate_with(cfg, benchmark, ParallelStrategy::DataParallel);
        let t = r.iteration_time.as_secs_f64();
        let throughput = 64.0 * devices as f64 / t;
        let base_tp = *base.get_or_insert(throughput * 8.0 / devices as f64);
        rows.push(ScaleOutRow {
            devices,
            iteration_secs: t,
            throughput_vs_8: throughput / base_tp,
            sync_fraction: (r.sync_busy.as_secs_f64() / t).min(1.0),
        });
    }
    rows
}
