//! The staged scenario pipeline: sub-cell memoization over the engine's
//! stage artifacts.
//!
//! [`Scenario::simulate`](crate::Scenario::simulate) runs through four
//! explicit stages, each backed by a process-global
//! [`StageCache`](crate::StageCache) (the [`ResultStore`](crate::ResultStore)
//! machinery — sharding, global capacity bound, LRU eviction,
//! single-flight — generic over key and value):
//!
//! 1. **Fabric summary** — the [`CommFabric`](crate::CommFabric) the
//!    configuration synchronizes over (analytical, or flow-routed when
//!    the `topology` axis is set), keyed by `(design, devices,
//!    generation, device model, pcie_gen4, topology)`: every input the
//!    fabric derivation reads. A mega-grid sweeping batch over a few
//!    designs touches this a handful of times, not once per cell.
//! 2. **Layer timing** — the dnn-zoo walk and per-layer compute times,
//!    split into four sub-tables keyed by exactly the axes each depends
//!    on: the network topology (`benchmark`), the per-layer
//!    forward/backward durations (`benchmark × device × worker batch`),
//!    the bucket-fused worker plan (`benchmark × strategy × devices ×
//!    global batch`, with the batch axis *normalized away* for
//!    batch-invariant data-parallel plans), and the overlay schedule
//!    (`benchmark × virt batch × virtualizing?`).
//! 3. **Collective cost** — two levels. The `collective` table holds
//!    one striped ring collective's latency, keyed by `(fabric summary,
//!    kind, gradient bytes)`; data-parallel dW buckets are
//!    batch-invariant, so a batch sweep hits it after the first cell
//!    per design. The `sync` table above it holds a plan's whole fused
//!    sync-op cost vector, keyed by `(fabric summary, worker plan)` —
//!    one lookup per cell instead of one per op, with misses reading
//!    through the per-op table.
//! 4. **Report assembly** — the lean event-loop replay
//!    ([`assemble`](crate::IterationSim)), uncached: per-cell knobs
//!    (compression, pinned-budget overrides) enter only here.
//!
//! Keys are derived purely from scenario axes, which is sound because
//! every [`SystemConfig`] field a stage reads is a function of those
//! axes (the data type never varies across scenarios, and the device
//! config depends only on the generation/model overrides). Each table is
//! capacity-bounded — see the README's "Stage tuning" section for the
//! `MCDLA_STAGE_*_CAP` knobs — and every hit/miss/eviction is reported
//! through [`StoreStats::stages`](crate::StoreStats), `GET /stats`,
//! `GET /metrics`, and the sweep summary.

use std::sync::{Arc, OnceLock};

use mcdla_accel::{AccelTimingModel, DeviceGeneration};
use mcdla_dnn::{Benchmark, Network};
use mcdla_interconnect::{CollectiveKind, FabricTopology};
use mcdla_obs::{Histogram, HistogramSnapshot, Span};
use mcdla_parallel::{ParallelStrategy, WorkerPlan};
use mcdla_sim::{Bytes, SimDuration};
use mcdla_vmem::{VirtPolicy, VirtSchedule};

use crate::design::SystemDesign;
use crate::engine::{
    assemble, layer_timings, xfer_table, FabricSummary, NetShape, PlanArt, SchedArt,
};
use crate::report::IterationReport;
use crate::scenario::{DeviceModel, Scenario};
use crate::store::{StageCache, StageStats};
use crate::virt_path::VirtPath;

/// The device-identity axes: the device config is a pure function of
/// these two overrides (every design uses the same calibrated baseline).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
struct DeviceKey {
    generation: Option<DeviceGeneration>,
    model: Option<DeviceModel>,
}

/// Stage-1 key: everything the fabric derivation reads. The topology
/// axis selects between the analytical and the flow-level routed
/// fabric, so the summary must key on it.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
struct FabricKey {
    design: SystemDesign,
    devices: usize,
    device: DeviceKey,
    pcie_gen4: bool,
    topology: Option<FabricTopology>,
}

/// Per-layer timing key: the device and the per-device batch.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
struct TimingKey {
    benchmark: Benchmark,
    device: DeviceKey,
    worker_batch: u64,
}

/// Worker-plan key: design-independent (the plan partitions work, not
/// hardware). `global_batch` is *normalized to zero* for data-parallel
/// plans: their artifact is provably batch-invariant ([`PlanArt`] is
/// batch-free and data-parallel sync ops carry weight bytes), so a
/// batch sweep shares one plan per `(benchmark, devices)` instead of
/// missing on every batch.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    benchmark: Benchmark,
    strategy: ParallelStrategy,
    devices: usize,
    global_batch: u64,
}

impl PlanKey {
    fn of(benchmark: Benchmark, strategy: ParallelStrategy, devices: usize, batch: u64) -> PlanKey {
        let global_batch = match strategy {
            // Model-parallel sync ops carry activation bytes at the
            // global batch — genuinely batch-dependent.
            ParallelStrategy::ModelParallel => batch,
            ParallelStrategy::DataParallel => 0,
        };
        PlanKey {
            benchmark,
            strategy,
            devices,
            global_batch,
        }
    }
}

/// Overlay-schedule key: designs split only into virtualizing and not.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
struct SchedKey {
    benchmark: Benchmark,
    virt_batch: u64,
    virtualizes: bool,
}

/// Stage-3 key: the fabric identity plus the collective's shape.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
struct CollKey {
    fabric: FabricKey,
    kind: CollectiveKind,
    bytes: u64,
}

/// Key for a plan's whole sync-op cost vector: the fabric the
/// collectives run over plus the plan whose fused op list they price.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
struct SyncKey {
    fabric: FabricKey,
    plan: PlanKey,
}

/// Fabric artifact: the ring summary plus the design's virtualization
/// data path. [`VirtPath::from_config`] reads exactly the fields
/// [`FabricKey`] captures (never the batch or the compression knob), so
/// its label allocations amortize with the rings.
struct FabricArt {
    summary: FabricSummary,
    virt: Option<VirtPath>,
}

/// Network topology artifact: the built network and its packed
/// input/consumer lists.
struct NetTopo {
    net: Network,
    shape: NetShape,
}

impl NetTopo {
    fn build(benchmark: Benchmark) -> NetTopo {
        let net = benchmark.build();
        let shape = NetShape::of(&net);
        NetTopo { net, shape }
    }
}

/// The process-global stage tables. One set per process: the staged
/// pipeline is deterministic and scenario-keyed, so sharing across
/// stores, runners, and serve handlers is free extra hit rate.
struct StagePipeline {
    fabrics: StageCache<FabricKey, Arc<FabricArt>>,
    networks: StageCache<Benchmark, Arc<NetTopo>>,
    timings: StageCache<TimingKey, Arc<Vec<(SimDuration, SimDuration)>>>,
    plans: StageCache<PlanKey, Arc<PlanArt>>,
    schedules: StageCache<SchedKey, Arc<SchedArt>>,
    collectives: StageCache<CollKey, SimDuration>,
    syncs: StageCache<SyncKey, Arc<Vec<SimDuration>>>,
    hists: StageHists,
}

/// Latency histograms per pipeline section (lookup + compute-on-miss
/// per stage table, plus the uncached assembly replay). Pre-registered
/// `Arc<Histogram>` handles so the hot path never touches a map or
/// lock; observation is gated behind `mcdla_obs::enabled()` by the
/// `Span` guards, so batch sweeps pay one atomic load per section.
struct StageHists {
    fabric: Arc<Histogram>,
    network: Arc<Histogram>,
    layer_timing: Arc<Histogram>,
    plan: Arc<Histogram>,
    schedule: Arc<Histogram>,
    sync: Arc<Histogram>,
    assemble: Arc<Histogram>,
}

impl StageHists {
    fn new() -> StageHists {
        StageHists {
            fabric: Arc::new(Histogram::new()),
            network: Arc::new(Histogram::new()),
            layer_timing: Arc::new(Histogram::new()),
            plan: Arc::new(Histogram::new()),
            schedule: Arc::new(Histogram::new()),
            sync: Arc::new(Histogram::new()),
            assemble: Arc::new(Histogram::new()),
        }
    }
}

/// Reads `var` as a table capacity: unset → `default`, `0` → unbounded,
/// anything unparsable → `default`.
fn cap_from_env(var: &str, default: usize) -> Option<usize> {
    match std::env::var(var) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => Some(default),
        },
        Err(_) => Some(default),
    }
}

fn pipeline() -> &'static StagePipeline {
    static PIPELINE: OnceLock<StagePipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| StagePipeline {
        fabrics: StageCache::with_shards(cap_from_env("MCDLA_STAGE_FABRIC_CAP", 4096), 16),
        networks: StageCache::with_shards(cap_from_env("MCDLA_STAGE_NETWORK_CAP", 64), 4),
        timings: StageCache::with_shards(cap_from_env("MCDLA_STAGE_TIMING_CAP", 8192), 16),
        plans: StageCache::with_shards(cap_from_env("MCDLA_STAGE_PLAN_CAP", 8192), 16),
        schedules: StageCache::with_shards(cap_from_env("MCDLA_STAGE_SCHEDULE_CAP", 8192), 16),
        collectives: StageCache::with_shards(cap_from_env("MCDLA_STAGE_COLLECTIVE_CAP", 65536), 16),
        syncs: StageCache::with_shards(cap_from_env("MCDLA_STAGE_SYNC_CAP", 8192), 16),
        hists: StageHists::new(),
    })
}

/// Latency snapshots per pipeline section, in fixed display order:
/// the six spanned stage tables (per-op `collective` lookups run
/// inside the `sync` section and are not timed individually) plus the
/// uncached `assemble` replay. Feeds the `mcdla_stage_seconds`
/// Prometheus family on `GET /metrics`. Populated only while span
/// recording is enabled (`mcdla_obs::set_enabled`, flipped on by the
/// servers) — batch sweeps leave these empty by design.
pub fn stage_latency() -> Vec<(&'static str, HistogramSnapshot)> {
    let h = &pipeline().hists;
    vec![
        ("fabric", h.fabric.snapshot()),
        ("network", h.network.snapshot()),
        ("layer_timing", h.layer_timing.snapshot()),
        ("plan", h.plan.snapshot()),
        ("schedule", h.schedule.snapshot()),
        ("sync", h.sync.snapshot()),
        ("assemble", h.assemble.snapshot()),
    ]
}

/// Counters for every stage table, in fixed display order. Feeds
/// [`StoreStats::stages`](crate::StoreStats), `GET /stats`,
/// `GET /metrics`, and the sweep summary.
pub fn stage_stats() -> Vec<StageStats> {
    let p = pipeline();
    vec![
        p.fabrics.stats("fabric"),
        p.networks.stats("network"),
        p.timings.stats("layer_timing"),
        p.plans.stats("plan"),
        p.schedules.stats("schedule"),
        p.collectives.stats("collective"),
        p.syncs.stats("sync"),
    ]
}

/// Simulates one cell through the staged pipeline. Bit-identical to
/// [`Scenario::simulate_monolithic`](crate::Scenario::simulate_monolithic):
/// the stages cache exactly the artifacts the monolithic path builds
/// fresh, and [`assemble`](crate::IterationSim) replays the identical
/// event loop over them.
pub fn simulate(scenario: &Scenario) -> IterationReport {
    let p = pipeline();
    let _engine = Span::enter("engine.simulate");
    let cfg = scenario.config();
    let device = DeviceKey {
        generation: scenario.generation,
        model: scenario.overrides.device_model,
    };

    let (topo, _) = {
        let _s = Span::enter_timed("stage.network", &p.hists.network);
        p.networks.get_or_compute(scenario.benchmark, || {
            Arc::new(NetTopo::build(scenario.benchmark))
        })
    };

    // The per-worker (and overlay) batch is a closed-form function of
    // the axes — computed here rather than stored in the plan artifact,
    // which keeps the artifact batch-invariant for data parallelism.
    let worker_batch = match scenario.strategy {
        ParallelStrategy::DataParallel => cfg.global_batch / cfg.devices as u64,
        ParallelStrategy::ModelParallel => cfg.global_batch,
    };

    let plan_key = PlanKey::of(
        scenario.benchmark,
        scenario.strategy,
        cfg.devices,
        cfg.global_batch,
    );
    let (plan, _) = {
        let _s = Span::enter_timed("stage.plan", &p.hists.plan);
        p.plans.get_or_compute(plan_key, || {
            let plan = WorkerPlan::plan(
                &topo.net,
                scenario.strategy,
                cfg.devices,
                cfg.global_batch,
                cfg.dtype,
            );
            Arc::new(PlanArt::build(&plan, topo.net.layers().len(), &cfg))
        })
    };

    let timing_key = TimingKey {
        benchmark: scenario.benchmark,
        device,
        worker_batch,
    };
    let (timings, _) = {
        let _s = Span::enter_timed("stage.layer_timing", &p.hists.layer_timing);
        p.timings.get_or_compute(timing_key, || {
            let timing = AccelTimingModel::new(cfg.device.clone(), cfg.dtype);
            Arc::new(layer_timings(&timing, &topo.net, worker_batch))
        })
    };

    let virtualizes = cfg.design.virtualizes();
    let sched_key = SchedKey {
        benchmark: scenario.benchmark,
        virt_batch: worker_batch,
        virtualizes,
    };
    let (sched, _) = {
        let _s = Span::enter_timed("stage.schedule", &p.hists.schedule);
        p.schedules.get_or_compute(sched_key, || {
            let policy = if virtualizes {
                VirtPolicy::paper_default()
            } else {
                VirtPolicy::disabled()
            };
            let schedule = VirtSchedule::analyze(&topo.net, worker_batch, cfg.dtype, policy);
            Arc::new(SchedArt::build(
                &schedule,
                &topo.net,
                worker_batch,
                cfg.dtype,
            ))
        })
    };

    let fabric_key = FabricKey {
        design: scenario.design,
        devices: cfg.devices,
        device,
        pcie_gen4: scenario.overrides.pcie_gen4,
        topology: scenario.topology,
    };
    let (fabric, _) = {
        let _s = Span::enter_timed("stage.fabric", &p.hists.fabric);
        p.fabrics.get_or_compute(fabric_key, || {
            Arc::new(FabricArt {
                summary: FabricSummary::of(&cfg),
                virt: VirtPath::from_config(&cfg),
            })
        })
    };
    let fabric = &*fabric;
    let virt = fabric.virt.as_ref();

    // The overlay-transfer table depends on the schedule's virt batch,
    // so a batch sweep can never reuse it across cells — computing it
    // inline is cheaper than a table that would miss every time.
    let xfer = xfer_table(&sched, plan.stash_scale, cfg.compression_ratio, virt);

    let sync_span = Span::enter_timed("stage.sync", &p.hists.sync);
    let (sync, _) = p.syncs.get_or_compute(
        SyncKey {
            fabric: fabric_key,
            plan: plan_key,
        },
        || {
            let fab = &fabric.summary.fabric;
            let silent = fab.ring_shapes().is_empty() || plan.workers < 2;
            Arc::new(
                plan.fused
                    .iter()
                    .map(|op| {
                        if silent {
                            return SimDuration::ZERO;
                        }
                        let key = CollKey {
                            fabric: fabric_key,
                            kind: op.kind,
                            bytes: op.bytes,
                        };
                        p.collectives
                            .get_or_compute(key, || {
                                fab.collective_time(op.kind, Bytes::new(op.bytes))
                            })
                            .0
                    })
                    .collect(),
            )
        },
    );
    drop(sync_span);
    let collective = |oi: usize| sync[oi];

    let _s = Span::enter_timed("engine.assemble", &p.hists.assemble);
    assemble(
        &cfg,
        &topo.net,
        &topo.shape,
        &timings,
        &plan,
        &sched,
        &xfer,
        virt,
        &collective,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdla_parallel::ParallelStrategy;

    #[test]
    fn staged_matches_monolithic_on_a_paper_cell() {
        let cell = Scenario::new(
            SystemDesign::McDlaBwAware,
            Benchmark::GoogLeNet,
            ParallelStrategy::DataParallel,
        );
        assert_eq!(simulate(&cell), cell.simulate_monolithic());
        // Second pass: every stage is warm, result unchanged.
        assert_eq!(simulate(&cell), cell.simulate_monolithic());
    }

    #[test]
    fn stage_tables_amortize_across_designs() {
        // Two designs at the same batch share network, plan, timing and
        // schedule artifacts; only fabric (and collectives) split.
        let before: u64 = stage_stats().iter().map(|s| s.misses).sum();
        let batch = 4096;
        for design in [SystemDesign::DcDla, SystemDesign::McDlaLocal] {
            let cell = Scenario::new(design, Benchmark::AlexNet, ParallelStrategy::DataParallel)
                .with_batch(batch);
            assert_eq!(simulate(&cell), cell.simulate_monolithic());
        }
        let stats = stage_stats();
        let after: u64 = stats.iter().map(|s| s.misses).sum();
        let hits_after: u64 = stats.iter().map(|s| s.hits).sum();
        assert!(
            after > before,
            "fresh axes must populate the tables: {stats:?}"
        );
        assert!(hits_after > 0, "shared artifacts must hit: {stats:?}");
    }

    #[test]
    fn staged_matches_monolithic_across_a_batch_grid() {
        // The batch-invariant plan key must be *identity-preserving*:
        // serving one data-parallel plan artifact to every batch in a
        // sweep may never change a single report bit. Pin staged ==
        // monolithic over a batch grid on both strategies.
        for strategy in [
            ParallelStrategy::DataParallel,
            ParallelStrategy::ModelParallel,
        ] {
            for batch in [64u64, 128, 512, 1024, 4096] {
                let cell = Scenario::new(SystemDesign::DcDla, Benchmark::GoogLeNet, strategy)
                    .with_batch(batch);
                assert_eq!(
                    simulate(&cell),
                    cell.simulate_monolithic(),
                    "{strategy:?}/batch{batch}"
                );
            }
        }
    }

    #[test]
    fn data_parallel_plans_are_shared_across_batches() {
        // A data-parallel batch sweep normalizes the plan key, so after
        // the first cell the plan (and sync) tables must hit, not miss.
        let warm = Scenario::new(
            SystemDesign::McDlaStar,
            Benchmark::ResNet,
            ParallelStrategy::DataParallel,
        );
        let _ = simulate(&warm.with_batch(256));
        let misses_before: u64 = stage_stats()
            .iter()
            .filter(|s| s.stage == "plan" || s.stage == "sync")
            .map(|s| s.misses)
            .sum();
        for batch in [64u64, 128, 1024, 2048] {
            let _ = simulate(&warm.with_batch(batch));
        }
        let misses_after: u64 = stage_stats()
            .iter()
            .filter(|s| s.stage == "plan" || s.stage == "sync")
            .map(|s| s.misses)
            .sum();
        assert_eq!(
            misses_before, misses_after,
            "data-parallel plan/sync artifacts must be batch-invariant"
        );
    }

    #[test]
    fn topology_splits_the_fabric_key() {
        // Same design, different topology: the staged path must not
        // serve the analytical fabric's sync costs to a flow-routed
        // cell (or vice versa) — and both must match their monolithic
        // reference.
        let base = Scenario::new(
            SystemDesign::DcDla,
            Benchmark::AlexNet,
            ParallelStrategy::DataParallel,
        )
        .with_devices(64)
        .with_batch(512);
        let routed = base.with_topology(FabricTopology::Ring);
        let a = simulate(&base);
        let r = simulate(&routed);
        assert_eq!(a, base.simulate_monolithic());
        assert_eq!(r, routed.simulate_monolithic());
        // The two fabrics genuinely price differently at this scale
        // (the analytical model throttles every hop to the PCIe share;
        // the flow fabric only throttles the escape crossings), so a
        // shared cache entry would be observable.
        assert_ne!(
            r.sync_busy, a.sync_busy,
            "flow-routed and analytical cells must not share sync costs"
        );
    }

    #[test]
    fn stage_stats_lists_every_stage_once() {
        let names: Vec<String> = stage_stats().into_iter().map(|s| s.stage).collect();
        assert_eq!(
            names,
            [
                "fabric",
                "network",
                "layer_timing",
                "plan",
                "schedule",
                "collective",
                "sync"
            ]
        );
    }
}
