//! The scenario subsystem: data-driven experiment specification and a
//! parallel, memoizing grid runner.
//!
//! Everything §V evaluates is a point in one configuration space:
//! *(design, benchmark, strategy, device count, batch, device generation,
//! overrides)*. A [`Scenario`] captures that point as a small,
//! serde-serializable value; a [`ScenarioGrid`] spans a cartesian product
//! of them; and a [`Runner`] executes any set of scenarios across scoped
//! worker threads with a memoized result cache keyed by the scenario
//! hash, so overlapping figure/table grids (Fig. 11 and Fig. 13 share
//! all 96 default cells, the §V-B studies share their baselines, ...)
//! never re-simulate a cell.
//!
//! Adding a new experiment is a data change — describe the cells, hand
//! them to the runner — not a new binary.
//!
//! # Examples
//!
//! ```
//! use mcdla_core::{Runner, Scenario, ScenarioGrid, SystemDesign};
//! use mcdla_dnn::Benchmark;
//! use mcdla_parallel::ParallelStrategy;
//!
//! let grid = ScenarioGrid::paper_default();
//! assert_eq!(grid.len(), 6 * 8 * 2); // designs x benchmarks x strategies
//!
//! let runner = Runner::with_threads(2);
//! let one = Scenario::new(
//!     SystemDesign::McDlaBwAware,
//!     Benchmark::AlexNet,
//!     ParallelStrategy::DataParallel,
//! );
//! let first = runner.run(one);
//! let again = runner.run(one); // memoized: no second simulation
//! assert_eq!(first, again);
//! assert_eq!(runner.cache_hits(), 1);
//! ```

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use mcdla_accel::{DeviceConfig, DeviceGeneration};
use mcdla_dnn::Benchmark;
use mcdla_interconnect::FabricTopology;
use mcdla_parallel::ParallelStrategy;
use serde::{Deserialize, Serialize};

use crate::design::{SystemConfig, SystemDesign, PAPER_DEFAULT_BATCH, PAPER_DEFAULT_DEVICES};
use crate::engine::IterationSim;
use crate::report::IterationReport;
use crate::store::{Provenance, ResultStore};

/// Named device-node models for the §V-B sensitivity studies.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceModel {
    /// The §V-B "faster device-node such as TPUv2" study.
    TpuV2Like,
    /// The §V-B "DGX-2-class node" study.
    Dgx2Like,
}

impl DeviceModel {
    /// The device configuration this model names.
    pub fn device_config(self) -> DeviceConfig {
        match self {
            DeviceModel::TpuV2Like => DeviceConfig::tpu_v2_like(),
            DeviceModel::Dgx2Like => DeviceConfig::dgx2_like(),
        }
    }
}

/// Optional departures from the paper-default configuration of a cell.
#[derive(Debug, Copy, Clone, Default, Serialize)]
pub struct Overrides {
    /// Upgrade the host interface to PCIe gen4 (§V-B).
    pub pcie_gen4: bool,
    /// Swap the device-node for a named faster model (§V-B). The
    /// calibration factor is preserved, as in the paper's study.
    pub device_model: Option<DeviceModel>,
    /// cDMA-style activation-compression ratio on overlay traffic
    /// (§V-B uses 2.6). Must be finite and `>= 1`.
    pub compression: Option<f64>,
}

// Hand-written (not derived) so wire payloads may omit any field — or
// the whole object: a sparse `{"design","benchmark","strategy"}`
// scenario is a valid `POST /simulate` body. Unknown keys are rejected
// by name: with every field optional, a typo'd knob would otherwise be
// silently dropped and the cell simulated without it.
impl serde::Deserialize for Overrides {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        const FIELDS: [&str; 3] = ["pcie_gen4", "device_model", "compression"];
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", "Overrides"))?;
        if let Some((unknown, _)) = map.iter().find(|(k, _)| !FIELDS.contains(&k.as_str())) {
            return Err(serde::Error::custom(format!(
                "unknown Overrides field `{unknown}` (known fields, all optional: {})",
                FIELDS.join(", ")
            )));
        }
        Ok(Overrides {
            pcie_gen4: serde::__field::<Option<bool>>(map, "pcie_gen4")?.unwrap_or(false),
            device_model: serde::__field(map, "device_model")?,
            compression: serde::__field(map, "compression")?,
        })
    }

    fn from_missing_field(_field: &str) -> Result<Self, serde::Error> {
        Ok(Overrides::default())
    }
}

// Equality and hashing go through `f64::to_bits` so they stay mutually
// consistent for *any* value of the public `compression` field — even a
// hand-constructed NaN (which `Scenario::with_compression` rejects, but
// the struct literal cannot) keys the memo cache coherently instead of
// failing `cache.get` after `cache.insert`.
impl PartialEq for Overrides {
    fn eq(&self, other: &Self) -> bool {
        self.pcie_gen4 == other.pcie_gen4
            && self.device_model == other.device_model
            && self.compression.map(f64::to_bits) == other.compression.map(f64::to_bits)
    }
}

impl Eq for Overrides {}

impl Hash for Overrides {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.pcie_gen4.hash(state);
        self.device_model.hash(state);
        self.compression.map(f64::to_bits).hash(state);
    }
}

/// One fully specified simulation cell: which design runs which workload
/// under which knobs.
///
/// A scenario is plain data — `Copy`, hashable, serde-serializable — so
/// grids can be generated, diffed, cached, and shipped as JSON. On the
/// wire **every** field is optional: an omitted field takes the paper
/// default (see [`Scenario::default`]), so `{}` is a valid
/// `POST /simulate` body naming the headline MC-DLA(B)/AlexNet/
/// data-parallel cell.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// System design point.
    pub design: SystemDesign,
    /// Workload.
    pub benchmark: Benchmark,
    /// Parallelization strategy.
    pub strategy: ParallelStrategy,
    /// Device-node count; `None` means the paper default (8).
    pub devices: Option<usize>,
    /// Global batch; `None` means the paper default (512).
    pub batch: Option<u64>,
    /// Historical accelerator generation standing in for the device
    /// (Fig. 2); `None` means the calibrated Table II device.
    pub generation: Option<DeviceGeneration>,
    /// Sensitivity-study overrides.
    pub overrides: Overrides,
    /// Concrete topology to route collectives over as flow batches;
    /// `None` means the analytical fabric model (the paper's numbers).
    pub topology: Option<FabricTopology>,
}

// Hand-written (not derived) so the canonical encoding — and therefore
// [`Scenario::digest`] — is unchanged for every pre-topology cell: the
// `topology` key is emitted only when set. A derived impl would append
// `"topology":null` to all 96 golden-grid cells and silently re-key
// every published digest.
impl serde::Serialize for Scenario {
    fn to_value(&self) -> serde::Value {
        let mut map = vec![
            ("design".to_string(), self.design.to_value()),
            ("benchmark".to_string(), self.benchmark.to_value()),
            ("strategy".to_string(), self.strategy.to_value()),
            ("devices".to_string(), self.devices.to_value()),
            ("batch".to_string(), self.batch.to_value()),
            ("generation".to_string(), self.generation.to_value()),
            ("overrides".to_string(), self.overrides.to_value()),
        ];
        if let Some(topology) = self.topology {
            map.push(("topology".to_string(), topology.to_value()));
        }
        serde::Value::Map(map)
    }
}

impl Default for Scenario {
    /// The paper's headline cell: the proposed MC-DLA(B) design running
    /// AlexNet data-parallel with every knob at its §IV default. These
    /// are also the wire defaults for omitted `POST /simulate` fields.
    fn default() -> Self {
        Scenario::new(
            SystemDesign::McDlaBwAware,
            Benchmark::AlexNet,
            ParallelStrategy::DataParallel,
        )
    }
}

// Hand-written (not derived) so sparse wire payloads work: every
// top-level field may be omitted and takes its paper default —
// `{"benchmark":"AlexNet","design":"McDlaBwAware"}` no longer fails
// with "missing field `strategy`". Because every field is optional, a
// misspelled key would otherwise silently produce the default headline
// cell, so unknown keys are rejected by name. Validation stays in
// `Scenario::validate`, which callers run on every deserialized cell.
impl serde::Deserialize for Scenario {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        const FIELDS: [&str; 8] = [
            "design",
            "benchmark",
            "strategy",
            "devices",
            "batch",
            "generation",
            "overrides",
            "topology",
        ];
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", "Scenario"))?;
        if let Some((unknown, _)) = map.iter().find(|(k, _)| !FIELDS.contains(&k.as_str())) {
            return Err(serde::Error::custom(format!(
                "unknown Scenario field `{unknown}` (known fields, all optional: {})",
                FIELDS.join(", ")
            )));
        }
        let default = Scenario::default();
        Ok(Scenario {
            design: serde::__field::<Option<SystemDesign>>(map, "design")?
                .unwrap_or(default.design),
            benchmark: serde::__field::<Option<Benchmark>>(map, "benchmark")?
                .unwrap_or(default.benchmark),
            strategy: serde::__field::<Option<ParallelStrategy>>(map, "strategy")?
                .unwrap_or(default.strategy),
            devices: serde::__field(map, "devices")?,
            batch: serde::__field(map, "batch")?,
            generation: serde::__field(map, "generation")?,
            overrides: serde::__field(map, "overrides")?,
            topology: serde::__field(map, "topology")?,
        })
    }
}

impl Scenario {
    /// A paper-default cell for the given design, workload and strategy.
    pub fn new(design: SystemDesign, benchmark: Benchmark, strategy: ParallelStrategy) -> Self {
        Scenario {
            design,
            benchmark,
            strategy,
            devices: None,
            batch: None,
            generation: None,
            overrides: Overrides::default(),
            topology: None,
        }
    }

    /// Returns the scenario with a device count (§V-D scaling).
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = Some(devices);
        self
    }

    /// Returns the scenario with a global batch size (Fig. 14).
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Returns the scenario on a historical device generation (Fig. 2).
    pub fn with_generation(mut self, generation: DeviceGeneration) -> Self {
        self.generation = Some(generation);
        self
    }

    /// Returns the scenario with collectives routed as flow batches over
    /// a concrete topology instead of the analytical fabric model.
    pub fn with_topology(mut self, topology: FabricTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Returns the scenario with a PCIe gen4 host interface (§V-B).
    pub fn with_pcie_gen4(mut self) -> Self {
        self.overrides.pcie_gen4 = true;
        self
    }

    /// Returns the scenario on a named faster device model (§V-B).
    pub fn with_device_model(mut self, model: DeviceModel) -> Self {
        self.overrides.device_model = Some(model);
        self
    }

    /// Returns the scenario with activation compression at `ratio` (§V-B).
    ///
    /// # Panics
    ///
    /// Panics unless `ratio` is finite and `>= 1`.
    pub fn with_compression(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio >= 1.0,
            "compression ratio must be finite and >= 1, got {ratio}"
        );
        self.overrides.compression = Some(ratio);
        self
    }

    /// Checks the knobs a *deserialized* scenario may carry (builder
    /// methods and the CLI already reject these, but wire payloads can
    /// say anything). `Err` names the first offending field; the limits
    /// keep one hostile request from panicking — or monopolizing — a
    /// serving thread.
    pub fn validate(&self) -> Result<(), String> {
        const MAX_DEVICES: usize = 65_536;
        const MAX_BATCH: u64 = 1 << 24;
        match self.devices {
            Some(0) => return Err("devices must be >= 1".into()),
            Some(d) if d > MAX_DEVICES => {
                return Err(format!("devices must be <= {MAX_DEVICES} (got {d})"));
            }
            _ => {}
        }
        match self.batch {
            Some(0) => return Err("batch must be >= 1".into()),
            Some(b) if b > MAX_BATCH => {
                return Err(format!("batch must be <= {MAX_BATCH} (got {b})"));
            }
            _ => {}
        }
        if let Some(ratio) = self.overrides.compression {
            if !(ratio.is_finite() && ratio >= 1.0) {
                return Err(format!(
                    "compression ratio must be finite and >= 1 (got {ratio})"
                ));
            }
        }
        // Knob *combinations* can be nonsensical even when each knob is
        // individually in range: a data-parallel batch smaller than the
        // device count leaves workers with nothing to compute (and used
        // to panic deep inside the worker planner on the wire path).
        let devices = self.devices.unwrap_or(PAPER_DEFAULT_DEVICES);
        let batch = self.batch.unwrap_or(PAPER_DEFAULT_BATCH);
        if self.strategy == ParallelStrategy::DataParallel && batch < devices as u64 {
            return Err(format!(
                "data-parallel batch {batch} cannot cover {devices} devices \
                 (batch must be >= the device count)"
            ));
        }
        // Flow-routed fabrics build explicit route tables (one BFS per
        // ring hop); a hostile wire request naming the axis ceiling
        // would spend minutes constructing a fabric nobody measures.
        const MAX_FLOW_DEVICES: usize = 4096;
        if self.topology.is_some() && devices > MAX_FLOW_DEVICES {
            return Err(format!(
                "topology-routed fabrics support at most {MAX_FLOW_DEVICES} devices (got {devices})"
            ));
        }
        Ok(())
    }

    /// Materializes the [`SystemConfig`] this scenario describes.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::new(self.design);
        if let Some(devices) = self.devices {
            cfg = cfg.with_devices(devices);
        }
        if let Some(batch) = self.batch {
            cfg = cfg.with_batch(batch);
        }
        if let Some(generation) = self.generation {
            // Generations already encode sustained throughput, so they
            // replace the calibrated Table II device wholesale (Fig. 2).
            cfg.device = generation.device_config();
        }
        if self.overrides.pcie_gen4 {
            cfg = cfg.with_pcie_gen4();
        }
        if let Some(model) = self.overrides.device_model {
            cfg = cfg.with_device(model.device_config());
        }
        if let Some(ratio) = self.overrides.compression {
            cfg = cfg.with_compression(ratio);
        }
        if let Some(topology) = self.topology {
            cfg = cfg.with_topology(topology);
        }
        cfg
    }

    /// Simulates this cell through the staged pipeline
    /// ([`crate::stages`]): per-stage artifacts (fabric summary, layer
    /// timings, worker plan, overlay schedule, collective costs) are
    /// memoized process-wide, and only the cheap report assembly runs
    /// per call. Bit-identical to
    /// [`simulate_monolithic`](Scenario::simulate_monolithic).
    pub fn simulate(&self) -> IterationReport {
        crate::stages::simulate(self)
    }

    /// Simulates this cell from scratch — every stage artifact rebuilt,
    /// no table touched. The reference the staged pipeline is pinned
    /// against (and the baseline `mcdla stage-bench` measures).
    pub fn simulate_monolithic(&self) -> IterationReport {
        let net = self.benchmark.build();
        IterationSim::new(self.config(), &net, self.strategy).run()
    }

    /// A human-readable cell label — `design/benchmark/strategy`, plus
    /// any non-default knobs — the string `mcdla sweep --filter`
    /// matches against.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcdla_core::{Scenario, SystemDesign};
    /// use mcdla_dnn::Benchmark;
    /// use mcdla_parallel::ParallelStrategy;
    ///
    /// let s = Scenario::new(
    ///     SystemDesign::McDlaBwAware,
    ///     Benchmark::AlexNet,
    ///     ParallelStrategy::DataParallel,
    /// )
    /// .with_batch(128);
    /// assert_eq!(s.label(), "MC-DLA(B)/AlexNet/data-parallel/batch128");
    /// ```
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/{}",
            self.design.name(),
            self.benchmark.name(),
            self.strategy
        );
        if let Some(devices) = self.devices {
            label.push_str(&format!("/dev{devices}"));
        }
        if let Some(batch) = self.batch {
            label.push_str(&format!("/batch{batch}"));
        }
        if let Some(generation) = self.generation {
            label.push_str(&format!("/{generation:?}"));
        }
        if self.overrides.pcie_gen4 {
            label.push_str("/pcie4");
        }
        if let Some(model) = self.overrides.device_model {
            label.push_str(&format!("/{model:?}"));
        }
        if let Some(ratio) = self.overrides.compression {
            label.push_str(&format!("/comp{ratio}"));
        }
        if let Some(topology) = self.topology {
            label.push_str(&format!("/{topology}"));
        }
        label
    }

    /// A stable 64-bit digest of the scenario (FNV-1a over its canonical
    /// JSON encoding) — identical across processes and runs, unlike
    /// `Hash`, so it can name cells in emitted artifacts.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in serde::json::to_string(self).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// A cartesian product of scenario axes, expanded in a deterministic
/// order (benchmark-major, then design, strategy, devices, batch,
/// generation, topology, overrides).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioGrid {
    designs: Vec<SystemDesign>,
    benchmarks: Vec<Benchmark>,
    strategies: Vec<ParallelStrategy>,
    devices: Vec<Option<usize>>,
    batches: Vec<Option<u64>>,
    generations: Vec<Option<DeviceGeneration>>,
    overrides: Vec<Overrides>,
    topologies: Vec<Option<FabricTopology>>,
}

// Hand-written so pre-topology grid payloads (snapshots, scripted
// clients) keep deserializing: a missing `topologies` axis means the
// analytical default, exactly as before the axis existed. The seven
// original axes stay required, as under the derived impl.
impl serde::Deserialize for ScenarioGrid {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", "ScenarioGrid"))?;
        Ok(ScenarioGrid {
            designs: serde::__field(map, "designs")?,
            benchmarks: serde::__field(map, "benchmarks")?,
            strategies: serde::__field(map, "strategies")?,
            devices: serde::__field(map, "devices")?,
            batches: serde::__field(map, "batches")?,
            generations: serde::__field(map, "generations")?,
            overrides: serde::__field(map, "overrides")?,
            topologies: serde::__field::<Option<Vec<Option<FabricTopology>>>>(map, "topologies")?
                .unwrap_or_else(|| vec![None]),
        })
    }
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl ScenarioGrid {
    /// The §V default grid: all six designs, all eight workloads, both
    /// strategies, paper-default knobs — the Fig. 11/13 matrix.
    pub fn paper_default() -> Self {
        ScenarioGrid {
            designs: SystemDesign::ALL.to_vec(),
            benchmarks: Benchmark::ALL.to_vec(),
            strategies: ParallelStrategy::ALL.to_vec(),
            devices: vec![None],
            batches: vec![None],
            generations: vec![None],
            overrides: vec![Overrides::default()],
            topologies: vec![None],
        }
    }

    /// Restricts the design axis.
    pub fn designs(mut self, designs: &[SystemDesign]) -> Self {
        self.designs = designs.to_vec();
        self
    }

    /// Restricts the benchmark axis.
    pub fn benchmarks(mut self, benchmarks: &[Benchmark]) -> Self {
        self.benchmarks = benchmarks.to_vec();
        self
    }

    /// Restricts the strategy axis.
    pub fn strategies(mut self, strategies: &[ParallelStrategy]) -> Self {
        self.strategies = strategies.to_vec();
        self
    }

    /// Sweeps the device-count axis (§V-D).
    pub fn device_counts(mut self, counts: &[usize]) -> Self {
        self.devices = counts.iter().map(|d| Some(*d)).collect();
        self
    }

    /// Sweeps the global-batch axis (Fig. 14).
    pub fn batches(mut self, batches: &[u64]) -> Self {
        self.batches = batches.iter().map(|b| Some(*b)).collect();
        self
    }

    /// Appends device counts to the existing axis, keeping whatever is
    /// already there (the paper default, unless [`ScenarioGrid::device_counts`]
    /// replaced it).
    pub fn extend_device_counts(mut self, counts: &[usize]) -> Self {
        self.devices.extend(counts.iter().map(|d| Some(*d)));
        self
    }

    /// Appends global batches to the existing axis, keeping whatever is
    /// already there (the paper default, unless [`ScenarioGrid::batches`]
    /// replaced it).
    pub fn extend_batches(mut self, batches: &[u64]) -> Self {
        self.batches.extend(batches.iter().map(|b| Some(*b)));
        self
    }

    /// Sweeps the device-generation axis (Fig. 2).
    pub fn generations(mut self, generations: &[DeviceGeneration]) -> Self {
        self.generations = generations.iter().map(|g| Some(*g)).collect();
        self
    }

    /// Sweeps the overrides axis (§V-B studies).
    pub fn overrides(mut self, overrides: &[Overrides]) -> Self {
        self.overrides = overrides.to_vec();
        self
    }

    /// Sweeps the topology axis (flow-routed fabrics).
    pub fn topologies(mut self, topologies: &[FabricTopology]) -> Self {
        self.topologies = topologies.iter().map(|t| Some(*t)).collect();
        self
    }

    /// Appends topologies to the existing axis, keeping whatever is
    /// already there (the analytical default, unless
    /// [`ScenarioGrid::topologies`] replaced it).
    pub fn extend_topologies(mut self, topologies: &[FabricTopology]) -> Self {
        self.topologies.extend(topologies.iter().map(|t| Some(*t)));
        self
    }

    /// Sets the topology axis verbatim, `None` entries selecting the
    /// analytical model — the shape the wire `topologies` axis uses
    /// (`[null, "Ring"]` mixes both fabrics in one grid).
    pub fn topology_axis(mut self, topologies: &[Option<FabricTopology>]) -> Self {
        self.topologies = topologies.to_vec();
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.designs.len()
            * self.benchmarks.len()
            * self.strategies.len()
            * self.devices.len()
            * self.batches.len()
            * self.generations.len()
            * self.overrides.len()
            * self.topologies.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the product into concrete scenarios.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for &benchmark in &self.benchmarks {
            for &design in &self.designs {
                for &strategy in &self.strategies {
                    for &devices in &self.devices {
                        for &batch in &self.batches {
                            for &generation in &self.generations {
                                for &topology in &self.topologies {
                                    for &overrides in &self.overrides {
                                        out.push(Scenario {
                                            design,
                                            benchmark,
                                            strategy,
                                            devices,
                                            batch,
                                            generation,
                                            overrides,
                                            topology,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One grid cell's execution record, as produced by
/// [`Runner::run_grid_timed`] and [`Runner::run_grid_streaming`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRun {
    /// The cell that ran.
    pub scenario: Scenario,
    /// Its simulation result.
    pub report: IterationReport,
    /// Wall-clock time this cell cost *this* call (zero-ish for memoized
    /// cells).
    pub wall: Duration,
    /// True when the result came from the memo cache.
    pub cached: bool,
}

/// Executes scenarios across scoped worker threads, memoizing through a
/// shared [`ResultStore`].
///
/// The simulator is a pure function of the scenario, so the runner
/// deduplicates cells (within a grid *and* across calls, via the store's
/// cache and single-flight layers) and fans fresh cells out to `threads`
/// workers. Results are bit-identical to serial execution regardless of
/// thread count — the engine carries no shared mutable state — which
/// `tests/scenario_runner.rs` pins.
///
/// A runner built with [`Runner::new`]/[`Runner::with_threads`] owns an
/// unbounded private store (the original batch behaviour);
/// [`Runner::with_store`] shares a caller-provided store, which is how
/// `mcdla-serve` makes its HTTP handlers and batch grids hit one cache.
///
/// The thread count defaults to the `MCDLA_THREADS` environment variable
/// when set, else the machine's available parallelism.
#[derive(Debug)]
pub struct Runner {
    threads: usize,
    store: Arc<ResultStore>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner with the default thread count (`MCDLA_THREADS` or the
    /// machine's available parallelism).
    pub fn new() -> Self {
        Self::with_threads(default_threads())
    }

    /// A runner with an explicit worker-thread count (clamped to >= 1)
    /// and a private unbounded store.
    pub fn with_threads(threads: usize) -> Self {
        Self::with_store(threads, Arc::new(ResultStore::unbounded()))
    }

    /// A runner memoizing through a shared, caller-owned store (which
    /// may be capacity-bounded and/or snapshot-warmed).
    pub fn with_store(threads: usize, store: Arc<ResultStore>) -> Self {
        Runner {
            threads: threads.max(1),
            store,
        }
    }

    /// Worker threads used by [`Runner::run_grid`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The result store this runner memoizes through.
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.store
    }

    /// Cells served from the memo cache so far (including requests
    /// coalesced onto another caller's in-flight simulation).
    pub fn cache_hits(&self) -> usize {
        self.store.hits() as usize
    }

    /// Cells actually simulated so far.
    pub fn cache_misses(&self) -> usize {
        self.store.misses() as usize
    }

    /// Cells evicted from a capacity-bounded store so far.
    pub fn cache_evictions(&self) -> usize {
        self.store.evictions() as usize
    }

    /// Requests that blocked on another caller's in-flight simulation of
    /// the same cell (the single-flight dedup counter).
    pub fn dedup_waits(&self) -> usize {
        self.store.dedup_waits() as usize
    }

    /// Distinct cells currently memoized.
    pub fn cache_len(&self) -> usize {
        self.store.len()
    }

    /// Runs one cell, memoized and single-flighted through the store.
    pub fn run(&self, scenario: Scenario) -> IterationReport {
        self.store
            .get_or_compute(scenario, || scenario.simulate())
            .report
    }

    /// Runs a batch of cells, deduplicated and fanned out across the
    /// runner's worker threads; the result order matches the input order.
    pub fn run_grid(&self, scenarios: &[Scenario]) -> Vec<IterationReport> {
        self.run_grid_timed(scenarios)
            .into_iter()
            .map(|t| t.report)
            .collect()
    }

    /// Like [`Runner::run_grid`], additionally reporting per-cell
    /// wall-clock cost and cache provenance (the `mcdla sweep` payload).
    ///
    /// Every cell goes through [`ResultStore::get_or_compute`], so
    /// repeats within the batch, cells cached by earlier calls, and
    /// cells another thread (or another process sharing the store) is
    /// already simulating are all served without re-simulating.
    pub fn run_grid_timed(&self, scenarios: &[Scenario]) -> Vec<TimedRun> {
        let run_one = |s: &Scenario| timed_cell(&self.store, s);

        if scenarios.len() <= 1 || self.threads == 1 {
            return scenarios.iter().map(run_one).collect();
        }

        // Fan the cells out to scoped workers over a shared index; the
        // store's single-flight layer keeps duplicate cells to one
        // simulation even when two workers pick them up concurrently.
        let slots: Vec<OnceLock<TimedRun>> = scenarios.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(scenarios.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = scenarios.get(i) else { break };
                    slots[i]
                        .set(run_one(s))
                        .expect("each slot is filled exactly once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker filled every slot"))
            .collect()
    }

    /// Streams a grid: cells flow out of a **bounded** channel as workers
    /// finish, so a 5,000-cell sweep never materializes a whole-grid
    /// `Vec<TimedRun>` — peak buffering is `buffer` cells plus one
    /// in-flight cell per worker.
    ///
    /// Workers steal cells from a shared index (exactly like
    /// [`Runner::run_grid_timed`]) and memoize through the same shared
    /// [`ResultStore`], so a streamed grid and a batch grid produce
    /// identical per-cell reports; only the *yield order* differs —
    /// completion order, not input order. A full channel applies
    /// backpressure to the workers; dropping the stream early cancels the
    /// remaining work (workers exit on the closed channel).
    ///
    /// # Panics
    ///
    /// A worker that panics mid-simulation (after the store's
    /// single-flight layer has handed its cell to a retrying waiter) has
    /// its panic re-raised on the consuming thread once the stream
    /// drains.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcdla_core::{Runner, ScenarioGrid};
    ///
    /// let runner = Runner::with_threads(2);
    /// let cells = ScenarioGrid::paper_default()
    ///     .benchmarks(&[mcdla_dnn::Benchmark::AlexNet])
    ///     .scenarios();
    /// let n = cells.len();
    /// assert_eq!(runner.run_grid_streaming(cells, 4).count(), n);
    /// ```
    pub fn run_grid_streaming(&self, scenarios: Vec<Scenario>, buffer: usize) -> GridStream {
        let (tx, rx) = std::sync::mpsc::sync_channel(buffer.max(1));
        let cells = Arc::new(scenarios);
        let next = Arc::new(AtomicUsize::new(0));
        let workers = (0..self.threads.min(cells.len()).max(1))
            .map(|i| {
                let tx = tx.clone();
                let cells = Arc::clone(&cells);
                let next = Arc::clone(&next);
                let store = Arc::clone(&self.store);
                std::thread::Builder::new()
                    .name(format!("mcdla-grid-stream-{i}"))
                    .spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(s) = cells.get(i) else { break };
                        // A closed channel means the consumer dropped the
                        // stream: stop stealing cells.
                        if tx.send(timed_cell(&store, s)).is_err() {
                            break;
                        }
                    })
                    .expect("spawn grid-stream worker")
            })
            .collect();
        GridStream {
            rx: Some(rx),
            workers,
        }
    }
}

/// Runs one cell through a store, timing it and tagging provenance.
fn timed_cell(store: &ResultStore, s: &Scenario) -> TimedRun {
    let start = Instant::now();
    let fetched = store.get_or_compute(*s, || s.simulate());
    let computed = fetched.provenance == Provenance::Computed;
    TimedRun {
        scenario: *s,
        report: fetched.report,
        wall: if computed {
            start.elapsed()
        } else {
            Duration::ZERO
        },
        cached: !computed,
    }
}

/// The live output of [`Runner::run_grid_streaming`]: an iterator of
/// [`TimedRun`] cells in completion order, backed by worker threads and a
/// bounded channel.
///
/// Dropping the stream before exhaustion cancels the remaining cells (in
/// addition to closing the channel, the drop joins the workers, so no
/// simulation outlives the stream).
#[derive(Debug)]
pub struct GridStream {
    rx: Option<std::sync::mpsc::Receiver<TimedRun>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl GridStream {
    /// Joins the worker pool, re-raising the first worker panic.
    fn join_workers(&mut self) {
        self.rx = None;
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for w in self.workers.drain(..) {
            if let Err(p) = w.join() {
                panic.get_or_insert(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    }
}

impl Iterator for GridStream {
    type Item = TimedRun;

    fn next(&mut self) -> Option<TimedRun> {
        match self.rx.as_ref()?.recv() {
            Ok(run) => Some(run),
            Err(_) => {
                // Every sender is gone: the grid is drained (or a worker
                // died — surface its panic instead of silence).
                self.join_workers();
                None
            }
        }
    }
}

impl Drop for GridStream {
    fn drop(&mut self) {
        // Close the channel first so workers blocked on a full buffer
        // observe the disconnect and exit; never double-panic in drop.
        self.rx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn default_threads() -> usize {
    threads_from(std::env::var("MCDLA_THREADS").ok().as_deref())
}

/// Resolves a thread count from an `MCDLA_THREADS`-style value, falling
/// back to the machine's available parallelism (kept separate from the
/// environment read so tests never have to mutate process-global state).
fn threads_from(env_value: Option<&str>) -> usize {
    if let Some(v) = env_value {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide runner the [`crate::experiment`] helpers share, so
/// every figure/table reuses previously simulated cells.
pub fn global_runner() -> &'static Runner {
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    RUNNER.get_or_init(Runner::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Scenario {
        Scenario::new(
            SystemDesign::DcDla,
            Benchmark::AlexNet,
            ParallelStrategy::DataParallel,
        )
    }

    #[test]
    fn config_matches_hand_built() {
        let s = cell().with_devices(4).with_batch(128).with_pcie_gen4();
        let by_hand = SystemConfig::new(SystemDesign::DcDla)
            .with_devices(4)
            .with_batch(128)
            .with_pcie_gen4();
        assert_eq!(s.config(), by_hand);
    }

    #[test]
    fn generation_replaces_the_calibrated_device() {
        let s = cell()
            .with_devices(1)
            .with_generation(DeviceGeneration::Volta);
        let cfg = s.config();
        assert_eq!(cfg.device, DeviceGeneration::Volta.device_config());
        assert_eq!(cfg.devices, 1);
    }

    #[test]
    fn device_model_preserves_calibration() {
        let cfg = cell().with_device_model(DeviceModel::TpuV2Like).config();
        assert_eq!(cfg.device.name, "tpuv2-like");
        // SystemConfig::new calibrates sustained_efficiency to 0.75 and
        // with_device preserves it.
        assert_eq!(cfg.device.sustained_efficiency, 0.75);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn rejects_sub_unity_compression() {
        let _ = cell().with_compression(0.5);
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let a = cell();
        assert_eq!(a.digest(), a.digest());
        assert_ne!(a.digest(), a.with_batch(128).digest());
        assert_ne!(a.digest(), a.with_pcie_gen4().digest());
    }

    #[test]
    fn grid_len_matches_expansion() {
        let grid = ScenarioGrid::paper_default()
            .designs(&[SystemDesign::DcDla, SystemDesign::McDlaBwAware])
            .benchmarks(&[Benchmark::AlexNet])
            .batches(&[128, 512])
            .device_counts(&[2, 4, 8]);
        assert_eq!(grid.len(), 2 * 2 * 2 * 3);
        assert_eq!(grid.scenarios().len(), grid.len());
    }

    #[test]
    fn threads_from_parses_env_values() {
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 7 ")), 7);
        // Garbage and zero fall back to machine parallelism (>= 1).
        assert!(threads_from(Some("0")) >= 1);
        assert!(threads_from(Some("abc")) >= 1);
        assert!(threads_from(None) >= 1);
    }

    #[test]
    fn hostile_compression_values_still_key_the_cache_coherently() {
        // `with_compression` rejects NaN, but the public field cannot;
        // equality/hashing must stay consistent so the memo cache never
        // loses an inserted entry.
        let mut a = cell();
        a.overrides.compression = Some(f64::NAN);
        assert_eq!(a, a);
        let grid_cells = [a, a];
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(grid_cells[0]));
        assert!(!seen.insert(grid_cells[1]));
    }

    #[test]
    fn extend_keeps_the_default_axis_values() {
        let grid = ScenarioGrid::paper_default()
            .extend_batches(&[128])
            .extend_device_counts(&[4]);
        // Default (None) + the extension on both axes.
        assert_eq!(grid.len(), 6 * 8 * 2 * 2 * 2);
        let cells = grid.scenarios();
        assert!(cells.iter().any(|s| s.batch.is_none()));
        assert!(cells.iter().any(|s| s.batch == Some(128)));
        assert!(cells.iter().any(|s| s.devices.is_none()));
        assert!(cells.iter().any(|s| s.devices == Some(4)));
    }

    #[test]
    fn sparse_wire_scenarios_take_paper_defaults() {
        // Every top-level field is optional on the wire.
        let sparse: Scenario =
            serde::json::from_str(r#"{"benchmark":"AlexNet","design":"McDlaBwAware"}"#).unwrap();
        assert_eq!(sparse.strategy, ParallelStrategy::DataParallel);
        assert_eq!(sparse.devices, None);
        assert_eq!(sparse.batch, None);
        assert!(sparse.validate().is_ok());
        let empty: Scenario = serde::json::from_str("{}").unwrap();
        assert_eq!(empty, Scenario::default());
        assert_eq!(empty.design, SystemDesign::McDlaBwAware);
        assert_eq!(empty.benchmark, Benchmark::AlexNet);
        // Present-but-wrong fields still error.
        assert!(serde::json::from_str::<Scenario>(r#"{"devices":"many"}"#).is_err());
        // With every field optional, a typo'd key must be rejected, not
        // silently resolved to the default cell.
        let err = serde::json::from_str::<Scenario>(r#"{"benchmrk":"GoogLeNet"}"#)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown Scenario field `benchmrk`"), "{err}");
        assert!(err.contains("benchmark"), "{err}");
        // Same inside the nested overrides object: a misspelled knob
        // must not be silently dropped from the simulated cell.
        let err = serde::json::from_str::<Scenario>(r#"{"overrides":{"compresssion":2.6}}"#)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("unknown Overrides field `compresssion`"),
            "{err}"
        );
        assert!(err.contains("compression"), "{err}");
    }

    #[test]
    fn wire_enums_accept_paper_labels_case_insensitively() {
        let aliased: Scenario = serde::json::from_str(
            r#"{"design":"mc-dla(b)","strategy":"Data-Parallel","generation":"tpuv2"}"#,
        )
        .unwrap();
        assert_eq!(aliased.design, SystemDesign::McDlaBwAware);
        assert_eq!(aliased.strategy, ParallelStrategy::DataParallel);
        assert_eq!(aliased.generation, Some(DeviceGeneration::TpuV2));
        // Aliases key the cache identically to wire names.
        let canonical: Scenario =
            serde::json::from_str(r#"{"design":"McDlaBwAware","generation":"TpuV2"}"#).unwrap();
        assert_eq!(aliased, canonical);
        assert_eq!(aliased.digest(), canonical.digest());
    }

    #[test]
    fn unknown_enum_values_list_the_accepted_names() {
        let err = serde::json::from_str::<Scenario>(r#"{"design":"mcdla"}"#)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown SystemDesign `mcdla`"), "{err}");
        assert!(err.contains("McDlaBwAware"), "{err}");
        assert!(err.contains("MC-DLA(B)"), "{err}");
        let err = serde::json::from_str::<Scenario>(r#"{"strategy":"dp"}"#)
            .unwrap_err()
            .to_string();
        assert!(err.contains("DataParallel"), "{err}");
        assert!(err.contains("data-parallel"), "{err}");
        let err = serde::json::from_str::<Scenario>(r#"{"generation":"Ampere"}"#)
            .unwrap_err()
            .to_string();
        assert!(err.contains("Kepler"), "{err}");
        assert!(err.contains("TpuV2"), "{err}");
    }

    #[test]
    fn grid_expansion_is_deterministic() {
        let grid = ScenarioGrid::paper_default();
        assert_eq!(grid.scenarios(), grid.scenarios());
    }

    #[test]
    fn labels_are_unique_across_all_axes() {
        // `sweep --filter` addresses cells by label, so two distinct
        // scenarios must never share one. Span every axis — including
        // the topology axis — and check pairwise by map insertion.
        let override_variants = [
            Overrides::default(),
            Overrides {
                pcie_gen4: true,
                ..Overrides::default()
            },
            Overrides {
                device_model: Some(DeviceModel::TpuV2Like),
                ..Overrides::default()
            },
            Overrides {
                device_model: Some(DeviceModel::Dgx2Like),
                ..Overrides::default()
            },
            Overrides {
                compression: Some(2.6),
                ..Overrides::default()
            },
        ];
        let mut generations = vec![None];
        generations.extend(DeviceGeneration::ALL.iter().map(|g| Some(*g)));
        let mut topologies = vec![None];
        topologies.extend(FabricTopology::ALL.iter().map(|t| Some(*t)));
        let mut seen: std::collections::HashMap<String, Scenario> =
            std::collections::HashMap::new();
        for design in SystemDesign::ALL {
            for &benchmark in &[Benchmark::AlexNet, Benchmark::VggE] {
                for strategy in ParallelStrategy::ALL {
                    for devices in [None, Some(2), Some(64)] {
                        for batch in [None, Some(128)] {
                            for &generation in &generations {
                                for &topology in &topologies {
                                    for overrides in override_variants {
                                        let s = Scenario {
                                            design,
                                            benchmark,
                                            strategy,
                                            devices,
                                            batch,
                                            generation,
                                            overrides,
                                            topology,
                                        };
                                        if let Some(dup) = seen.insert(s.label(), s) {
                                            panic!(
                                                "label collision `{}`: {dup:?} vs {s:?}",
                                                s.label()
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn topology_round_trips_on_the_wire() {
        let s: Scenario = serde::json::from_str(r#"{"topology":"pooled-switch"}"#).unwrap();
        assert_eq!(s.topology, Some(FabricTopology::PooledSwitch));
        // Wire names and labels alias the same cell, case-insensitively.
        let canonical: Scenario = serde::json::from_str(r#"{"topology":"PooledSwitch"}"#).unwrap();
        assert_eq!(s, canonical);
        // Unknown topologies are rejected with the accepted names.
        let err = serde::json::from_str::<Scenario>(r#"{"topology":"torus"}"#)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown FabricTopology `torus`"), "{err}");
        assert!(err.contains("pooled-switch"), "{err}");
        assert!(err.contains("FatTree"), "{err}");
        // Round trip through the canonical encoding.
        let json = serde::json::to_string(&s);
        let back: Scenario = serde::json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn topology_unset_keeps_the_pre_axis_encoding() {
        // The canonical encoding — and therefore every published digest
        // — must not change for pre-topology cells: the key is emitted
        // only when set.
        let json = serde::json::to_string(&cell());
        assert!(!json.contains("topology"), "{json}");
        assert_ne!(
            cell().digest(),
            cell().with_topology(FabricTopology::Ring).digest()
        );
        // Each topology keys its own cell.
        let digests: std::collections::HashSet<u64> = FabricTopology::ALL
            .iter()
            .map(|t| cell().with_topology(*t).digest())
            .collect();
        assert_eq!(digests.len(), FabricTopology::ALL.len());
    }

    #[test]
    fn validate_bounds_flow_routed_device_counts() {
        // Route-table construction is superlinear in devices; the wire
        // must not be able to stall a serving thread with a mega-fabric.
        let mut s = cell().with_devices(8192).with_batch(1 << 20);
        s.strategy = ParallelStrategy::ModelParallel;
        assert!(s.validate().is_ok());
        s.topology = Some(FabricTopology::Mesh);
        let err = s.validate().unwrap_err();
        assert!(err.contains("at most 4096"), "{err}");
        s = cell()
            .with_devices(4096)
            .with_batch(1 << 20)
            .with_topology(FabricTopology::Mesh);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn grid_topology_axis_expands_and_deserializes() {
        let grid = ScenarioGrid::paper_default()
            .designs(&[SystemDesign::DcDla])
            .benchmarks(&[Benchmark::AlexNet])
            .extend_topologies(&[FabricTopology::Ring, FabricTopology::FatTree]);
        // Default (analytical) + the two extensions.
        assert_eq!(grid.len(), 2 * 3);
        let cells = grid.scenarios();
        assert!(cells.iter().any(|s| s.topology.is_none()));
        assert!(cells
            .iter()
            .any(|s| s.topology == Some(FabricTopology::FatTree)));
        // Pre-topology grid payloads still deserialize (missing axis =
        // analytical default), and the new axis round-trips.
        let legacy = r#"{"designs":["DcDla"],"benchmarks":["AlexNet"],
            "strategies":["DataParallel"],"devices":[null],"batches":[null],
            "generations":[null],"overrides":[{}]}"#;
        let parsed: ScenarioGrid = serde::json::from_str(legacy).unwrap();
        assert_eq!(parsed.topologies, vec![None]);
        let json = serde::json::to_string(&grid);
        let back: ScenarioGrid = serde::json::from_str(&json).unwrap();
        assert_eq!(back, grid);
    }

    #[test]
    fn runner_dedupes_within_a_batch() {
        let runner = Runner::with_threads(2);
        let s = cell();
        let out = runner.run_grid(&[s, s, s]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[1]);
        assert_eq!(runner.cache_misses(), 1);
        assert_eq!(runner.cache_hits(), 2);
    }

    #[test]
    fn validate_rejects_nonsensical_batch_device_combinations() {
        // Individually fine knobs, nonsensical together: DP batch < devices.
        let s = cell().with_devices(256).with_batch(64);
        assert!(s.validate().unwrap_err().contains("cannot cover"));
        // The default batch (512) cannot cover 1024 devices either.
        assert!(cell().with_devices(1024).validate().is_err());
        // Model-parallel replicates the batch, so the combination is fine.
        let mut mp = s;
        mp.strategy = ParallelStrategy::ModelParallel;
        assert!(mp.validate().is_ok());
        // Paper-default and scale-out-sane cells pass.
        assert!(cell().validate().is_ok());
        assert!(cell().with_devices(256).validate().is_ok());
    }

    #[test]
    fn streaming_matches_batch_cell_for_cell() {
        let grid = ScenarioGrid::paper_default()
            .designs(&[SystemDesign::DcDla, SystemDesign::McDlaBwAware])
            .benchmarks(&[Benchmark::AlexNet])
            .device_counts(&[8, 16]);
        let cells = grid.scenarios();
        let batch = Runner::with_threads(2).run_grid_timed(&cells);
        let streamed: Vec<TimedRun> = Runner::with_threads(2)
            .run_grid_streaming(cells.clone(), 2)
            .collect();
        assert_eq!(streamed.len(), batch.len());
        // Completion order may differ; reports must match per scenario.
        for b in &batch {
            let s = streamed
                .iter()
                .find(|t| t.scenario == b.scenario)
                .expect("every batch cell streams");
            assert_eq!(s.report, b.report);
            assert_eq!(s.cached, b.cached);
        }
    }

    #[test]
    fn dropping_a_stream_cancels_cleanly() {
        let runner = Runner::with_threads(2);
        let cells = ScenarioGrid::paper_default().scenarios();
        let mut stream = runner.run_grid_streaming(cells, 1);
        // Take two cells, then drop with most of the grid unconsumed:
        // workers must unblock from the full channel and exit.
        assert!(stream.next().is_some());
        assert!(stream.next().is_some());
        drop(stream);
        // The runner (and its store) remain usable.
        let _ = runner.run(cell());
        assert!(runner.cache_misses() >= 1);
    }

    #[test]
    fn streaming_memoizes_through_the_shared_store() {
        let store = Arc::new(ResultStore::unbounded());
        let runner = Runner::with_store(2, store.clone());
        let s = cell();
        let first: Vec<TimedRun> = runner.run_grid_streaming(vec![s], 4).collect();
        assert!(!first[0].cached);
        let second: Vec<TimedRun> = runner.run_grid_streaming(vec![s], 4).collect();
        assert!(second[0].cached);
        assert_eq!(second[0].wall, Duration::ZERO);
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn timed_runs_flag_cache_provenance() {
        let runner = Runner::with_threads(1);
        let s = cell();
        let first = runner.run_grid_timed(&[s]);
        assert!(!first[0].cached);
        let second = runner.run_grid_timed(&[s]);
        assert!(second[0].cached);
        assert_eq!(second[0].wall, Duration::ZERO);
        assert_eq!(first[0].report, second[0].report);
    }
}
