//! Per-iteration energy accounting (§V-C, dynamic variant).
//!
//! The paper's §V-C argues from TDPs: MC-DLA adds 7%–31% system power for
//! a 2.8× speedup, netting 2.1×–2.6× perf/W. This module computes the same
//! quantity from *simulated* iteration timelines instead of static TDPs:
//! devices draw their TDP while the PE array is busy and an idle floor
//! otherwise, memory-nodes and the chassis draw constant power, and energy
//! is power integrated over the measured iteration.

use mcdla_memnode::{MemoryNodeConfig, DGX_GPU_TDP_WATTS, DGX_SYSTEM_TDP_WATTS};
use serde::{Deserialize, Serialize};

use crate::report::IterationReport;

/// Power parameters of the energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Per-device TDP in watts (V100-class: 300 W).
    pub device_tdp_watts: f64,
    /// Per-device idle draw in watts.
    pub device_idle_watts: f64,
    /// Chassis (CPUs, fans, storage) draw in watts.
    pub chassis_watts: f64,
    /// Per-memory-node draw in watts (0 for DC/HC designs).
    pub memnode_watts: f64,
    /// Memory-node count.
    pub memnode_count: usize,
}

impl PowerModel {
    /// DGX-class baseline: eight 300 W devices inside a 3,200 W system.
    pub fn dgx_baseline() -> Self {
        PowerModel {
            device_tdp_watts: DGX_GPU_TDP_WATTS / 8.0,
            device_idle_watts: 60.0,
            chassis_watts: DGX_SYSTEM_TDP_WATTS - DGX_GPU_TDP_WATTS,
            memnode_watts: 0.0,
            memnode_count: 0,
        }
    }

    /// MC-DLA system: the DGX baseline plus `count` memory-nodes of the
    /// given configuration.
    pub fn mc_dla(node: &MemoryNodeConfig, count: usize) -> Self {
        PowerModel {
            memnode_watts: node.tdp_watts(),
            memnode_count: count,
            ..PowerModel::dgx_baseline()
        }
    }
}

/// Energy consumed by one training iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Device energy (busy at TDP, idle at the floor), all devices.
    pub device_joules: f64,
    /// Memory-node energy.
    pub memnode_joules: f64,
    /// Chassis energy.
    pub chassis_joules: f64,
}

impl EnergyReport {
    /// Computes the energy of `report` under `power`.
    pub fn from_iteration(report: &IterationReport, power: &PowerModel) -> Self {
        let t = report.iteration_time.as_secs_f64();
        let busy = report.compute_busy.as_secs_f64().min(t);
        let idle = (t - busy).max(0.0);
        let per_device = busy * power.device_tdp_watts + idle * power.device_idle_watts;
        EnergyReport {
            device_joules: per_device * report.devices as f64,
            memnode_joules: power.memnode_watts * power.memnode_count as f64 * t,
            chassis_joules: power.chassis_watts * t,
        }
    }

    /// Total joules per iteration.
    pub fn total_joules(&self) -> f64 {
        self.device_joules + self.memnode_joules + self.chassis_joules
    }

    /// Training throughput per watt relative to another (report, energy)
    /// pair: `(E_other / E_self) * (T_other / T_self)`-free formulation —
    /// iterations per joule ratio.
    pub fn perf_per_watt_vs(&self, other: &EnergyReport) -> f64 {
        other.total_joules() / self.total_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SystemDesign;
    use crate::experiment::simulate;
    use mcdla_dnn::Benchmark;
    use mcdla_memnode::DimmKind;
    use mcdla_parallel::ParallelStrategy;

    #[test]
    fn mc_dla_wins_energy_per_iteration() {
        // MC-DLA finishes iterations so much faster that it consumes less
        // energy per iteration despite the added memory-node power.
        let dc = simulate(
            SystemDesign::DcDla,
            Benchmark::VggE,
            ParallelStrategy::DataParallel,
        );
        let mc = simulate(
            SystemDesign::McDlaBwAware,
            Benchmark::VggE,
            ParallelStrategy::DataParallel,
        );
        let node = MemoryNodeConfig::with_dimm(DimmKind::Lrdimm128);
        let e_dc = EnergyReport::from_iteration(&dc, &PowerModel::dgx_baseline());
        let e_mc = EnergyReport::from_iteration(&mc, &PowerModel::mc_dla(&node, 8));
        assert!(e_mc.total_joules() < e_dc.total_joules());
        assert!(e_mc.perf_per_watt_vs(&e_dc) > 1.5);
    }

    #[test]
    fn energy_components_are_positive_and_additive() {
        let r = simulate(
            SystemDesign::McDlaBwAware,
            Benchmark::ResNet,
            ParallelStrategy::DataParallel,
        );
        let node = MemoryNodeConfig::with_dimm(DimmKind::Rdimm8);
        let e = EnergyReport::from_iteration(&r, &PowerModel::mc_dla(&node, 8));
        assert!(e.device_joules > 0.0);
        assert!(e.memnode_joules > 0.0);
        assert!(e.chassis_joules > 0.0);
        let sum = e.device_joules + e.memnode_joules + e.chassis_joules;
        assert!((e.total_joules() - sum).abs() < 1e-12);
    }

    #[test]
    fn idle_heavy_designs_draw_below_tdp() {
        // DC-DLA's devices idle while waiting on PCIe; average device power
        // must sit between the idle floor and TDP.
        let r = simulate(
            SystemDesign::DcDla,
            Benchmark::VggE,
            ParallelStrategy::DataParallel,
        );
        let p = PowerModel::dgx_baseline();
        let e = EnergyReport::from_iteration(&r, &p);
        let avg_w = e.device_joules / (r.iteration_time.as_secs_f64() * r.devices as f64);
        assert!(
            avg_w > p.device_idle_watts && avg_w < p.device_tdp_watts,
            "{avg_w}"
        );
    }
}
