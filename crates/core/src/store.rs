//! The shared scenario-result store: a sharded, capacity-bounded,
//! LRU-evicting map from [`Scenario`] to [`IterationReport`] with
//! single-flight deduplication and JSON snapshot/restore — plus the
//! generic [`StageCache`] the staged engine's per-stage memo tables
//! (see [`crate::stages`]) are built on.
//!
//! [`Runner`](crate::Runner) memoizes through a [`ResultStore`], and the
//! `mcdla-serve` service shares the *same* store between its HTTP
//! handlers and any embedded batch work, so a cell simulated anywhere is
//! a cache hit everywhere. The store is built for long-lived,
//! many-caller processes:
//!
//! * **Sharded** — keys spread over independently locked shards, so
//!   concurrent lookups of different cells never contend on one mutex.
//! * **Bounded** — an optional capacity triggers least-recently-used
//!   eviction, accounted **globally** across all shards: total residency
//!   never exceeds the configured capacity — not transiently, not under
//!   concurrent inserts, not when a snapshot larger than the bound is
//!   restored — keeping a service's footprint flat no matter how many
//!   distinct cells it has ever served. (Capacities smaller than the
//!   shard count work; sharding spreads locks, it does not partition the
//!   budget.)
//! * **Single-flight** — concurrent requests for the same *uncomputed*
//!   cell trigger exactly one simulation; the extra callers block on the
//!   leader's flight and share its result.
//! * **Warmable** — the full contents serialize to a deterministic JSON
//!   snapshot and restore into a fresh store, so a restarted service
//!   answers its first requests from cache.
//!
//! All of the mechanics except snapshotting live in [`StageCache`],
//! which is generic over key and value; [`ResultStore`] is the
//! `Scenario` → `IterationReport` instantiation plus warm restore.
//!
//! # Examples
//!
//! ```
//! use mcdla_core::{Provenance, ResultStore, Scenario, SystemDesign};
//! use mcdla_dnn::Benchmark;
//! use mcdla_parallel::ParallelStrategy;
//!
//! let store = ResultStore::unbounded();
//! let cell = Scenario::new(
//!     SystemDesign::DcDla,
//!     Benchmark::AlexNet,
//!     ParallelStrategy::DataParallel,
//! );
//! let first = store.get_or_compute(cell, || cell.simulate());
//! assert_eq!(first.provenance, Provenance::Computed);
//! let again = store.get_or_compute(cell, || cell.simulate());
//! assert_eq!(again.provenance, Provenance::Cached);
//! assert_eq!(first.report, again.report);
//!
//! // Snapshot and warm a second store.
//! let snapshot = store.snapshot_json();
//! let warmed = ResultStore::unbounded();
//! assert_eq!(warmed.restore_json(&snapshot), Ok(1));
//! assert_eq!(warmed.get(&cell).as_ref(), Some(&first.report));
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use serde::{Deserialize, Serialize};

use crate::report::IterationReport;
use crate::scenario::Scenario;

/// Default shard count — plenty of lock spread for a few dozen worker
/// threads while keeping an eviction scan short.
pub const DEFAULT_SHARDS: usize = 16;

/// The canonical 64-bit hash a [`StageCache`] shards its keys by.
/// `DefaultHasher::new()` uses fixed keys, so the hash is stable across
/// processes and runs.
fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// The canonical store key hash of a scenario: the exact 64-bit value
/// the [`ResultStore`] shards by. `DefaultHasher::new()` uses fixed
/// keys, so the hash is stable across processes and runs — `mcdla-serve`
/// snapshots restore into the same shards they came from, and the
/// `mcdla-cluster` gateway routes a scenario to the same worker that any
/// other gateway (or a restarted one) would pick.
pub fn key_hash(scenario: &Scenario) -> u64 {
    hash_of(scenario)
}

/// Where a [`Fetched`] report came from.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// This call ran the simulation (a cache miss; it led the flight).
    Computed,
    /// Another in-flight call was already simulating the cell; this call
    /// waited and shares its result.
    Coalesced,
    /// Served straight from the cache.
    Cached,
}

/// A report plus how the store obtained it.
#[derive(Debug, Clone, PartialEq)]
pub struct Fetched {
    /// The simulation result.
    pub report: IterationReport,
    /// Cache/flight provenance of this particular call.
    pub provenance: Provenance,
}

/// Counters for one staged-engine memo table, serialized into
/// [`StoreStats::stages`] (and from there into `GET /stats`,
/// `GET /metrics`, and the sweep summary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage name (`fabric`, `network`, `layer_timing`, `plan`,
    /// `schedule`, `collective`, `sync`).
    pub stage: String,
    /// Lookups answered from the table (including coalesced waiters).
    pub hits: u64,
    /// Artifacts actually built.
    pub misses: u64,
    /// Artifacts evicted to stay within the table's capacity.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: u64,
    /// Capacity bound, if any.
    pub capacity: Option<u64>,
    /// `hits / (hits + misses)`, or 0 before any traffic.
    pub hit_rate: f64,
}

/// A point-in-time snapshot of the store's counters, serializable into
/// `mcdla sweep` payloads and the service's `GET /stats` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Requests answered from the cache (including coalesced waiters).
    pub hits: u64,
    /// Cells actually simulated.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Requests that blocked on another caller's in-flight simulation.
    pub dedup_waits: u64,
    /// Simulations currently executing.
    pub in_flight: u64,
    /// Distinct cells currently resident.
    pub entries: u64,
    /// Capacity bound, if any.
    pub capacity: Option<u64>,
    /// Entries loaded from a snapshot rather than simulated here.
    pub warm_loaded: u64,
    /// `hits / (hits + misses)`, or 0 before any traffic.
    pub hit_rate: f64,
    /// Shard count (lock spread, not a capacity partition).
    pub shards: u64,
    /// Resident entries per shard, in shard order.
    pub shard_entries: Vec<u64>,
    /// Occupancy balance: the fullest shard over the mean shard
    /// (`1.0` = perfectly even, `0.0` = empty store).
    pub shard_imbalance: f64,
    /// Counters for the staged engine's per-stage memo tables. The
    /// tables are process-global (every store in the process shares
    /// them), so these are process totals, not per-store.
    pub stages: Vec<StageStats>,
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

enum FlightState<V> {
    Pending,
    Done(V),
    /// The leader panicked; waiters retry (one becomes the new leader).
    Failed,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

impl<V: Clone> Flight<V> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    /// Blocks until the flight lands; `None` means the leader failed.
    fn wait(&self) -> Option<V> {
        let mut state = self.state.lock().expect("flight lock");
        while matches!(*state, FlightState::Pending) {
            state = self.done.wait(state).expect("flight wait");
        }
        match &*state {
            FlightState::Done(value) => Some(value.clone()),
            FlightState::Failed => None,
            FlightState::Pending => unreachable!("wait loop exits only on a terminal state"),
        }
    }

    fn land(&self, state: FlightState<V>) {
        *self.state.lock().expect("flight lock") = state;
        self.done.notify_all();
    }
}

struct Shard<K, V> {
    cells: HashMap<K, Entry<V>>,
    flights: HashMap<K, Arc<Flight<V>>>,
    /// Recency index: `last_used` tick → key, mirroring `cells` exactly
    /// (ticks are globally unique). Keeps LRU eviction at
    /// `O(shards · log n)` instead of a scan over every resident entry —
    /// a mega-grid sweep overflows a bounded table on nearly every
    /// insert, so eviction sits on the hot path.
    by_tick: BTreeMap<u64, K>,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            cells: HashMap::new(),
            flights: HashMap::new(),
            by_tick: BTreeMap::new(),
        }
    }
}

impl<K: Copy + Eq + Hash, V> Shard<K, V> {
    /// Moves an entry's recency to `tick`, keeping the index in sync.
    fn touch(&mut self, key: &K, tick: u64) -> Option<&Entry<V>> {
        let entry = self.cells.get_mut(key)?;
        self.by_tick.remove(&entry.last_used);
        entry.last_used = tick;
        self.by_tick.insert(tick, *key);
        Some(entry)
    }

    /// Installs `key → value` at recency `tick`; true when an existing
    /// entry (whose recency slot is reclaimed) was replaced.
    fn install(&mut self, key: K, value: V, tick: u64) -> bool {
        let replaced = self.cells.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        if let Some(old) = &replaced {
            self.by_tick.remove(&old.last_used);
        }
        self.by_tick.insert(tick, key);
        replaced.is_some()
    }
}

/// A sharded, globally capacity-bounded, LRU-evicting, single-flight
/// memo table — the machinery behind [`ResultStore`], generic over key
/// and value so the staged engine's per-stage tables (fabric summaries,
/// layer timings, collective costs; see [`crate::stages`]) reuse the
/// identical concurrency and bounding semantics.
///
/// # Examples
///
/// ```
/// use mcdla_core::{Provenance, StageCache};
///
/// let cache: StageCache<u64, u64> = StageCache::bounded(2);
/// let (v, p) = cache.get_or_compute(7, || 49);
/// assert_eq!((v, p), (49, Provenance::Computed));
/// let (v, p) = cache.get_or_compute(7, || unreachable!("cached"));
/// assert_eq!((v, p), (49, Provenance::Cached));
/// ```
pub struct StageCache<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    /// Total capacity across all shards (`None` = unbounded).
    capacity: Option<usize>,
    /// Resident entries plus not-yet-materialized insert reservations.
    /// The globally enforced budget: a slot is reserved here *before*
    /// an entry becomes visible in any shard and released only *after*
    /// it is removed, so actual residency never exceeds `occupancy`,
    /// and `occupancy` never exceeds `capacity`.
    occupancy: AtomicUsize,
    /// Monotonic LRU clock.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    dedup_waits: AtomicU64,
    in_flight: AtomicU64,
}

impl<K: Copy + Eq + Hash, V: Clone> fmt::Debug for StageCache<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("entries", &self.len())
            .finish()
    }
}

impl<K: Copy + Eq + Hash, V: Clone> Default for StageCache<K, V> {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<K: Copy + Eq + Hash, V: Clone> StageCache<K, V> {
    /// A table with no capacity bound.
    pub fn unbounded() -> Self {
        Self::with_shards(None, DEFAULT_SHARDS)
    }

    /// A table bounded to at most `capacity` entries (LRU-evicting).
    ///
    /// The bound is **global**: however the keys hash across shards, the
    /// table never holds more than `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a table that can hold nothing
    /// cannot satisfy `get_or_compute`.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_shards(Some(capacity), DEFAULT_SHARDS)
    }

    /// A table with an explicit shard count (tests use small counts to
    /// exercise eviction deterministically). The capacity bound, if any,
    /// is global regardless of the shard count.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is `Some(0)`.
    pub fn with_shards(capacity: Option<usize>, shards: usize) -> Self {
        assert!(
            capacity != Some(0),
            "stage-cache capacity must be >= 1 (use None for unbounded)"
        );
        let shards = shards.max(1);
        StageCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            capacity,
            occupancy: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, key: &K) -> usize {
        (hash_of(key) as usize) % self.shards.len()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Lookups answered from the table (including coalesced waiters).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Values actually computed through this table.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lookups that blocked on another caller's in-flight compute.
    pub fn dedup_waits(&self) -> u64 {
        self.dedup_waits.load(Ordering::Relaxed)
    }

    /// Computes currently executing.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Takes every shard lock at once, so cross-shard reads see one
    /// atomic snapshot. Summing one shard at a time would tear: an entry
    /// evicted from an already-counted shard while its replacement lands
    /// in a not-yet-counted one counts twice, and "never observed over
    /// capacity" would be unverifiable. No deadlock risk: every other
    /// path holds at most one shard lock at a time.
    fn lock_all(&self) -> Vec<std::sync::MutexGuard<'_, Shard<K, V>>> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store shard lock"))
            .collect()
    }

    /// Distinct entries currently resident (an atomic cross-shard count).
    pub fn len(&self) -> usize {
        self.lock_all().iter().map(|s| s.cells.len()).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident entries per shard, in shard order, counted atomically.
    pub fn shard_entries(&self) -> Vec<u64> {
        self.lock_all()
            .iter()
            .map(|s| s.cells.len() as u64)
            .collect()
    }

    /// This table's counters under a stage name, for
    /// [`StoreStats::stages`].
    pub fn stats(&self, stage: &str) -> StageStats {
        let hits = self.hits();
        let misses = self.misses();
        StageStats {
            stage: stage.to_owned(),
            hits,
            misses,
            evictions: self.evictions(),
            entries: self.len() as u64,
            capacity: self.capacity.map(|c| c as u64),
            hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
        }
    }

    /// Looks up a key, counting a hit (and refreshing its recency) on
    /// success. Absence is *not* counted as a miss — misses count actual
    /// computes.
    pub fn get(&self, key: &K) -> Option<V> {
        let tick = self.next_tick();
        let mut shard = self.shards[self.shard_index(key)]
            .lock()
            .expect("store shard lock");
        let entry = shard.touch(key, tick)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry.value.clone())
    }

    /// True when the key is resident (no counter or recency effects).
    pub fn contains(&self, key: &K) -> bool {
        self.shards[self.shard_index(key)]
            .lock()
            .expect("store shard lock")
            .cells
            .contains_key(key)
    }

    /// Inserts a value directly (evicting first when at capacity, so
    /// the bound holds at every observable point). Normal traffic goes
    /// through [`StageCache::get_or_compute`].
    pub fn insert(&self, key: K, value: V) {
        let tick = self.next_tick();
        let idx = self.shard_index(&key);
        {
            let mut shard = self.shards[idx].lock().expect("store shard lock");
            let shard = &mut *shard;
            if let Some(entry) = shard.cells.get_mut(&key) {
                entry.value = value;
                shard.by_tick.remove(&entry.last_used);
                entry.last_used = tick;
                shard.by_tick.insert(tick, key);
                return;
            }
        }
        self.reserve_slot();
        let mut shard = self.shards[idx].lock().expect("store shard lock");
        let replaced = shard.install(key, value, tick);
        drop(shard);
        if replaced {
            // Another caller inserted the same key between our presence
            // check and our insert; we replaced it, so give back the
            // extra reservation.
            self.release_slot();
        }
    }

    /// Reserves one slot in the global occupancy budget, evicting the
    /// least-recently-used entry while the table is at capacity. Must be
    /// called with no shard lock held (eviction takes shard locks).
    fn reserve_slot(&self) {
        let Some(cap) = self.capacity else {
            self.occupancy.fetch_add(1, Ordering::Relaxed);
            return;
        };
        loop {
            let cur = self.occupancy.load(Ordering::Acquire);
            if cur < cap {
                if self
                    .occupancy
                    .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            if !self.evict_lru_once() {
                // Every slot is held by a reservation another thread has
                // not yet materialized into a visible entry; the window
                // between its reservation and its insert is a few
                // instructions, so yield and retry.
                std::thread::yield_now();
            }
        }
    }

    /// Releases one occupancy slot (an entry was removed, or a
    /// reservation lost a same-key insert race).
    fn release_slot(&self) {
        self.occupancy.fetch_sub(1, Ordering::AcqRel);
    }

    /// Evicts the globally least-recently-used entry, scanning shard by
    /// shard (locks are taken one at a time, never nested). Returns
    /// false when nothing was evicted — the table is empty, or the
    /// chosen victim was touched/removed between the scan and the
    /// removal (the caller rescans).
    fn evict_lru_once(&self) -> bool {
        let mut oldest: Option<(usize, K, u64)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("store shard lock");
            if let Some((&t, &k)) = shard.by_tick.first_key_value() {
                if oldest.is_none_or(|(_, _, best)| t < best) {
                    oldest = Some((i, k, t));
                }
            }
        }
        let Some((idx, key, tick)) = oldest else {
            return false;
        };
        let mut shard = self.shards[idx].lock().expect("store shard lock");
        match shard.cells.get(&key) {
            Some(entry) if entry.last_used == tick => {
                shard.cells.remove(&key);
                shard.by_tick.remove(&tick);
                drop(shard);
                self.release_slot();
                self.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The table's workhorse: returns the key's value, computing it via
    /// `compute` only if no cached copy exists and no other caller is
    /// already computing it (single-flight).
    ///
    /// `compute` runs with **no locks held**, so slow computes never
    /// block unrelated keys. If the leading caller panics, its waiters
    /// wake and retry (one becomes the new leader); the panic propagates
    /// to the leader's thread as usual.
    pub fn get_or_compute(&self, key: K, compute: impl Fn() -> V) -> (V, Provenance) {
        loop {
            let idx = self.shard_index(&key);
            let lead_or_wait = {
                let mut shard = self.shards[idx].lock().expect("store shard lock");
                let tick = self.next_tick();
                if let Some(entry) = shard.touch(&key, tick) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (entry.value.clone(), Provenance::Cached);
                }
                match shard.flights.get(&key) {
                    Some(flight) => Err(flight.clone()),
                    None => {
                        let flight = Arc::new(Flight::new());
                        shard.flights.insert(key, flight.clone());
                        self.in_flight.fetch_add(1, Ordering::Relaxed);
                        Ok(flight)
                    }
                }
            };
            match lead_or_wait {
                Err(flight) => {
                    self.dedup_waits.fetch_add(1, Ordering::Relaxed);
                    match flight.wait() {
                        Some(value) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return (value, Provenance::Coalesced);
                        }
                        // Leader failed; loop around and try again.
                        None => continue,
                    }
                }
                Ok(flight) => {
                    let guard = FlightGuard {
                        cache: self,
                        key,
                        shard_index: idx,
                        flight,
                        landed: false,
                    };
                    let value = compute();
                    guard.land(value.clone());
                    return (value, Provenance::Computed);
                }
            }
        }
    }
}

/// The sharded, bounded, warmable scenario→report store: a
/// [`StageCache<Scenario, IterationReport>`] plus JSON snapshot/restore.
/// See the [module docs](self) for the design.
pub struct ResultStore {
    inner: StageCache<Scenario, IterationReport>,
    warm_loaded: AtomicU64,
}

impl fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResultStore")
            .field("shards", &self.inner.shards.len())
            .field("capacity", &self.inner.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for ResultStore {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl ResultStore {
    /// A store with no capacity bound (the batch-`Runner` default).
    pub fn unbounded() -> Self {
        Self::with_shards(None, DEFAULT_SHARDS)
    }

    /// A store bounded to at most `capacity` entries (LRU-evicting).
    ///
    /// The bound is **global**: however the keys hash across shards, the
    /// store never holds more than `capacity` entries — a `bounded(4)`
    /// store with the default 16 shards still tops out at 4.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a store that can hold nothing
    /// cannot satisfy `get_or_compute`.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_shards(Some(capacity), DEFAULT_SHARDS)
    }

    /// A store with an explicit shard count (tests use small counts to
    /// exercise eviction deterministically). The capacity bound, if any,
    /// is global regardless of the shard count.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is `Some(0)`.
    pub fn with_shards(capacity: Option<usize>, shards: usize) -> Self {
        assert!(
            capacity != Some(0),
            "result-store capacity must be >= 1 (use None for unbounded)"
        );
        ResultStore {
            inner: StageCache::with_shards(capacity, shards),
            warm_loaded: AtomicU64::new(0),
        }
    }

    /// Requests answered from the cache (including coalesced waiters).
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Cells actually simulated through this store.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Entries evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions()
    }

    /// Requests that blocked on another caller's in-flight simulation.
    pub fn dedup_waits(&self) -> u64 {
        self.inner.dedup_waits()
    }

    /// Entries loaded from snapshots.
    pub fn warm_loaded(&self) -> u64 {
        self.warm_loaded.load(Ordering::Relaxed)
    }

    /// Capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity()
    }

    /// Distinct cells currently resident (an atomic cross-shard count).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no cells are resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Resident entries per shard, in shard order (the occupancy/balance
    /// telemetry behind `GET /stats`), counted atomically.
    pub fn shard_entries(&self) -> Vec<u64> {
        self.inner.shard_entries()
    }

    /// All counters at once, including the staged engine's per-stage
    /// table counters (process-global; see [`crate::stages`]).
    pub fn stats(&self) -> StoreStats {
        let shard_entries = self.shard_entries();
        let entries: u64 = shard_entries.iter().sum();
        let max_shard = shard_entries.iter().copied().max().unwrap_or(0);
        let hits = self.hits();
        let misses = self.misses();
        StoreStats {
            hits,
            misses,
            evictions: self.evictions(),
            dedup_waits: self.dedup_waits(),
            in_flight: self.inner.in_flight(),
            entries,
            capacity: self.capacity().map(|c| c as u64),
            warm_loaded: self.warm_loaded(),
            hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            shards: shard_entries.len() as u64,
            shard_imbalance: if entries > 0 {
                max_shard as f64 * shard_entries.len() as f64 / entries as f64
            } else {
                0.0
            },
            shard_entries,
            stages: crate::stages::stage_stats(),
        }
    }

    /// Looks up a cell, counting a hit (and refreshing its recency) on
    /// success. Absence is *not* counted as a miss — misses count actual
    /// simulations, matching the original `Runner` semantics.
    pub fn get(&self, scenario: &Scenario) -> Option<IterationReport> {
        self.inner.get(scenario)
    }

    /// True when the cell is resident (no counter or recency effects).
    pub fn contains(&self, scenario: &Scenario) -> bool {
        self.inner.contains(scenario)
    }

    /// Inserts a result directly (evicting first when at capacity, so
    /// the bound holds at every observable point). Used by snapshot
    /// restore; normal traffic goes through
    /// [`ResultStore::get_or_compute`].
    pub fn insert(&self, scenario: Scenario, report: IterationReport) {
        self.inner.insert(scenario, report);
    }

    /// The store's workhorse: returns the cell's report, simulating it
    /// via `simulate` only if no cached copy exists and no other caller
    /// is already computing it (single-flight).
    ///
    /// `simulate` runs with **no locks held**, so slow simulations never
    /// block unrelated cells. If the leading caller panics, its waiters
    /// wake and retry (one becomes the new leader); the panic propagates
    /// to the leader's thread as usual.
    pub fn get_or_compute(
        &self,
        scenario: Scenario,
        simulate: impl Fn() -> IterationReport,
    ) -> Fetched {
        let (report, provenance) = self.inner.get_or_compute(scenario, simulate);
        Fetched { report, provenance }
    }

    /// Serializes the resident cells to deterministic JSON (sorted by
    /// scenario digest) for `--snapshot` warm restarts. Only resident
    /// cells are written — evicted entries are never rewritten, so a
    /// bounded store's snapshot never outgrows its capacity.
    pub fn snapshot_json(&self) -> String {
        let mut cells: Vec<SnapshotCell> = Vec::new();
        // Atomic cross-shard view: a shard-at-a-time walk could capture
        // more cells than the capacity under concurrent churn.
        for shard in self.inner.lock_all().iter() {
            cells.extend(shard.cells.iter().map(|(s, e)| SnapshotCell {
                scenario: *s,
                report: e.value.clone(),
            }));
        }
        cells.sort_by_key(|c| c.scenario.digest());
        serde::json::to_string_pretty(&Snapshot {
            version: SNAPSHOT_VERSION,
            capacity: self.capacity().map(|c| c as u64),
            cells,
        })
    }

    /// Restores cells from [`ResultStore::snapshot_json`] text (version
    /// 1 or 2), returning how many cells the snapshot held. Loaded cells
    /// count as `warm_loaded`, not as hits or misses. The *receiving*
    /// store's capacity governs (the snapshot's recorded capacity is
    /// informational): restoring a snapshot larger than the bound evicts
    /// down oldest-first — the earliest cells in snapshot order go, the
    /// bound is never exceeded, not even mid-restore.
    pub fn restore_json(&self, text: &str) -> Result<usize, String> {
        let snapshot: Snapshot =
            serde::json::from_str(text).map_err(|e| format!("invalid snapshot: {e}"))?;
        if !SUPPORTED_SNAPSHOT_VERSIONS.contains(&snapshot.version) {
            return Err(format!(
                "snapshot version {} unsupported (expected one of {SUPPORTED_SNAPSHOT_VERSIONS:?})",
                snapshot.version
            ));
        }
        let n = snapshot.cells.len();
        for cell in snapshot.cells {
            self.insert(cell.scenario, cell.report);
        }
        self.warm_loaded.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// Writes a snapshot to `path` atomically (temp file + rename), so a
    /// concurrent reader or a mid-write crash never sees a torn file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = self.snapshot_json();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a snapshot file written by [`ResultStore::save`], returning
    /// how many cells it restored.
    pub fn load(&self, path: &Path) -> Result<usize, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading snapshot {}: {e}", path.display()))?;
        self.restore_json(&text)
    }
}

/// Written snapshot format. Version 2 records the writing store's
/// capacity alongside the cells; version 1 (cells only) still restores.
const SNAPSHOT_VERSION: u32 = 2;

/// Versions [`ResultStore::restore_json`] accepts.
const SUPPORTED_SNAPSHOT_VERSIONS: [u32; 2] = [1, 2];

#[derive(Serialize, Deserialize)]
struct SnapshotCell {
    scenario: Scenario,
    report: IterationReport,
}

#[derive(Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    /// Capacity of the store that wrote the snapshot (informational;
    /// absent in version-1 files, `null` for unbounded writers).
    capacity: Option<u64>,
    cells: Vec<SnapshotCell>,
}

/// Cleans up a leader's flight however `compute` exits: on a normal
/// landing the result is cached and waiters get `Done`; if the closure
/// panics, `Drop` marks the flight `Failed` so waiters retry instead of
/// hanging.
struct FlightGuard<'a, K: Copy + Eq + Hash, V: Clone> {
    cache: &'a StageCache<K, V>,
    key: K,
    shard_index: usize,
    flight: Arc<Flight<V>>,
    landed: bool,
}

impl<K: Copy + Eq + Hash, V: Clone> FlightGuard<'_, K, V> {
    fn land(mut self, value: V) {
        self.landed = true;
        let tick = self.cache.next_tick();
        // Make room *before* the entry becomes visible: the capacity
        // bound must hold at every observable point. The flight is still
        // pending here, so concurrent callers coalesce rather than
        // starting a duplicate compute.
        self.cache.reserve_slot();
        let replaced = {
            let mut shard = self.cache.shards[self.shard_index]
                .lock()
                .expect("store shard lock");
            let replaced = shard.install(self.key, value.clone(), tick);
            shard.flights.remove(&self.key);
            replaced
        };
        if replaced {
            // A direct `insert` (snapshot restore) raced us in; give the
            // extra reservation back.
            self.cache.release_slot();
        }
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        self.cache.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.flight.land(FlightState::Done(value));
    }
}

impl<K: Copy + Eq + Hash, V: Clone> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.landed {
            return;
        }
        let mut shard = self.cache.shards[self.shard_index]
            .lock()
            .expect("store shard lock");
        shard.flights.remove(&self.key);
        drop(shard);
        self.cache.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.flight.land(FlightState::Failed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SystemDesign;
    use mcdla_dnn::Benchmark;
    use mcdla_parallel::ParallelStrategy;
    use mcdla_sim::{Bytes, SimDuration};

    fn cell(batch: u64) -> Scenario {
        Scenario::new(
            SystemDesign::DcDla,
            Benchmark::AlexNet,
            ParallelStrategy::DataParallel,
        )
        .with_batch(batch)
    }

    /// A distinguishable dummy report (no need to run the simulator for
    /// store-mechanics tests).
    fn report(tag: u64) -> IterationReport {
        IterationReport {
            design: SystemDesign::DcDla,
            benchmark: format!("dummy-{tag}"),
            strategy: ParallelStrategy::DataParallel,
            devices: 8,
            global_batch: tag,
            iteration_time: SimDuration::from_us(tag.max(1)),
            compute_busy: SimDuration::ZERO,
            sync_busy: SimDuration::ZERO,
            virt_busy: SimDuration::ZERO,
            memory_stall: SimDuration::ZERO,
            virt_bytes: Bytes::ZERO,
            sync_bytes: Bytes::ZERO,
            cpu_socket_avg_gbs: 0.0,
            cpu_socket_max_gbs: 0.0,
        }
    }

    #[test]
    fn hit_miss_and_provenance() {
        let store = ResultStore::unbounded();
        let first = store.get_or_compute(cell(1), || report(1));
        assert_eq!(first.provenance, Provenance::Computed);
        let second = store.get_or_compute(cell(1), || panic!("must not recompute"));
        assert_eq!(second.provenance, Provenance::Cached);
        assert_eq!(first.report, second.report);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        // One shard so capacity is exact and recency fully ordered.
        let store = ResultStore::with_shards(Some(2), 1);
        store.insert(cell(1), report(1));
        store.insert(cell(2), report(2));
        // Touch cell 1 so cell 2 is now the least recently used.
        assert!(store.get(&cell(1)).is_some());
        store.insert(cell(3), report(3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(store.contains(&cell(1)), "recently used survives");
        assert!(!store.contains(&cell(2)), "LRU entry evicted");
        assert!(store.contains(&cell(3)));
    }

    #[test]
    fn capacity_bounds_hold_under_churn() {
        let store = ResultStore::with_shards(Some(4), 2);
        for i in 0..100 {
            store.insert(cell(i), report(i));
        }
        assert_eq!(store.len(), 4, "global bound fills to exactly capacity");
        assert_eq!(store.evictions() + store.len() as u64, 100);
    }

    #[test]
    fn bound_is_global_even_when_capacity_is_below_the_shard_count() {
        // 4 slots spread over 16 default shards: the per-shard-quota
        // scheme this replaced retained up to 16 entries here.
        let store = ResultStore::bounded(4);
        for i in 0..100 {
            store.insert(cell(i), report(i));
        }
        assert_eq!(store.len(), 4, "capacity is not multiplied by shards");
        assert_eq!(store.evictions(), 96);
        // The four newest inserts survive (inserts are the only recency
        // signal here, so eviction goes strictly oldest-first).
        for i in 96..100 {
            assert!(store.contains(&cell(i)), "cell {i} should be resident");
        }
    }

    #[test]
    fn concurrent_inserts_never_overshoot_the_bound() {
        let store = ResultStore::with_shards(Some(8), 4);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..200 {
                        store.insert(cell(t * 1000 + i), report(i));
                        let resident = store.len();
                        assert!(resident <= 8, "observed {resident} resident > capacity 8");
                    }
                });
            }
        });
        assert!(store.len() <= 8);
        assert_eq!(store.evictions() + store.len() as u64, 800);
    }

    #[test]
    fn stats_report_shard_occupancy_and_hit_rate() {
        let store = ResultStore::with_shards(None, 4);
        let zero = store.stats();
        assert_eq!(zero.hit_rate, 0.0);
        assert_eq!(zero.shard_imbalance, 0.0);
        assert_eq!(zero.shards, 4);
        for i in 0..8 {
            store.insert(cell(i), report(i));
        }
        let _ = store.get_or_compute(cell(0), || panic!("cached"));
        let _ = store.get_or_compute(cell(100), || report(100));
        let stats = store.stats();
        assert_eq!(stats.shard_entries.len(), 4);
        assert_eq!(stats.shard_entries.iter().sum::<u64>(), stats.entries);
        assert_eq!(stats.entries, 9);
        assert!((stats.hit_rate - 0.5).abs() < 1e-12, "{stats:?}");
        assert!(stats.shard_imbalance >= 1.0, "{stats:?}");
    }

    #[test]
    fn store_stats_carry_the_stage_tables() {
        let store = ResultStore::unbounded();
        // Run one cell through the staged engine so the stage tables
        // exist and have seen traffic.
        let _ = store.get_or_compute(cell(512), || cell(512).simulate());
        let stats = store.stats();
        let names: Vec<&str> = stats.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            [
                "fabric",
                "network",
                "layer_timing",
                "plan",
                "schedule",
                "collective",
                "sync"
            ],
            "stage list is fixed and ordered"
        );
        for stage in &stats.stages {
            assert!(
                stage.hits + stage.misses > 0 || stage.stage == "collective",
                "stage {} saw no traffic: {stage:?}",
                stage.stage
            );
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = ResultStore::bounded(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_stage_cache_capacity_is_rejected() {
        let _: StageCache<u64, u64> = StageCache::bounded(0);
    }

    #[test]
    fn stage_cache_tracks_hits_misses_and_evictions() {
        let cache: StageCache<u64, u64> = StageCache::with_shards(Some(2), 1);
        assert_eq!(cache.get_or_compute(1, || 10), (10, Provenance::Computed));
        assert_eq!(cache.get_or_compute(1, || 99), (10, Provenance::Cached));
        assert_eq!(cache.get_or_compute(2, || 20), (20, Provenance::Computed));
        // Touch 1 so 2 is the LRU victim.
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get_or_compute(3, || 30), (30, Provenance::Computed));
        assert!(cache.contains(&1) && cache.contains(&3) && !cache.contains(&2));
        let stats = cache.stats("test");
        assert_eq!(stats.stage, "test");
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 3, 1));
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, Some(2));
        assert!((stats.hit_rate - 0.4).abs() < 1e-12);
    }

    #[test]
    fn single_flight_coalesces_concurrent_computes() {
        use std::sync::atomic::AtomicUsize;
        let store = ResultStore::unbounded();
        let computes = AtomicUsize::new(0);
        let n = 8;
        std::thread::scope(|scope| {
            for _ in 0..n {
                scope.spawn(|| {
                    store.get_or_compute(cell(7), || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for every
                        // sibling to pile onto it.
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        report(7)
                    })
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "exactly one simulation for {n} concurrent requests"
        );
        assert_eq!(store.misses(), 1);
        assert_eq!(store.hits(), (n - 1) as u64);
    }

    #[test]
    fn failed_leader_wakes_waiters_and_retries() {
        use std::sync::atomic::AtomicUsize;
        let store = ResultStore::unbounded();
        let attempts = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            // Leader panics mid-flight.
            let leader = scope.spawn(|| {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    store.get_or_compute(cell(9), || {
                        attempts.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("simulated failure");
                    })
                }));
                assert!(result.is_err(), "leader's panic propagates");
            });
            // Waiter arrives while the doomed flight is open, then takes
            // over after it fails.
            std::thread::sleep(std::time::Duration::from_millis(10));
            let waiter = scope.spawn(|| {
                store.get_or_compute(cell(9), || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    report(9)
                })
            });
            leader.join().unwrap();
            let fetched = waiter.join().unwrap();
            assert_eq!(fetched.report, report(9));
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "panicked + retried");
        assert!(store.contains(&cell(9)));
    }

    #[test]
    fn snapshot_round_trips_bit_identical() {
        let store = ResultStore::unbounded();
        for i in 0..10 {
            store.insert(cell(i), report(i));
        }
        let json = store.snapshot_json();
        // Deterministic: same contents, same bytes.
        assert_eq!(json, store.snapshot_json());

        let warmed = ResultStore::unbounded();
        assert_eq!(warmed.restore_json(&json), Ok(10));
        assert_eq!(warmed.warm_loaded(), 10);
        assert_eq!(warmed.hits(), 0, "warm loads are not hits");
        assert_eq!(warmed.misses(), 0, "warm loads are not misses");
        for i in 0..10 {
            assert_eq!(warmed.get(&cell(i)), Some(report(i)));
        }
        // And the warmed store snapshots to the same bytes.
        assert_eq!(warmed.snapshot_json(), json);
    }

    #[test]
    fn restore_rejects_garbage_and_wrong_versions() {
        let store = ResultStore::unbounded();
        assert!(store.restore_json("not json").is_err());
        assert!(store.restore_json("{\"cells\": []}").is_err());
        assert!(store
            .restore_json("{\"version\": 99, \"cells\": []}")
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn restore_respects_capacity() {
        let donor = ResultStore::unbounded();
        for i in 0..20 {
            donor.insert(cell(i), report(i));
        }
        let small = ResultStore::with_shards(Some(4), 1);
        assert_eq!(small.restore_json(&donor.snapshot_json()), Ok(20));
        assert_eq!(small.len(), 4);
        assert_eq!(small.evictions(), 16);
    }

    #[test]
    fn restore_accepts_version_1_snapshots() {
        // A pre-versioning (v1) file has no capacity field; it must keep
        // restoring after the format bump.
        let donor = ResultStore::unbounded();
        donor.insert(cell(1), report(1));
        let v2 = donor.snapshot_json();
        assert!(v2.contains("\"version\": 2"), "{v2}");
        assert!(v2.contains("\"capacity\": null"), "{v2}");
        let v1 = v2
            .replace("\"version\": 2", "\"version\": 1")
            .replace("  \"capacity\": null,\n", "");
        let warmed = ResultStore::unbounded();
        assert_eq!(warmed.restore_json(&v1), Ok(1));
        assert_eq!(warmed.get(&cell(1)), Some(report(1)));
    }

    #[test]
    fn bounded_snapshots_record_their_capacity() {
        let store = ResultStore::bounded(7);
        store.insert(cell(1), report(1));
        assert!(store.snapshot_json().contains("\"capacity\": 7"));
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "mcdla-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let store = ResultStore::unbounded();
        store.insert(cell(1), report(1));
        store.save(&path).unwrap();
        let warmed = ResultStore::unbounded();
        assert_eq!(warmed.load(&path), Ok(1));
        assert_eq!(warmed.get(&cell(1)), Some(report(1)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
