//! The six evaluated system design points and their configuration.

use std::fmt;

use mcdla_accel::DeviceConfig;
use mcdla_dnn::DataType;
use mcdla_interconnect::{FabricTopology, ScaleOutPlane};
use mcdla_memnode::{MemoryNodeConfig, PagePolicy};
use mcdla_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Device-nodes per backplane / system node (the DGX-class building
/// block the paper evaluates). Device counts beyond this scale out
/// across system nodes: memory-centric designs over the Fig. 15 pooled
/// switch plane, host-centric designs over the host interface.
pub const BACKPLANE_DEVICES: usize = 8;

/// The paper-default device count (§IV).
pub const PAPER_DEFAULT_DEVICES: usize = BACKPLANE_DEVICES;

/// The paper-default global mini-batch (§IV).
pub const PAPER_DEFAULT_BATCH: u64 = 512;

/// One of the §V system design points.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize)]
pub enum SystemDesign {
    /// Device-centric baseline: DGX-style cube-mesh rings, memory
    /// virtualization over host PCIe.
    DcDla,
    /// Host-centric: half the high-bandwidth links carry virtualization
    /// traffic to an over-provisioned CPU (§IV).
    HcDla,
    /// Memory-centric, star attachment (Fig. 7(b)): 2 dedicated links per
    /// device to its memory-node, unbalanced 8/12/20-hop rings.
    McDlaStar,
    /// Memory-centric ring (Fig. 7(c)) with LOCAL page placement: 3 links
    /// to one neighbor memory-node (75 GB/s).
    McDlaLocal,
    /// Memory-centric ring (Fig. 7(c)) with BW_AWARE placement: all 6
    /// links across both neighbors (150 GB/s) — the proposed design.
    McDlaBwAware,
    /// Oracular DC-DLA with infinite device memory: no virtualization
    /// traffic at all (an unbuildable upper bound).
    DcDlaOracle,
}

impl SystemDesign {
    /// All six design points in the paper's presentation order.
    pub const ALL: [SystemDesign; 6] = [
        SystemDesign::DcDla,
        SystemDesign::HcDla,
        SystemDesign::McDlaStar,
        SystemDesign::McDlaLocal,
        SystemDesign::McDlaBwAware,
        SystemDesign::DcDlaOracle,
    ];

    /// The wire (serde) name of this design — the PascalCase variant
    /// identifier the derived `Serialize` emits.
    pub fn wire_name(self) -> &'static str {
        match self {
            SystemDesign::DcDla => "DcDla",
            SystemDesign::HcDla => "HcDla",
            SystemDesign::McDlaStar => "McDlaStar",
            SystemDesign::McDlaLocal => "McDlaLocal",
            SystemDesign::McDlaBwAware => "McDlaBwAware",
            SystemDesign::DcDlaOracle => "DcDlaOracle",
        }
    }

    /// The paper's label for this design.
    pub fn name(self) -> &'static str {
        match self {
            SystemDesign::DcDla => "DC-DLA",
            SystemDesign::HcDla => "HC-DLA",
            SystemDesign::McDlaStar => "MC-DLA(S)",
            SystemDesign::McDlaLocal => "MC-DLA(L)",
            SystemDesign::McDlaBwAware => "MC-DLA(B)",
            SystemDesign::DcDlaOracle => "DC-DLA(O)",
        }
    }

    /// True for the three memory-centric proposals.
    pub fn is_memory_centric(self) -> bool {
        matches!(
            self,
            SystemDesign::McDlaStar | SystemDesign::McDlaLocal | SystemDesign::McDlaBwAware
        )
    }

    /// True when virtualization traffic lands in host CPU memory.
    pub fn uses_host_memory(self) -> bool {
        matches!(self, SystemDesign::DcDla | SystemDesign::HcDla)
    }

    /// True when the design virtualizes memory at all (the oracle holds
    /// everything in its infinite device memory).
    pub fn virtualizes(self) -> bool {
        !matches!(self, SystemDesign::DcDlaOracle)
    }

    /// The page-placement policy of the MC ring designs (Fig. 10);
    /// meaningful only for memory-centric designs.
    pub fn page_policy(self) -> PagePolicy {
        match self {
            SystemDesign::McDlaBwAware => PagePolicy::BwAware,
            _ => PagePolicy::Local,
        }
    }
}

impl fmt::Display for SystemDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Hand-written (not derived) so wire payloads may use either the serde
// wire name (`McDlaBwAware`) or the paper label (`MC-DLA(B)`), in any
// case, and an unknown name answers with the full accepted list instead
// of an unguessable one-liner.
impl serde::Deserialize for SystemDesign {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::expected("string", "SystemDesign"))?;
        SystemDesign::ALL
            .iter()
            .copied()
            .find(|d| s.eq_ignore_ascii_case(d.wire_name()) || s.eq_ignore_ascii_case(d.name()))
            .ok_or_else(|| {
                let accepted: Vec<String> = SystemDesign::ALL
                    .iter()
                    .map(|d| format!("{} / {}", d.wire_name(), d.name()))
                    .collect();
                serde::Error::custom(format!(
                    "unknown SystemDesign `{s}` (accepted, case-insensitive: {})",
                    accepted.join(", ")
                ))
            })
    }
}

/// PCIe generation of the host interface (§V-B studies gen4).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PcieGen {
    /// 16 GB/s per x16 endpoint (the paper's baseline).
    #[default]
    Gen3,
    /// 32 GB/s per x16 endpoint (the §V-B sensitivity study).
    Gen4,
}

impl PcieGen {
    /// Per-endpoint x16 bandwidth in GB/s.
    pub fn x16_gbs(self) -> f64 {
        match self {
            PcieGen::Gen3 => 16.0,
            PcieGen::Gen4 => 32.0,
        }
    }
}

/// Host-side resources shared by the PCIe-attached devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// CPU sockets in the node.
    pub sockets: usize,
    /// DRAM bandwidth per socket in GB/s (80 for a high-end Xeon, 120 for
    /// POWER9, 300 for HC-DLA's hypothetical 3-4x over-provisioned CPU).
    pub socket_dram_gbs: f64,
    /// PCIe switches between devices and sockets (DGX-1 has four, each
    /// shared by two devices).
    pub pcie_switches: usize,
    /// Host PCIe generation.
    pub pcie: PcieGen,
}

impl HostConfig {
    /// A dual-socket Xeon host as in the DGX baseline (§II-C: "only"
    /// 80 GB/s per socket).
    pub fn xeon() -> Self {
        HostConfig {
            sockets: 2,
            socket_dram_gbs: 80.0,
            pcie_switches: 4,
            pcie: PcieGen::Gen3,
        }
    }

    /// HC-DLA's hypothetical host: 300 GB/s per socket, enough to serve
    /// four devices at 75 GB/s each (§IV).
    pub fn hc_hypothetical() -> Self {
        HostConfig {
            socket_dram_gbs: 300.0,
            ..HostConfig::xeon()
        }
    }
}

/// Full configuration of one simulated system.
///
/// # Examples
///
/// ```
/// use mcdla_core::{SystemConfig, SystemDesign};
///
/// let cfg = SystemConfig::new(SystemDesign::McDlaBwAware);
/// assert_eq!(cfg.devices, 8);
/// assert_eq!(cfg.global_batch, 512);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Which design point.
    pub design: SystemDesign,
    /// Device-node count (the paper evaluates 8; §V-D sweeps 1/2/4/8).
    pub devices: usize,
    /// Device-node configuration (Table II).
    pub device: DeviceConfig,
    /// Memory-node configuration (Table II / Fig. 6).
    pub memory_node: MemoryNodeConfig,
    /// Host-side configuration.
    pub host: HostConfig,
    /// Element precision.
    pub dtype: DataType,
    /// Global mini-batch (§IV: 512).
    pub global_batch: u64,
    /// NCCL-style gradient bucket target (Fig. 9's 8 MB sync size).
    pub sync_bucket_bytes: u64,
    /// Fixed software/DMA-setup latency added to every overlay transfer.
    pub dma_op_latency: SimDuration,
    /// Activation-compression ratio on overlay traffic (1.0 = off; the
    /// §V-B cDMA study uses 2.6 on CNNs).
    pub compression_ratio: f64,
    /// How many layers ahead the DMA engine prefetches during
    /// backpropagation.
    pub prefetch_lookahead: usize,
    /// Fraction of a *blocking* boundary collective that software
    /// pipelining hides behind the dependent layer's compute (chunked
    /// consumption of the all-reduced tensor). 0 = fully serialized,
    /// 1 = fully hidden.
    pub boundary_pipeline_fraction: f64,
    /// Device-memory budget for offloaded-but-in-flight stashes; compute
    /// stalls when exceeded (the vDNN pinned-buffer behavior). `None`
    /// derives it from device capacity minus the resident working set.
    pub pinned_budget_bytes: Option<u64>,
    /// Concrete topology to realize the collective planes on. `None`
    /// (the default) prices collectives with the closed-form analytical
    /// model; `Some(t)` routes them as flow batches over `t` with
    /// max-min fair link sharing (congestion becomes visible).
    pub topology: Option<FabricTopology>,
}

impl SystemConfig {
    /// Paper-default configuration for a design point.
    ///
    /// The device's sustained efficiency is calibrated to 0.75 of the Table
    /// II peak (96 TMAC/s): the authors' per-layer latency calibration is
    /// not public, and this operating point reproduces the paper's headline
    /// speedup ratios (see EXPERIMENTS.md).
    pub fn new(design: SystemDesign) -> Self {
        let mut device = DeviceConfig::paper_baseline();
        device.sustained_efficiency = 0.75;
        let host = match design {
            SystemDesign::HcDla => HostConfig::hc_hypothetical(),
            _ => HostConfig::xeon(),
        };
        SystemConfig {
            design,
            devices: PAPER_DEFAULT_DEVICES,
            device,
            memory_node: MemoryNodeConfig::paper_baseline(),
            host,
            dtype: DataType::F32,
            global_batch: PAPER_DEFAULT_BATCH,
            sync_bucket_bytes: 8 << 20,
            dma_op_latency: SimDuration::from_us(10),
            compression_ratio: 1.0,
            prefetch_lookahead: 4,
            boundary_pipeline_fraction: 0.5,
            pinned_budget_bytes: None,
            topology: None,
        }
    }

    /// Returns the configuration with a different device count (§V-D).
    pub fn with_devices(mut self, devices: usize) -> Self {
        assert!(devices >= 1, "need at least one device");
        self.devices = devices;
        self
    }

    /// Returns the configuration with a different global batch (Fig. 14).
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.global_batch = batch;
        self
    }

    /// Returns the configuration with PCIe gen4 on the host interface
    /// (§V-B).
    pub fn with_pcie_gen4(mut self) -> Self {
        self.host.pcie = PcieGen::Gen4;
        self
    }

    /// Returns the configuration with a different device-node (§V-B's
    /// TPUv2-like and DGX-2-like studies). The calibration factor is
    /// preserved.
    pub fn with_device(mut self, mut device: DeviceConfig) -> Self {
        device.sustained_efficiency = self.device.sustained_efficiency;
        self.device = device;
        self
    }

    /// Returns the configuration with cDMA-style activation compression at
    /// the given traffic-reduction ratio (§V-B uses 2.6).
    pub fn with_compression(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0, "compression ratio must be >= 1");
        self.compression_ratio = ratio;
        self
    }

    /// Returns the configuration with collectives routed as flows over a
    /// concrete topology instead of the analytical model.
    pub fn with_topology(mut self, topology: FabricTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Devices resident in one backplane / system node. Counts beyond
    /// [`BACKPLANE_DEVICES`] scale out across system nodes, each with its
    /// own host, so host-side sharing never spreads thinner than one
    /// node's worth of devices.
    pub fn backplane_devices(&self) -> usize {
        self.devices.min(BACKPLANE_DEVICES)
    }

    /// Devices sharing one PCIe switch uplink when all are active. The DGX
    /// wires devices to switches in fixed pairs, so any multi-device run
    /// halves the uplink (§V-D's scaling penalty). Scale-out runs replicate
    /// the host per backplane, so sharing is computed per system node.
    pub fn devices_per_switch(&self) -> usize {
        let node_devices = self.backplane_devices();
        if node_devices < 2 {
            1
        } else {
            node_devices.div_ceil(self.host.pcie_switches).max(2)
        }
    }

    /// Devices drawing on one CPU socket when all are active (per system
    /// node; scale-out runs replicate the host per backplane).
    pub fn devices_per_socket(&self) -> usize {
        self.backplane_devices().div_ceil(self.host.sockets).max(1)
    }

    /// The Fig. 15 pooled switch plane this configuration scales out on:
    /// memory-centric designs beyond one backplane hang every device-node
    /// and memory-node (one per device) off an NVSwitch-class plane with
    /// half the device's links (`N/2 = 3`) per node. `None` for
    /// single-backplane runs and for designs whose cross-node traffic
    /// rides the host interface instead (DC-DLA, HC-DLA, the oracle).
    ///
    /// The plane is a function of the device count *and* the device
    /// configuration — a scenario's `generation` knob changes the link
    /// specs the plane is built from.
    pub fn scale_out_plane(&self) -> Option<ScaleOutPlane> {
        if self.devices <= BACKPLANE_DEVICES || !self.design.is_memory_centric() {
            return None;
        }
        Some(ScaleOutPlane::new(
            self.devices,
            self.devices,
            (self.device.link_count / 2).max(1),
            self.device.link_bandwidth_gbs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_labels_match_paper() {
        let names: Vec<&str> = SystemDesign::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "DC-DLA",
                "HC-DLA",
                "MC-DLA(S)",
                "MC-DLA(L)",
                "MC-DLA(B)",
                "DC-DLA(O)"
            ]
        );
    }

    #[test]
    fn design_classification() {
        assert!(!SystemDesign::DcDla.is_memory_centric());
        assert!(SystemDesign::McDlaBwAware.is_memory_centric());
        assert!(SystemDesign::DcDla.uses_host_memory());
        assert!(SystemDesign::HcDla.uses_host_memory());
        assert!(!SystemDesign::McDlaLocal.uses_host_memory());
        assert!(!SystemDesign::DcDlaOracle.virtualizes());
        assert_eq!(
            SystemDesign::McDlaBwAware.page_policy(),
            PagePolicy::BwAware
        );
        assert_eq!(SystemDesign::McDlaLocal.page_policy(), PagePolicy::Local);
    }

    #[test]
    fn hc_dla_gets_overprovisioned_host() {
        let hc = SystemConfig::new(SystemDesign::HcDla);
        assert_eq!(hc.host.socket_dram_gbs, 300.0);
        let dc = SystemConfig::new(SystemDesign::DcDla);
        assert_eq!(dc.host.socket_dram_gbs, 80.0);
    }

    #[test]
    fn sharing_arithmetic() {
        let cfg = SystemConfig::new(SystemDesign::DcDla);
        assert_eq!(cfg.devices_per_switch(), 2);
        assert_eq!(cfg.devices_per_socket(), 4);
        let one = cfg.with_devices(1);
        assert_eq!(one.devices_per_switch(), 1);
        assert_eq!(one.devices_per_socket(), 1);
    }

    #[test]
    fn host_sharing_is_per_backplane_at_scale_out() {
        // 64 devices = 8 backplanes of 8, each with its own host: PCIe
        // and socket sharing must not spread thinner than one node's.
        let cfg = SystemConfig::new(SystemDesign::DcDla).with_devices(64);
        assert_eq!(cfg.backplane_devices(), 8);
        assert_eq!(cfg.devices_per_switch(), 2);
        assert_eq!(cfg.devices_per_socket(), 4);
    }

    #[test]
    fn scale_out_plane_selection() {
        // Single backplane: no plane, for any design.
        for d in SystemDesign::ALL {
            assert!(SystemConfig::new(d).scale_out_plane().is_none(), "{d}");
        }
        // Beyond one backplane: memory-centric designs get the pooled
        // fabric; host-routed designs do not.
        let plane = SystemConfig::new(SystemDesign::McDlaBwAware)
            .with_devices(32)
            .scale_out_plane()
            .expect("pooled plane");
        assert_eq!(plane.devices().len(), 32);
        assert_eq!(plane.memory_nodes().len(), 32);
        assert_eq!(plane.links_per_node(), 3);
        for d in [
            SystemDesign::DcDla,
            SystemDesign::HcDla,
            SystemDesign::DcDlaOracle,
        ] {
            assert!(
                SystemConfig::new(d)
                    .with_devices(32)
                    .scale_out_plane()
                    .is_none(),
                "{d} scales out over the host, not the pooled fabric"
            );
        }
    }

    #[test]
    fn builders_apply() {
        let cfg = SystemConfig::new(SystemDesign::DcDla)
            .with_batch(128)
            .with_pcie_gen4()
            .with_compression(2.6);
        assert_eq!(cfg.global_batch, 128);
        assert_eq!(cfg.host.pcie, PcieGen::Gen4);
        assert_eq!(cfg.compression_ratio, 2.6);
    }

    #[test]
    fn pcie_gen_bandwidths() {
        assert_eq!(PcieGen::Gen3.x16_gbs(), 16.0);
        assert_eq!(PcieGen::Gen4.x16_gbs(), 32.0);
    }
}
