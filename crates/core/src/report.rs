//! Per-iteration simulation results.

use mcdla_sim::{Bytes, SimDuration};
use serde::{Deserialize, Serialize};

use crate::design::SystemDesign;
use mcdla_parallel::ParallelStrategy;

/// Everything measured from one simulated training iteration of one
/// design point — the raw material for Figs. 11, 12, 13 and 14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Design point simulated.
    pub design: SystemDesign,
    /// Benchmark name.
    pub benchmark: String,
    /// Parallelization strategy.
    pub strategy: ParallelStrategy,
    /// Device count.
    pub devices: usize,
    /// Global batch size.
    pub global_batch: u64,
    /// End-to-end time of one training iteration.
    pub iteration_time: SimDuration,
    /// PE-array busy time (computation bar of Fig. 11), per device.
    pub compute_busy: SimDuration,
    /// Communication-engine busy time (synchronization bar of Fig. 11).
    pub sync_busy: SimDuration,
    /// DMA busy time, offload + prefetch (memory-virtualization bar of
    /// Fig. 11).
    pub virt_busy: SimDuration,
    /// Time forward compute stalled on the pinned-buffer budget.
    pub memory_stall: SimDuration,
    /// Overlay bytes moved per device per iteration (offload + prefetch).
    pub virt_bytes: Bytes,
    /// Logical synchronization payload per iteration.
    pub sync_bytes: Bytes,
    /// Average CPU DRAM draw per socket over the iteration in GB/s
    /// (Fig. 12 "avg"); zero for memory-centric designs.
    pub cpu_socket_avg_gbs: f64,
    /// Peak CPU DRAM draw per socket in GB/s (Fig. 12 "max").
    pub cpu_socket_max_gbs: f64,
}

impl IterationReport {
    /// Performance = 1 / iteration time (arbitrary units; Fig. 13
    /// normalizes per benchmark).
    pub fn performance(&self) -> f64 {
        let t = self.iteration_time.as_secs_f64();
        if t > 0.0 {
            1.0 / t
        } else {
            0.0
        }
    }

    /// Speedup of this report over a baseline report of the same workload.
    pub fn speedup_over(&self, baseline: &IterationReport) -> f64 {
        baseline.iteration_time.as_secs_f64() / self.iteration_time.as_secs_f64()
    }

    /// The three Fig. 11 stack components, in presentation order
    /// (computation, synchronization, memory virtualization), in seconds.
    pub fn breakdown_secs(&self) -> [f64; 3] {
        [
            self.compute_busy.as_secs_f64(),
            self.sync_busy.as_secs_f64(),
            self.virt_busy.as_secs_f64(),
        ]
    }

    /// Fraction of iteration time attributable to memory virtualization
    /// exposure (iteration time beyond the compute+sync critical path) —
    /// the Fig. 2 right-axis metric when compared against an oracle run.
    pub fn virtualization_overhead_vs(&self, oracle: &IterationReport) -> f64 {
        let t = self.iteration_time.as_secs_f64();
        let o = oracle.iteration_time.as_secs_f64();
        if t <= 0.0 {
            return 0.0;
        }
        ((t - o) / t).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SystemDesign;
    use mcdla_sim::SimDuration;

    fn report(iter_us: u64, comp_us: u64, sync_us: u64, virt_us: u64) -> IterationReport {
        IterationReport {
            design: SystemDesign::DcDla,
            benchmark: "test".into(),
            strategy: ParallelStrategy::DataParallel,
            devices: 8,
            global_batch: 512,
            iteration_time: SimDuration::from_us(iter_us),
            compute_busy: SimDuration::from_us(comp_us),
            sync_busy: SimDuration::from_us(sync_us),
            virt_busy: SimDuration::from_us(virt_us),
            memory_stall: SimDuration::ZERO,
            virt_bytes: Bytes::ZERO,
            sync_bytes: Bytes::ZERO,
            cpu_socket_avg_gbs: 0.0,
            cpu_socket_max_gbs: 0.0,
        }
    }

    #[test]
    fn performance_is_reciprocal_time() {
        let r = report(1_000_000, 1, 1, 1); // 1 second
        assert!((r.performance() - 1.0).abs() < 1e-9);
        let twice = report(500_000, 1, 1, 1);
        assert!((twice.performance() - 2.0).abs() < 1e-9);
        assert!((twice.speedup_over(&r) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_order_matches_fig11() {
        let r = report(100, 10, 20, 30);
        let b = r.breakdown_secs();
        assert!((b[0] - 10e-6).abs() < 1e-12); // computation
        assert!((b[1] - 20e-6).abs() < 1e-12); // synchronization
        assert!((b[2] - 30e-6).abs() < 1e-12); // memory virtualization
    }

    #[test]
    fn overhead_vs_oracle() {
        let oracle = report(100, 100, 0, 0);
        let slow = report(400, 100, 0, 300);
        assert!((slow.virtualization_overhead_vs(&oracle) - 0.75).abs() < 1e-9);
        // An implausible faster-than-oracle run clamps at zero.
        let fast = report(50, 50, 0, 0);
        assert_eq!(fast.virtualization_overhead_vs(&oracle), 0.0);
    }
}
