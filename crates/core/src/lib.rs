//! # `mcdla-core` — the memory-centric DL system architecture simulator
//!
//! The paper's contribution (Kwon & Rhu, *Beyond the Memory Wall: A Case
//! for Memory-centric HPC System for Deep Learning*, MICRO-51 2018),
//! assembled from the substrate crates:
//!
//! * [`SystemDesign`] / [`SystemConfig`] — the six evaluated design points:
//!   DC-DLA, HC-DLA, MC-DLA(S), MC-DLA(L), MC-DLA(B), DC-DLA(O);
//! * [`VirtPath`] — each design's effective memory-virtualization data
//!   path (PCIe/host for DC/HC, memory-node links for MC), validated
//!   against the max-min fluid-flow solver;
//! * [`IterationSim`] — the training-iteration engine overlapping
//!   computation, ring-collective synchronization and memory-overlaying
//!   DMA per device (§IV);
//! * [`scenario`] — the data-driven experiment layer: [`Scenario`] /
//!   [`ScenarioGrid`] specs plus the parallel, memoizing [`Runner`];
//! * [`store`] — the sharded, capacity-bounded, single-flight
//!   [`ResultStore`] behind the runner (and the `mcdla-serve` service),
//!   with JSON snapshot/restore for warm restarts;
//! * [`experiment`] — runners for every table and figure of §V, built on
//!   the scenario grid.
//!
//! # Examples
//!
//! Reproducing the headline comparison on one workload:
//!
//! ```
//! use mcdla_core::{experiment, SystemDesign};
//! use mcdla_dnn::Benchmark;
//! use mcdla_parallel::ParallelStrategy;
//!
//! let dc = experiment::simulate(SystemDesign::DcDla, Benchmark::VggE,
//!     ParallelStrategy::DataParallel);
//! let mc = experiment::simulate(SystemDesign::McDlaBwAware, Benchmark::VggE,
//!     ParallelStrategy::DataParallel);
//! let speedup = mc.speedup_over(&dc);
//! assert!(speedup > 1.5, "MC-DLA(B) should clearly beat DC-DLA: {speedup}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
mod design;
mod energy;
mod engine;
pub mod experiment;
mod report;
pub mod scenario;
pub mod stages;
pub mod store;
mod virt_path;

pub use design::{HostConfig, PcieGen, SystemConfig, SystemDesign};
pub use design::{BACKPLANE_DEVICES, PAPER_DEFAULT_BATCH, PAPER_DEFAULT_DEVICES};
pub use energy::{EnergyReport, PowerModel};
pub use engine::{AnalyticalFabric, CommFabric, FlowFabric, IterationSim};
pub use mcdla_interconnect::FabricTopology;
pub use report::IterationReport;
pub use scenario::{DeviceModel, GridStream, Overrides, Runner, Scenario, ScenarioGrid, TimedRun};
pub use store::{key_hash, Fetched, Provenance, ResultStore, StageCache, StageStats, StoreStats};
pub use virt_path::VirtPath;
