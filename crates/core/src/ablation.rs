//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! Each ablation varies exactly one mechanism and reports MC-DLA(B) /
//! DC-DLA iteration times on a representative workload pair (one CNN, one
//! RNN), quantifying how much each design ingredient matters:
//!
//! * **recompute policy** (footnote 4) — recompute cheap layers vs
//!   offloading their inputs too;
//! * **gradient bucketing** — the 8 MB NCCL-style fusion target;
//! * **prefetch lookahead** — how far ahead the DMA engine fetches during
//!   backpropagation;
//! * **boundary pipelining** — chunked overlap of blocking model-parallel
//!   collectives;
//! * **page placement** — Fig. 10's LOCAL vs BW_AWARE (the MC-DLA(L) vs
//!   MC-DLA(B) comparison, included here for completeness).

use mcdla_dnn::Benchmark;
use mcdla_parallel::ParallelStrategy;
use mcdla_vmem::VirtPolicy;
use serde::{Deserialize, Serialize};

use crate::design::{SystemConfig, SystemDesign};
use crate::engine::IterationSim;

/// One ablation: a named knob and the iteration time of each variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablation {
    /// Mechanism being ablated.
    pub name: String,
    /// Workload the variants ran on.
    pub benchmark: String,
    /// Design point the variants ran on.
    pub design: SystemDesign,
    /// `(variant label, iteration seconds)` pairs.
    pub variants: Vec<(String, f64)>,
}

impl Ablation {
    /// Iteration time of the slowest variant divided by the fastest —
    /// how much this knob matters.
    pub fn spread(&self) -> f64 {
        let min = self
            .variants
            .iter()
            .map(|(_, t)| *t)
            .fold(f64::MAX, f64::min);
        let max = self.variants.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
        if min > 0.0 {
            max / min
        } else {
            0.0
        }
    }
}

fn run(cfg: SystemConfig, bm: Benchmark, strategy: ParallelStrategy) -> f64 {
    let net = bm.build();
    IterationSim::new(cfg, &net, strategy)
        .run()
        .iteration_time
        .as_secs_f64()
}

fn run_policy(
    cfg: SystemConfig,
    bm: Benchmark,
    strategy: ParallelStrategy,
    policy: VirtPolicy,
) -> f64 {
    let net = bm.build();
    IterationSim::with_policy(cfg, &net, strategy, policy)
        .run()
        .iteration_time
        .as_secs_f64()
}

/// Runs the full ablation suite on `design` for a CNN and an RNN.
pub fn ablations(design: SystemDesign) -> Vec<Ablation> {
    let mut out = Vec::new();
    for bm in [Benchmark::VggE, Benchmark::RnnGru] {
        // Recompute policy (data-parallel, where overlay traffic binds).
        let recompute = VirtPolicy::paper_default();
        let offload_all = VirtPolicy {
            recompute_cheap: false,
            ..VirtPolicy::paper_default()
        };
        out.push(Ablation {
            name: "recompute cheap layers (footnote 4)".into(),
            benchmark: bm.name().into(),
            design,
            variants: vec![
                (
                    "recompute".into(),
                    run_policy(
                        SystemConfig::new(design),
                        bm,
                        ParallelStrategy::DataParallel,
                        recompute,
                    ),
                ),
                (
                    "offload everything".into(),
                    run_policy(
                        SystemConfig::new(design),
                        bm,
                        ParallelStrategy::DataParallel,
                        offload_all,
                    ),
                ),
            ],
        });

        // Gradient bucket size (data-parallel).
        out.push(Ablation {
            name: "gradient bucket size".into(),
            benchmark: bm.name().into(),
            design,
            variants: [64 << 10, 1 << 20, 8 << 20, 64 << 20]
                .into_iter()
                .map(|bytes: u64| {
                    let mut cfg = SystemConfig::new(design);
                    cfg.sync_bucket_bytes = bytes;
                    (
                        format!("{} MiB", bytes as f64 / (1 << 20) as f64),
                        run(cfg, bm, ParallelStrategy::DataParallel),
                    )
                })
                .collect(),
        });

        // Prefetch lookahead (data-parallel).
        out.push(Ablation {
            name: "prefetch lookahead".into(),
            benchmark: bm.name().into(),
            design,
            variants: [0usize, 1, 4, 16]
                .into_iter()
                .map(|look| {
                    let mut cfg = SystemConfig::new(design);
                    cfg.prefetch_lookahead = look;
                    (
                        format!("{look} layers"),
                        run(cfg, bm, ParallelStrategy::DataParallel),
                    )
                })
                .collect(),
        });

        // Boundary pipelining (model-parallel, where it matters).
        out.push(Ablation {
            name: "boundary collective pipelining".into(),
            benchmark: bm.name().into(),
            design,
            variants: [0.0f64, 0.5, 1.0]
                .into_iter()
                .map(|f| {
                    let mut cfg = SystemConfig::new(design);
                    cfg.boundary_pipeline_fraction = f;
                    (
                        format!("{:.0}% hidden", f * 100.0),
                        run(cfg, bm, ParallelStrategy::ModelParallel),
                    )
                })
                .collect(),
        });

        // Page placement: the MC-DLA(L) vs MC-DLA(B) pair.
        out.push(Ablation {
            name: "page placement (Fig. 10)".into(),
            benchmark: bm.name().into(),
            design: SystemDesign::McDlaBwAware,
            variants: vec![
                (
                    "LOCAL".into(),
                    run(
                        SystemConfig::new(SystemDesign::McDlaLocal),
                        bm,
                        ParallelStrategy::DataParallel,
                    ),
                ),
                (
                    "BW_AWARE".into(),
                    run(
                        SystemConfig::new(SystemDesign::McDlaBwAware),
                        bm,
                        ParallelStrategy::DataParallel,
                    ),
                ),
            ],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recompute_policy_helps_dc_dla() {
        // Offloading cheap layers' inputs adds PCIe traffic: the recompute
        // optimization must never lose on the bandwidth-starved design.
        let abl = ablations(SystemDesign::DcDla);
        for a in abl.iter().filter(|a| a.name.contains("recompute")) {
            let recompute = a.variants[0].1;
            let offload = a.variants[1].1;
            assert!(
                recompute <= offload * 1.001,
                "{}: recompute {recompute} worse than offload {offload}",
                a.benchmark
            );
        }
    }

    #[test]
    fn lookahead_zero_is_never_faster() {
        let abl = ablations(SystemDesign::DcDla);
        for a in abl.iter().filter(|a| a.name.contains("lookahead")) {
            let zero = a.variants[0].1;
            let best = a.variants.iter().map(|(_, t)| *t).fold(f64::MAX, f64::min);
            assert!(
                zero >= best * 0.999,
                "{}: zero lookahead beat {best}",
                a.benchmark
            );
        }
    }

    #[test]
    fn pipelining_is_monotone_for_model_parallel() {
        let abl = ablations(SystemDesign::McDlaBwAware);
        for a in abl.iter().filter(|a| a.name.contains("pipelining")) {
            let times: Vec<f64> = a.variants.iter().map(|(_, t)| *t).collect();
            assert!(
                times.windows(2).all(|w| w[1] <= w[0] * 1.001),
                "{}: more pipelining slowed things: {times:?}",
                a.benchmark
            );
        }
    }

    #[test]
    fn bw_aware_never_loses_to_local() {
        for a in ablations(SystemDesign::McDlaBwAware)
            .iter()
            .filter(|a| a.name.contains("page placement"))
        {
            assert!(
                a.variants[1].1 <= a.variants[0].1 * 1.001,
                "{}",
                a.benchmark
            );
            assert!(a.spread() >= 1.0);
        }
    }
}
