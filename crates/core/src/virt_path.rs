//! Effective memory-virtualization data paths per design point.
//!
//! Every overlay transfer traverses a chain of shared resources. Under the
//! symmetric, lock-step workloads of the evaluation (all devices run the
//! same layer schedule), max-min fair sharing reduces to static division:
//! each device's effective bandwidth is the minimum over the path of
//! `capacity / concurrent users`. The [`VirtPath::build_flow_channels`]
//! helper materializes the same path in a [`FlowNetwork`] so tests can
//! verify the static model against the fluid-flow solver.

use mcdla_sim::{Bandwidth, ChannelId, FlowNetwork, SimDuration};
use serde::{Deserialize, Serialize};

use crate::design::{SystemConfig, SystemDesign};

/// One design point's device-to-backing-store path, reduced to effective
/// per-device numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtPath {
    /// Human-readable path description.
    pub label: String,
    /// Effective per-device, per-direction bandwidth under full symmetric
    /// load, in GB/s.
    pub per_device_gbs: f64,
    /// Fixed latency added to each overlay transfer (DMA setup + protocol).
    pub op_latency: SimDuration,
    /// Whether transfers consume host CPU memory bandwidth (Fig. 12).
    pub touches_host: bool,
    /// Peak per-socket CPU DRAM draw when every device on the socket
    /// transfers at once (one direction), in GB/s.
    pub socket_peak_gbs: f64,
}

impl VirtPath {
    /// Effective bandwidth as a [`Bandwidth`].
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::gb_per_sec(self.per_device_gbs)
    }

    /// Derives the virtualization path for a configuration; `None` for the
    /// oracle (nothing to virtualize).
    pub fn from_config(cfg: &SystemConfig) -> Option<VirtPath> {
        let op_latency = cfg.dma_op_latency;
        match cfg.design {
            SystemDesign::DcDlaOracle => None,
            SystemDesign::DcDla => {
                // Device x16 -> PCIe switch uplink (shared) -> socket DRAM
                // (shared by all devices on the socket).
                let endpoint = cfg.host.pcie.x16_gbs();
                let switch_share = endpoint / cfg.devices_per_switch() as f64;
                let socket_share = cfg.host.socket_dram_gbs / cfg.devices_per_socket() as f64;
                let eff = endpoint.min(switch_share).min(socket_share);
                Some(VirtPath {
                    label: format!(
                        "PCIe {:?} x16 via switch (/{}) to socket DRAM (/{})",
                        cfg.host.pcie,
                        cfg.devices_per_switch(),
                        cfg.devices_per_socket()
                    ),
                    per_device_gbs: eff,
                    op_latency,
                    touches_host: true,
                    socket_peak_gbs: (eff * cfg.devices_per_socket() as f64)
                        .min(cfg.host.socket_dram_gbs),
                })
            }
            SystemDesign::HcDla => {
                // Half the high-bandwidth links (N/2 = 3) to the CPU; the
                // hypothetical socket serves all four clients at full rate.
                let links = (cfg.device.link_count / 2) as f64 * cfg.device.link_bandwidth_gbs;
                let socket_share = cfg.host.socket_dram_gbs / cfg.devices_per_socket() as f64;
                let eff = links.min(socket_share);
                Some(VirtPath {
                    label: format!(
                        "{} high-bandwidth links to socket DRAM (/{})",
                        cfg.device.link_count / 2,
                        cfg.devices_per_socket()
                    ),
                    per_device_gbs: eff,
                    op_latency,
                    touches_host: true,
                    socket_peak_gbs: (eff * cfg.devices_per_socket() as f64)
                        .min(cfg.host.socket_dram_gbs),
                })
            }
            SystemDesign::McDlaStar => {
                // Two dedicated links to the device's own memory-node.
                let links = 2.0 * cfg.device.link_bandwidth_gbs;
                let dimm = cfg.memory_node.memory_bandwidth_gbs; // single client
                Some(VirtPath {
                    label: "2 links to dedicated memory-node".into(),
                    per_device_gbs: links.min(dimm),
                    op_latency,
                    touches_host: false,
                    socket_peak_gbs: 0.0,
                })
            }
            SystemDesign::McDlaLocal => {
                // LOCAL placement: N/2 = 3 links to one neighbor
                // memory-node (Fig. 10: D/(N*B/2)).
                let links = (cfg.device.link_count / 2) as f64 * cfg.device.link_bandwidth_gbs;
                // The whole allocation lives in one node; that node's DIMM
                // bandwidth is available to this single LOCAL client.
                let dimm = cfg.memory_node.memory_bandwidth_gbs;
                Some(VirtPath {
                    label: "LOCAL: 3 ring links to one neighbor memory-node".into(),
                    per_device_gbs: links.min(dimm),
                    op_latency,
                    touches_host: false,
                    socket_peak_gbs: 0.0,
                })
            }
            SystemDesign::McDlaBwAware => {
                // BW_AWARE: all N links across both neighbors (Fig. 10:
                // D/(N*B)); each neighbor node serves two clients, so the
                // DIMM side offers memory_bandwidth/2 per client per side.
                let side_links = (cfg.device.link_count / 2) as f64 * cfg.device.link_bandwidth_gbs;
                let side_dimm =
                    cfg.memory_node.memory_bandwidth_gbs / cfg.memory_node.link_groups as f64;
                let per_side = side_links.min(side_dimm);
                Some(VirtPath {
                    label: "BW_AWARE: 3+3 ring links to both neighbor memory-nodes".into(),
                    per_device_gbs: 2.0 * per_side,
                    op_latency,
                    touches_host: false,
                    socket_peak_gbs: 0.0,
                })
            }
        }
    }

    /// Materializes one direction of this path for **all** devices of `cfg`
    /// into a [`FlowNetwork`], returning per-device channel paths. Used to
    /// validate the static sharing model against the fluid solver.
    pub fn build_flow_channels(cfg: &SystemConfig, net: &mut FlowNetwork) -> Vec<Vec<ChannelId>> {
        let mut paths = vec![Vec::new(); cfg.devices];
        match cfg.design {
            SystemDesign::DcDlaOracle => {}
            SystemDesign::DcDla => {
                let sockets: Vec<ChannelId> = (0..cfg.host.sockets)
                    .map(|s| {
                        net.add_channel(
                            format!("socket{s}-dram"),
                            Bandwidth::gb_per_sec(cfg.host.socket_dram_gbs),
                        )
                    })
                    .collect();
                let switches: Vec<ChannelId> = (0..cfg.host.pcie_switches)
                    .map(|s| {
                        net.add_channel(
                            format!("pcie-switch{s}"),
                            Bandwidth::gb_per_sec(cfg.host.pcie.x16_gbs()),
                        )
                    })
                    .collect();
                for (d, path) in paths.iter_mut().enumerate() {
                    let endpoint = net.add_channel(
                        format!("dev{d}-pcie"),
                        Bandwidth::gb_per_sec(cfg.host.pcie.x16_gbs()),
                    );
                    // Fixed pairing: devices 2k and 2k+1 share switch k.
                    let switch = switches[(d / 2) % cfg.host.pcie_switches];
                    let socket = sockets[(d / cfg.devices_per_socket()) % cfg.host.sockets];
                    path.extend([endpoint, switch, socket]);
                }
            }
            SystemDesign::HcDla => {
                let sockets: Vec<ChannelId> = (0..cfg.host.sockets)
                    .map(|s| {
                        net.add_channel(
                            format!("socket{s}-dram"),
                            Bandwidth::gb_per_sec(cfg.host.socket_dram_gbs),
                        )
                    })
                    .collect();
                let link_gbs = (cfg.device.link_count / 2) as f64 * cfg.device.link_bandwidth_gbs;
                for (d, path) in paths.iter_mut().enumerate() {
                    let links = net
                        .add_channel(format!("dev{d}-hostlinks"), Bandwidth::gb_per_sec(link_gbs));
                    let socket = sockets[(d / cfg.devices_per_socket()) % cfg.host.sockets];
                    path.extend([links, socket]);
                }
            }
            SystemDesign::McDlaStar | SystemDesign::McDlaLocal | SystemDesign::McDlaBwAware => {
                // Per-device links plus per-memory-node DIMM channels. For
                // the ring designs, node m's DIMM bandwidth is shared by
                // its left/right clients.
                let vp = VirtPath::from_config(cfg).expect("memory-centric path");
                let dimms: Vec<ChannelId> = (0..cfg.devices)
                    .map(|m| {
                        net.add_channel(
                            format!("memnode{m}-dimm"),
                            Bandwidth::gb_per_sec(cfg.memory_node.memory_bandwidth_gbs),
                        )
                    })
                    .collect();
                for (d, path) in paths.iter_mut().enumerate() {
                    let links = net.add_channel(
                        format!("dev{d}-virtlinks"),
                        Bandwidth::gb_per_sec(vp.per_device_gbs),
                    );
                    path.push(links);
                    match cfg.design {
                        SystemDesign::McDlaBwAware => {
                            // Both neighbors carry half the traffic each;
                            // approximate with both DIMM channels on the
                            // path at half weight by using the right node
                            // only when validating (the link channel already
                            // caps at 150 GB/s < 2 x 128 GB/s of DIMM).
                            path.push(dimms[d]);
                        }
                        _ => path.push(dimms[d]),
                    }
                }
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdla_sim::{Bytes, SimTime};

    fn path(design: SystemDesign) -> VirtPath {
        VirtPath::from_config(&SystemConfig::new(design)).expect("path")
    }

    #[test]
    fn oracle_has_no_path() {
        assert!(VirtPath::from_config(&SystemConfig::new(SystemDesign::DcDlaOracle)).is_none());
    }

    #[test]
    fn effective_bandwidths_match_paper() {
        // DC-DLA: 16 GB/s endpoint, halved by switch sharing -> 8 GB/s.
        assert_eq!(path(SystemDesign::DcDla).per_device_gbs, 8.0);
        // HC-DLA: 3 links = 75 GB/s, socket 300/4 = 75 -> 75 GB/s.
        assert_eq!(path(SystemDesign::HcDla).per_device_gbs, 75.0);
        // MC-DLA(S): 2 links = 50 GB/s.
        assert_eq!(path(SystemDesign::McDlaStar).per_device_gbs, 50.0);
        // MC-DLA(L): 3 links = 75 GB/s (Fig. 10 LOCAL).
        assert_eq!(path(SystemDesign::McDlaLocal).per_device_gbs, 75.0);
        // MC-DLA(B): 150 GB/s (Fig. 10 BW_AWARE).
        assert_eq!(path(SystemDesign::McDlaBwAware).per_device_gbs, 150.0);
    }

    #[test]
    fn single_device_dc_gets_full_pcie() {
        let cfg = SystemConfig::new(SystemDesign::DcDla).with_devices(1);
        let p = VirtPath::from_config(&cfg).unwrap();
        assert_eq!(p.per_device_gbs, 16.0);
    }

    #[test]
    fn gen4_doubles_dc_bandwidth() {
        let cfg = SystemConfig::new(SystemDesign::DcDla).with_pcie_gen4();
        let p = VirtPath::from_config(&cfg).unwrap();
        assert_eq!(p.per_device_gbs, 16.0); // 32 / 2-way switch sharing
        let one = SystemConfig::new(SystemDesign::DcDla)
            .with_pcie_gen4()
            .with_devices(1);
        assert_eq!(VirtPath::from_config(&one).unwrap().per_device_gbs, 32.0);
    }

    #[test]
    fn host_exposure_and_socket_peaks() {
        let dc = path(SystemDesign::DcDla);
        assert!(dc.touches_host);
        assert_eq!(dc.socket_peak_gbs, 32.0); // 8 GB/s x 4 devices
        let hc = path(SystemDesign::HcDla);
        assert_eq!(hc.socket_peak_gbs, 300.0); // the §IV worst case
        for d in [
            SystemDesign::McDlaStar,
            SystemDesign::McDlaLocal,
            SystemDesign::McDlaBwAware,
        ] {
            let p = path(d);
            assert!(!p.touches_host);
            assert_eq!(p.socket_peak_gbs, 0.0);
        }
    }

    #[test]
    fn static_model_matches_fluid_solver() {
        // Run 8 symmetric transfers through the full channel graph and
        // check each flow's steady rate equals the static prediction.
        for design in [
            SystemDesign::DcDla,
            SystemDesign::HcDla,
            SystemDesign::McDlaBwAware,
        ] {
            let cfg = SystemConfig::new(design);
            let expect = VirtPath::from_config(&cfg).unwrap().per_device_gbs;
            let mut net = FlowNetwork::new();
            let device_paths = VirtPath::build_flow_channels(&cfg, &mut net);
            let flows: Vec<_> = device_paths
                .iter()
                .map(|p| {
                    net.open_flow(SimTime::ZERO, p, Bytes::from_gb(10))
                        .expect("flow")
                })
                .collect();
            for f in flows {
                let rate = net.flow_rate(f).unwrap().as_gb_per_sec();
                assert!(
                    (rate - expect).abs() < 1e-6,
                    "{design}: fluid {rate} vs static {expect}"
                );
            }
        }
    }
}
