//! The training-iteration simulator.
//!
//! Simulates one iteration (forward + backward propagation) of a network on
//! one system design point, with the three overlapped activities the paper
//! breaks out in Fig. 11 running on separate per-device engines:
//!
//! * **computation** — the PE array executes layers in topological order
//!   (reverse order for backpropagation);
//! * **synchronization** — the protocol engine runs ring collectives; for
//!   model-parallel training the boundary collectives *block* the next
//!   layer, for data-parallel training the dW all-reduces overlap freely;
//! * **memory virtualization** — the DMA unit offloads every scheduled
//!   stash after its last forward use and prefetches it (with lookahead)
//!   before its backward use; forward compute stalls when the
//!   pinned-buffer budget of in-flight offloads is exhausted (the vDNN
//!   behavior).
//!
//! All devices execute the same schedule in lock-step, so shared-channel
//! contention reduces to the static division computed by
//! [`VirtPath`](crate::VirtPath) (validated against the fluid-flow solver
//! in that module's tests), and simulating one representative device yields
//! the node-level timeline.
//!
//! # Staging
//!
//! The simulation is organized as a staged pipeline: the expensive
//! network-, plan-, schedule-, and fabric-dependent preparation is
//! captured in plain-data **artifacts** ([`PlanArt`], [`SchedArt`],
//! [`FabricSummary`], the consumer lists, and the per-layer timing
//! table), and a lean, uncached [`assemble`] pass replays the event loop
//! over them. [`IterationSim::run`] builds every artifact from scratch —
//! the monolithic reference path — while [`crate::stages`] memoizes each
//! artifact in a [`StageCache`](crate::StageCache) keyed by exactly the
//! scenario axes it depends on, so a mega-grid that varies one knob
//! rebuilds only the artifacts that knob actually touches.

use std::sync::Arc;

use mcdla_accel::AccelTimingModel;
use mcdla_dnn::{DataType, Network};
use mcdla_interconnect::{
    CollectiveKind, CollectiveModel, FabricSpec, FabricTopology, RingShape, RoutedFabric,
};
use mcdla_parallel::{ParallelStrategy, SyncOp, SyncTrigger, WorkerPlan};
use mcdla_sim::{Bytes, FifoEngine, SimDuration, SimTime};
use mcdla_vmem::{Disposition, VirtPolicy, VirtSchedule};

use crate::design::{SystemConfig, SystemDesign, BACKPLANE_DEVICES};
use crate::report::IterationReport;
use crate::virt_path::VirtPath;

/// Simulator for one (design, network, strategy) combination.
///
/// # Examples
///
/// ```
/// use mcdla_core::{IterationSim, SystemConfig, SystemDesign};
/// use mcdla_dnn::Benchmark;
/// use mcdla_parallel::ParallelStrategy;
///
/// let net = Benchmark::AlexNet.build();
/// let dc = IterationSim::new(SystemConfig::new(SystemDesign::DcDla), &net,
///     ParallelStrategy::DataParallel).run();
/// let mc = IterationSim::new(SystemConfig::new(SystemDesign::McDlaBwAware), &net,
///     ParallelStrategy::DataParallel).run();
/// assert!(mc.iteration_time < dc.iteration_time);
/// ```
#[derive(Debug)]
pub struct IterationSim<'a> {
    cfg: SystemConfig,
    net: &'a Network,
    plan: WorkerPlan,
    schedule: VirtSchedule,
    timing: AccelTimingModel,
    fabric: Arc<dyn CommFabric>,
    virt: Option<VirtPath>,
}

impl<'a> IterationSim<'a> {
    /// Prepares a simulation with the paper's default overlay policy.
    pub fn new(cfg: SystemConfig, net: &'a Network, strategy: ParallelStrategy) -> Self {
        let policy = if cfg.design.virtualizes() {
            VirtPolicy::paper_default()
        } else {
            VirtPolicy::disabled()
        };
        IterationSim::with_policy(cfg, net, strategy, policy)
    }

    /// Prepares a simulation with an explicit overlay policy (ablations;
    /// the oracle design always ignores the policy and disables overlay).
    pub fn with_policy(
        cfg: SystemConfig,
        net: &'a Network,
        strategy: ParallelStrategy,
        policy: VirtPolicy,
    ) -> Self {
        let plan = WorkerPlan::plan(net, strategy, cfg.devices, cfg.global_batch, cfg.dtype);
        let policy = if cfg.design.virtualizes() {
            policy
        } else {
            VirtPolicy::disabled()
        };
        let schedule = VirtSchedule::analyze(net, plan.virt_batch(), cfg.dtype, policy);
        let timing = AccelTimingModel::new(cfg.device.clone(), cfg.dtype);
        let fabric = build_fabric(&cfg);
        let virt = VirtPath::from_config(&cfg);
        IterationSim {
            cfg,
            net,
            plan,
            schedule,
            timing,
            fabric,
            virt,
        }
    }

    /// The worker plan in effect.
    pub fn plan(&self) -> &WorkerPlan {
        &self.plan
    }

    /// The overlay schedule in effect.
    pub fn schedule(&self) -> &VirtSchedule {
        &self.schedule
    }

    /// Ring shapes the collectives run over.
    pub fn ring_shapes(&self) -> &[RingShape] {
        self.fabric.ring_shapes()
    }

    /// The communication fabric pricing this simulation's collectives.
    pub fn fabric(&self) -> &dyn CommFabric {
        &*self.fabric
    }

    /// Duration of one collective under this design's fabric.
    pub fn collective_time(&self, kind: CollectiveKind, bytes: u64) -> SimDuration {
        if self.fabric.ring_shapes().is_empty() || self.plan.workers < 2 {
            return SimDuration::ZERO;
        }
        self.fabric.collective_time(kind, Bytes::new(bytes))
    }

    /// Runs the iteration and produces the report: builds every stage
    /// artifact from scratch, then assembles. This is the monolithic
    /// reference the staged pipeline ([`crate::stages`]) must match
    /// bit-for-bit.
    pub fn run(&self) -> IterationReport {
        let shape = NetShape::of(self.net);
        let timings = layer_timings(&self.timing, self.net, self.plan.worker_batch);
        let plan_art = PlanArt::build(&self.plan, self.net.layers().len(), &self.cfg);
        let sched_art = SchedArt::build(
            &self.schedule,
            self.net,
            self.plan.virt_batch(),
            self.cfg.dtype,
        );
        let xfer = xfer_table(
            &sched_art,
            plan_art.stash_scale,
            self.cfg.compression_ratio,
            self.virt.as_ref(),
        );
        assemble(
            &self.cfg,
            self.net,
            &shape,
            &timings,
            &plan_art,
            &sched_art,
            &xfer,
            self.virt.as_ref(),
            &|oi| {
                let op = &plan_art.fused[oi];
                self.collective_time(op.kind, op.bytes)
            },
        )
    }
}

/// Compressed sparse rows: per-layer `u32` index lists packed into two
/// flat arrays. The artifact builders run once per stage-cache miss but
/// a mega-grid makes millions of misses, and a `Vec<Vec<u32>>` costs one
/// allocation per layer; this costs two per artifact and keeps the
/// assembly loop's reads contiguous.
#[derive(Debug, Clone, Default)]
pub(crate) struct Csr {
    /// Row boundaries: row `l` spans `idx[off[l]..off[l + 1]]`.
    off: Vec<u32>,
    idx: Vec<u32>,
}

impl Csr {
    /// Packs `(row, value)` pairs, preserving each row's pair order
    /// (the counting sort below is stable).
    fn from_pairs(rows: usize, pairs: &[(u32, u32)]) -> Csr {
        let mut off = vec![0u32; rows + 1];
        for &(r, _) in pairs {
            off[r as usize + 1] += 1;
        }
        for i in 0..rows {
            off[i + 1] += off[i];
        }
        let mut idx = vec![0u32; pairs.len()];
        let mut cursor: Vec<u32> = off[..rows].to_vec();
        for &(r, v) in pairs {
            let c = &mut cursor[r as usize];
            idx[*c as usize] = v;
            *c += 1;
        }
        Csr { off, idx }
    }

    pub fn row(&self, l: usize) -> &[u32] {
        &self.idx[self.off[l] as usize..self.off[l + 1] as usize]
    }
}

/// Stage-2 artifact (network shape): per-layer input lists (so the
/// assembly loop never walks the full `Layer` structs) and their
/// transpose — `consumers.row(l)` lists the layers that read layer `l`'s
/// output, the backward-pass dependency fan-in.
#[derive(Debug, Clone)]
pub(crate) struct NetShape {
    pub inputs: Csr,
    pub consumers: Csr,
}

impl NetShape {
    pub fn of(net: &Network) -> NetShape {
        let n = net.layers().len();
        let mut fwd: Vec<(u32, u32)> = Vec::new();
        let mut bwd: Vec<(u32, u32)> = Vec::new();
        for layer in net.layers() {
            let l = layer.id().index() as u32;
            for &p in layer.inputs() {
                fwd.push((l, p.index() as u32));
                bwd.push((p.index() as u32, l));
            }
        }
        NetShape {
            inputs: Csr::from_pairs(n, &fwd),
            consumers: Csr::from_pairs(n, &bwd),
        }
    }
}

/// Stage-2 artifact (layer timing): per-layer `(forward, backward)`
/// durations at `worker_batch`, **unscaled** — [`assemble`] applies
/// `macs_scale` exactly where the monolithic loop did, so caching the
/// table cannot perturb a single float operation. A layer's recompute
/// cost equals its forward time, so the pair covers all three uses.
pub(crate) fn layer_timings(
    timing: &AccelTimingModel,
    net: &Network,
    worker_batch: u64,
) -> Vec<(SimDuration, SimDuration)> {
    net.layers()
        .iter()
        .map(|l| {
            (
                timing.forward_time(l, worker_batch),
                timing.backward_time(l, worker_batch),
            )
        })
        .collect()
}

/// Stage-2 artifact (worker plan): the plan scalars [`assemble`] reads,
/// the bucket-fused sync schedule, and per-trigger-layer indices into it.
///
/// Deliberately batch-free: the per-worker batch is a closed-form
/// function of the scenario axes (`global_batch / devices` for data
/// parallelism, `global_batch` for model parallelism), and data-parallel
/// sync ops carry *weight* bytes — so one cached artifact serves a whole
/// batch sweep (the stage key drops the batch axis for data-parallel
/// plans).
#[derive(Debug, Clone)]
pub(crate) struct PlanArt {
    pub strategy: ParallelStrategy,
    pub workers: usize,
    pub macs_scale: f64,
    pub weight_scale: f64,
    pub stash_scale: f64,
    pub total_sync_bytes: u64,
    /// Data-parallel dW all-reduces fused into the paper's 8 MB buckets.
    pub fused: Vec<SyncOp>,
    /// Per-layer indices into `fused` triggered after the forward pass.
    pub fwd_ops: Csr,
    /// Per-layer indices into `fused` triggered after the backward pass.
    pub bwd_ops: Csr,
}

impl PlanArt {
    pub fn build(plan: &WorkerPlan, layers: usize, cfg: &SystemConfig) -> PlanArt {
        let fused = plan.fuse_buckets(cfg.sync_bucket_bytes);
        let mut fwd: Vec<(u32, u32)> = Vec::new();
        let mut bwd: Vec<(u32, u32)> = Vec::new();
        for (i, op) in fused.iter().enumerate() {
            match op.trigger {
                SyncTrigger::AfterForward(l) => fwd.push((l.index() as u32, i as u32)),
                SyncTrigger::AfterBackward(l) => bwd.push((l.index() as u32, i as u32)),
            }
        }
        let fwd_ops = Csr::from_pairs(layers, &fwd);
        let bwd_ops = Csr::from_pairs(layers, &bwd);
        PlanArt {
            strategy: plan.strategy,
            workers: plan.workers,
            macs_scale: plan.macs_scale,
            weight_scale: plan.weight_scale,
            stash_scale: plan.stash_scale,
            total_sync_bytes: plan.total_sync_bytes(),
            fused,
            fwd_ops,
            bwd_ops,
        }
    }
}

/// Stage-2 artifact (overlay schedule): per-layer dispositions and stash
/// sizes, offload lists indexed by trigger layer, and the virtualized
/// footprint the pinned-buffer budget derives from.
#[derive(Debug, Clone)]
pub(crate) struct SchedArt {
    pub disposition: Vec<Disposition>,
    pub stash_bytes: Vec<u64>,
    /// `offloads.row(l)` = layers whose stash leaves device memory after
    /// layer `l`'s forward pass (its last forward consumer), in the
    /// schedule's launch order.
    pub offloads: Csr,
    /// `footprint(virt_batch, dtype).total_virtualized()`.
    pub total_virtualized: u64,
}

impl SchedArt {
    pub fn build(
        schedule: &VirtSchedule,
        net: &Network,
        virt_batch: u64,
        dtype: DataType,
    ) -> SchedArt {
        let entries = schedule.entries();
        // Same partition as `VirtSchedule::offloads_by_trigger`, packed
        // flat: entry order is schedule order within each trigger.
        let pairs: Vec<(u32, u32)> = entries
            .iter()
            .filter(|e| e.disposition == Disposition::Offload)
            .map(|e| (e.offload_after.index() as u32, e.layer.index() as u32))
            .collect();
        let offloads = Csr::from_pairs(entries.len(), &pairs);
        SchedArt {
            disposition: entries.iter().map(|e| e.disposition).collect(),
            stash_bytes: entries.iter().map(|e| e.stash_bytes).collect(),
            offloads,
            total_virtualized: net.footprint(virt_batch, dtype).total_virtualized(),
        }
    }
}

/// Stage-2 artifact (overlay transfers): effective bytes and DMA
/// duration per offloaded stash (slice scaling and cDMA-style
/// compression applied), `(0, ZERO)` for layers that stay resident.
/// Each stash crosses the channel twice (offload + prefetch) at the
/// same cost, so one precomputed pair serves both passes. Empty when
/// the design has no virtualization path.
pub(crate) fn xfer_table(
    sched: &SchedArt,
    stash_scale: f64,
    compression_ratio: f64,
    virt: Option<&VirtPath>,
) -> Vec<(u64, SimDuration)> {
    let Some(vp) = virt else {
        return Vec::new();
    };
    let bw = vp.bandwidth();
    sched
        .disposition
        .iter()
        .zip(&sched.stash_bytes)
        .map(|(&disp, &stash)| {
            if disp == Disposition::Offload {
                let bytes = (stash as f64 * stash_scale / compression_ratio).round() as u64;
                (bytes, vp.op_latency + bw.transfer_time(Bytes::new(bytes)))
            } else {
                (0, SimDuration::ZERO)
            }
        })
        .collect()
}

/// The boundary behind which the engine prices communication.
///
/// Two implementations exist: [`AnalyticalFabric`] — the closed-form
/// ring-algorithm model the paper's numbers come from (the fast path,
/// selected when [`SystemConfig::topology`] is unset) — and
/// [`FlowFabric`], which realizes every collective as routed flows on a
/// concrete [`FabricTopology`] with max-min fair link sharing, so
/// congestion and route contention (invisible to the closed form) price
/// themselves. Both answer the same two questions: which logical rings
/// the collectives run over, and what one collective costs.
pub trait CommFabric: std::fmt::Debug + Send + Sync {
    /// Ring shapes the collectives run over (empty = no fabric: a
    /// single-device configuration never synchronizes).
    fn ring_shapes(&self) -> &[RingShape];

    /// Duration of one `kind` collective moving `size` payload bytes.
    fn collective_time(&self, kind: CollectiveKind, size: Bytes) -> SimDuration;

    /// The concrete topology flows are routed over, if any (`None` for
    /// the analytical model).
    fn topology(&self) -> Option<FabricTopology> {
        None
    }
}

/// The closed-form fabric: [`CollectiveModel::striped_latency`] over the
/// design's ring set at the effective duplex link rate. Selected when no
/// [`FabricTopology`] is requested; bit-identical to the pre-refactor
/// engine.
#[derive(Debug, Clone)]
pub struct AnalyticalFabric {
    rings: Vec<RingShape>,
    model: CollectiveModel,
}

impl CommFabric for AnalyticalFabric {
    fn ring_shapes(&self) -> &[RingShape] {
        &self.rings
    }

    fn collective_time(&self, kind: CollectiveKind, size: Bytes) -> SimDuration {
        self.model.striped_latency(kind, size, &self.rings)
    }
}

/// The flow-level fabric: collectives become timed flow batches routed
/// hop-by-hop over a concrete [`FabricTopology`] and drained under
/// max-min fair link sharing ([`RoutedFabric`]).
///
/// The topology knob asks "what if this design's collective plane were
/// wired as X?", so the plane links run at the device's native duplex
/// rate and *contention on the realized routes* — not the analytical
/// scale-out throttle — prices the fabric. Within one backplane the
/// routes are exactly the design's rings on dedicated links, which is
/// why the flow answer agrees with [`AnalyticalFabric`] to within
/// byte-rounding there; past it, ring/line topologies escape between
/// backplanes over the shared host-PCIe uplink share while switched
/// topologies keep dedicated lanes — the §VI cliff.
#[derive(Debug, Clone)]
pub struct FlowFabric {
    routed: RoutedFabric,
    model: CollectiveModel,
}

impl CommFabric for FlowFabric {
    fn ring_shapes(&self) -> &[RingShape] {
        self.routed.ring_shapes()
    }

    fn collective_time(&self, kind: CollectiveKind, size: Bytes) -> SimDuration {
        self.routed.collective_time(&self.model, kind, size)
    }

    fn topology(&self) -> Option<FabricTopology> {
        Some(self.routed.kind())
    }
}

/// Builds the fabric a configuration synchronizes over:
/// [`AnalyticalFabric`] when `cfg.topology` is unset, otherwise a
/// [`FlowFabric`] realizing the design's ring planes on the requested
/// topology.
pub(crate) fn build_fabric(cfg: &SystemConfig) -> Arc<dyn CommFabric> {
    let (rings, duplex_gbs) = comm_fabric(cfg);
    match cfg.topology {
        None => Arc::new(AnalyticalFabric {
            model: CollectiveModel::with_link_bandwidth(duplex_gbs),
            rings,
        }),
        Some(kind) => {
            let plane_gbs = 2.0 * cfg.device.link_bandwidth_gbs;
            let spec = FabricSpec {
                devices: cfg.devices,
                planes: rings,
                plane_gbs,
                backplane: BACKPLANE_DEVICES,
                escape_gbs: 2.0 * cfg.host.pcie.x16_gbs() / cfg.devices_per_switch() as f64,
            };
            Arc::new(FlowFabric {
                model: CollectiveModel::with_link_bandwidth(plane_gbs),
                routed: RoutedFabric::build(kind, &spec),
            })
        }
    }
}

/// Stage-1 artifact: the communication fabric a configuration
/// synchronizes over, behind the [`CommFabric`] boundary.
#[derive(Debug, Clone)]
pub(crate) struct FabricSummary {
    pub fabric: Arc<dyn CommFabric>,
}

impl FabricSummary {
    pub fn of(cfg: &SystemConfig) -> FabricSummary {
        FabricSummary {
            fabric: build_fabric(cfg),
        }
    }
}

/// Stage-4: replays the iteration event loop over prebuilt artifacts.
/// Cheap and uncached — per-cell knobs (compression ratio, pinned-budget
/// override, pipeline fraction) enter only here, and every float
/// operation retains the monolithic loop's exact order, so the report is
/// bit-identical whether the artifacts were built fresh or served from a
/// stage cache. `collective(oi)` answers the cost of `plan.fused[oi]`
/// (an index, so callers can serve it from a per-plan vector).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    cfg: &SystemConfig,
    net: &Network,
    shape: &NetShape,
    timings: &[(SimDuration, SimDuration)],
    plan: &PlanArt,
    sched: &SchedArt,
    xfer: &[(u64, SimDuration)],
    virt: Option<&VirtPath>,
    collective: &dyn Fn(usize) -> SimDuration,
) -> IterationReport {
    let n = net.layers().len();
    let mut compute = FifoEngine::new();
    let mut comm = FifoEngine::new();
    let mut dma_out = FifoEngine::new();
    let mut dma_in = FifoEngine::new();

    let budget = if let Some(b) = cfg.pinned_budget_bytes {
        b
    } else {
        let resident =
            (sched.total_virtualized as f64 * plan.weight_scale.max(plan.stash_scale)) as u64;
        cfg.device
            .memory_capacity_bytes
            .saturating_sub(resident)
            .max(1 << 30)
    };

    // One arena for the five per-layer time vectors: separate mallocs
    // add up at mega-grid rates. The `*_sync_end` slices are
    // blocking-collective gates; `SimTime::ZERO` = none (a max against
    // zero is a no-op, so the sentinel is exact).
    let mut times = vec![SimTime::ZERO; 5 * n];
    let (fwd_end, rest) = times.split_at_mut(n);
    let (fwd_sync_end, rest) = rest.split_at_mut(n);
    let (bwd_start, rest) = rest.split_at_mut(n);
    let (bwd_end, bwd_sync_end) = rest.split_at_mut(n);
    bwd_start.fill(SimTime::MAX);
    let mut offload_end = vec![None::<SimTime>; n];
    let mut window = OffloadWindow::new(); // in-flight offloads
    let mut stall_total = SimDuration::ZERO;
    let mut virt_bytes = 0u64;

    // ---------- forward propagation ----------
    for l in 0..n {
        let mut ready = SimTime::ZERO;
        for &p in shape.inputs.row(l) {
            let p = p as usize;
            ready = ready.max(fwd_end[p]).max(fwd_sync_end[p]);
        }
        // Pinned-buffer stall: wait until in-flight offload bytes fit.
        let ready_mem = window.earliest_under_budget(ready, budget);
        stall_total += ready_mem.saturating_since(ready);
        let dur = timings[l].0 * plan.macs_scale;
        let c = compute.submit(ready_mem, dur);
        fwd_end[l] = c.end;
        // Launch the offloads whose last forward consumer just ran.
        for &e in sched.offloads.row(l) {
            let e = e as usize;
            let (bytes, dma) = xfer[e];
            let t = dma_out.submit(c.end, dma);
            offload_end[e] = Some(t.end);
            window.push(t.end, bytes);
            virt_bytes += bytes;
        }
        // Launch forward collectives (model-parallel all-gathers).
        for &oi in plan.fwd_ops.row(l) {
            let op = &plan.fused[oi as usize];
            let d = collective(oi as usize);
            let s = comm.submit(c.end, d);
            if op.blocking {
                let exposed = d * (1.0 - cfg.boundary_pipeline_fraction);
                let gate = s.start + exposed;
                fwd_sync_end[l] = fwd_sync_end[l].max(gate);
            }
        }
    }
    let mut fwd_complete = SimTime::ZERO;
    for l in 0..n {
        fwd_complete = fwd_complete.max(fwd_end[l]).max(fwd_sync_end[l]);
    }

    // ---------- backward propagation ----------
    let look = cfg.prefetch_lookahead;
    for l in (0..n).rev() {
        // Prefetch this layer's stash with lookahead.
        let mut prefetch_ready = SimTime::ZERO;
        if sched.disposition[l] == Disposition::Offload {
            // Lookahead 0 is the just-in-time (vDNN-minimal) case: the
            // prefetch is enqueued only when the next backward layer
            // completes; lookahead k enqueues when the k-th-later
            // backward layer *starts*.
            let enq = if look == 0 {
                if l + 1 >= n {
                    fwd_complete
                } else {
                    bwd_end[l + 1].max(fwd_complete)
                }
            } else if l + look >= n {
                fwd_complete
            } else {
                bwd_start[l + look].max(fwd_complete)
            };
            let avail = offload_end[l].unwrap_or(fwd_complete);
            let (bytes, dma) = xfer[l];
            let t = dma_in.submit(enq.max(avail), dma);
            prefetch_ready = t.end;
            virt_bytes += bytes;
        }
        // Dependencies: all consumers' backward passes (and their
        // blocking boundary collectives).
        let mut ready = fwd_complete;
        for &c in shape.consumers.row(l) {
            let c = c as usize;
            ready = ready.max(bwd_end[c]).max(bwd_sync_end[c]);
        }
        ready = ready.max(prefetch_ready);
        // Recomputed layers pay their forward pass again (footnote 4).
        let mut dur = timings[l].1 * plan.macs_scale;
        if sched.disposition[l] == Disposition::Recompute {
            dur += timings[l].0 * plan.macs_scale;
        }
        let c = compute.submit(ready, dur);
        bwd_start[l] = c.start;
        bwd_end[l] = c.end;
        // Launch backward collectives (dX all-reduce / dW buckets).
        // Blocking boundary collectives gate the producers' backward
        // passes, minus the chunk-pipelined fraction the framework
        // hides behind dependent compute.
        for &oi in plan.bwd_ops.row(l) {
            let op = &plan.fused[oi as usize];
            let d = collective(oi as usize);
            let s = comm.submit(c.end, d);
            if op.blocking {
                let exposed = d * (1.0 - cfg.boundary_pipeline_fraction);
                let gate = s.start + exposed;
                bwd_sync_end[l] = bwd_sync_end[l].max(gate);
            }
        }
    }

    // Weight update barrier: every engine drained.
    let iteration_end = compute
        .free_at()
        .max(comm.free_at())
        .max(dma_in.free_at())
        .max(dma_out.free_at());
    let iteration_time = iteration_end - SimTime::ZERO;

    // Fig. 12 CPU memory-bandwidth accounting.
    let (avg_gbs, max_gbs) = match virt {
        Some(vp) if vp.touches_host && virt_bytes > 0 => {
            let per_socket_bytes = virt_bytes as f64 * cfg.devices_per_socket() as f64;
            let avg = per_socket_bytes / iteration_time.as_secs_f64() / 1e9;
            (avg, vp.socket_peak_gbs)
        }
        _ => (0.0, 0.0),
    };

    IterationReport {
        design: cfg.design,
        benchmark: net.name().to_owned(),
        strategy: plan.strategy,
        devices: cfg.devices,
        global_batch: cfg.global_batch,
        iteration_time,
        compute_busy: compute.busy_time(),
        sync_busy: comm.busy_time(),
        virt_busy: dma_out.busy_time() + dma_in.busy_time(),
        memory_stall: stall_total,
        virt_bytes: Bytes::new(virt_bytes),
        sync_bytes: Bytes::new(plan.total_sync_bytes),
        cpu_socket_avg_gbs: avg_gbs,
        cpu_socket_max_gbs: max_gbs,
    }
}

/// The communication fabric a configuration synchronizes over: its ring
/// set and the effective per-link **duplex** bandwidth in GB/s.
///
/// Ring collectives exploit both directions of each duplex link (NCCL
/// splits every physical ring into two counter-rotating logical rings),
/// matching the paper's (N/2) x (2B) = 150 GB/s aggregate communication
/// bandwidth formula (§III-B). Within one backplane that is the whole
/// story; beyond [`BACKPLANE_DEVICES`] the fabric depends on the design:
///
/// * **memory-centric** designs ride the Fig. 15 pooled switch plane
///   ([`SystemConfig::scale_out_plane`]): every ring step crosses the
///   switch (2 hops), and the per-ring rate is what the plane's bisection
///   bandwidth sustains — the switched fabric erases the star/ring
///   attachment asymmetry for collectives (the designs keep their
///   distinct *virtualization* paths in [`VirtPath`](crate::VirtPath));
/// * **DC-DLA** (and its oracle) crosses backplanes over the host PCIe
///   interface: rings pay switch hops *and* are throttled to the shared
///   PCIe uplink rate — the §VI motivation for NVSwitch-class planes;
/// * **HC-DLA** keeps its single device ring at link rate, with switch
///   hops between backplanes (its host links are spoken for by
///   virtualization traffic).
fn comm_fabric(cfg: &SystemConfig) -> (Vec<RingShape>, f64) {
    let n = cfg.devices;
    let duplex = 2.0 * cfg.device.link_bandwidth_gbs;
    if n <= BACKPLANE_DEVICES {
        return (backplane_ring_shapes(cfg), duplex);
    }
    if let Some(plane) = cfg.scale_out_plane() {
        let rings = plane.ring_shapes();
        let per_direction = plane.collective_ring_share_gbs(rings.len());
        return (rings, 2.0 * per_direction);
    }
    let (ring_count, per_direction) = match cfg.design {
        SystemDesign::DcDla | SystemDesign::DcDlaOracle => {
            // One shared PCIe uplink per device carries *all* rings'
            // cross-backplane traffic, so its share is divided across
            // the ring set (unlike the backplane case, where each ring
            // owns two dedicated device-side links).
            let rings = 3;
            let pcie_share = cfg.host.pcie.x16_gbs() / cfg.devices_per_switch() as f64;
            let per_ring = pcie_share / rings as f64;
            (rings, per_ring.min(cfg.device.link_bandwidth_gbs))
        }
        SystemDesign::HcDla => (1, cfg.device.link_bandwidth_gbs),
        _ => unreachable!("memory-centric designs scale out on the pooled plane"),
    };
    let shapes = vec![
        RingShape {
            participants: n,
            hops: 2 * n,
        };
        ring_count
    ];
    (shapes, 2.0 * per_direction)
}

/// Ring sets per design for `cfg.devices` participants within one
/// backplane (the Fig. 5/7 layouts, generalized to n devices).
fn backplane_ring_shapes(cfg: &SystemConfig) -> Vec<RingShape> {
    let n = cfg.devices;
    if n < 2 {
        return Vec::new();
    }
    match cfg.design {
        SystemDesign::DcDla | SystemDesign::DcDlaOracle => {
            vec![RingShape::device_ring(n); 3]
        }
        SystemDesign::HcDla => vec![RingShape::device_ring(n)],
        SystemDesign::McDlaStar => vec![
            // Fig. 7(b)'s 8/12/20 hop counts, generalized to n devices.
            RingShape {
                participants: n,
                hops: n,
            },
            RingShape {
                participants: n,
                hops: n + n / 2,
            },
            RingShape {
                participants: n,
                hops: n + 3 * (n / 2),
            },
        ],
        SystemDesign::McDlaLocal | SystemDesign::McDlaBwAware => {
            vec![
                RingShape {
                    participants: n,
                    hops: 2 * n,
                };
                3
            ]
        }
    }
}

/// In-flight offload tracker for the pinned-buffer stall model.
///
/// The offload DMA engine is FIFO, so completion times arrive in
/// non-decreasing order and the outstanding bytes at any instant fall
/// monotonically as offloads retire: with prefix byte sums, the
/// "earliest time the outstanding bytes fit the budget" query is
/// `max(ready, ends[k - 1])` for the first `k` whose retirement frees
/// enough bytes. Prefix sums over `u64` are exact, so the answer is
/// bit-identical to the scan over all pending offloads it replaced.
struct OffloadWindow {
    /// Offload completion times, non-decreasing (FIFO engine).
    ends: Vec<SimTime>,
    /// `prefix[i]` = total bytes of offloads `0..i` (`prefix[0] == 0`).
    prefix: Vec<u64>,
    /// Cached fit point: first index with `prefix[fit] >= need` from
    /// the previous query.
    fit: usize,
}

impl OffloadWindow {
    fn new() -> Self {
        OffloadWindow {
            ends: Vec::new(),
            prefix: vec![0],
            fit: 0,
        }
    }

    fn push(&mut self, end: SimTime, bytes: u64) {
        debug_assert!(
            self.ends.last().is_none_or(|&e| e <= end),
            "offload completions must be FIFO-ordered"
        );
        self.ends.push(end);
        self.prefix.push(self.prefix[self.ends.len() - 1] + bytes);
    }

    /// Earliest `t >= ready` at which the bytes of offloads still in
    /// flight (ending strictly after `t`) drop to the budget.
    fn earliest_under_budget(&mut self, ready: SimTime, budget: u64) -> SimTime {
        let total = self.prefix[self.ends.len()];
        // Everything ever offloaded fits at once: no search needed.
        if total <= budget {
            return ready;
        }
        // Outstanding bytes at `t` are `total - prefix[k(t)]` where
        // `k(t)` counts retirements; they fit once `prefix[k] >= need`,
        // and the k-th offload retires at `ends[k - 1]`. The assembly
        // loop queries with one fixed budget while `total` only grows,
        // so `need` is non-decreasing across calls and the cached fit
        // point only moves forward (amortized O(1)); any other query
        // pattern falls back to a binary search.
        let need = total - budget;
        if self.fit > 0 && self.prefix[self.fit - 1] >= need {
            self.fit = self.prefix.partition_point(|&p| p < need);
        } else {
            while self.prefix[self.fit] < need {
                self.fit += 1;
            }
        }
        ready.max(self.ends[self.fit - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdla_dnn::Benchmark;

    fn run(design: SystemDesign, bm: Benchmark, strategy: ParallelStrategy) -> IterationReport {
        let net = bm.build();
        IterationSim::new(SystemConfig::new(design), &net, strategy).run()
    }

    #[test]
    fn oracle_is_fastest_and_dc_is_slowest() {
        for strategy in ParallelStrategy::ALL {
            for bm in [Benchmark::AlexNet, Benchmark::RnnGru] {
                let dc = run(SystemDesign::DcDla, bm, strategy);
                let mc = run(SystemDesign::McDlaBwAware, bm, strategy);
                let oracle = run(SystemDesign::DcDlaOracle, bm, strategy);
                assert!(
                    oracle.iteration_time <= mc.iteration_time,
                    "{bm}/{strategy}: oracle slower than MC"
                );
                assert!(
                    mc.iteration_time < dc.iteration_time,
                    "{bm}/{strategy}: MC not faster than DC"
                );
            }
        }
    }

    #[test]
    fn design_ordering_on_data_parallel_cnn() {
        // §V-B claims, per workload: DC-DLA is slowest, the oracle fastest,
        // MC-DLA(B) >= MC-DLA(L) >= MC-DLA(S), and MC-DLA(B) beats HC-DLA.
        // (HC-DLA vs MC-DLA(S) has no fixed per-workload order — HC's
        // 75 GB/s virtualization can beat the star's 50 GB/s on virt-bound
        // data-parallel runs; the paper's ordering is on harmonic means.)
        let perf = |d| run(d, Benchmark::VggE, ParallelStrategy::DataParallel).performance();
        let dc = perf(SystemDesign::DcDla);
        let hc = perf(SystemDesign::HcDla);
        let s = perf(SystemDesign::McDlaStar);
        let l = perf(SystemDesign::McDlaLocal);
        let b = perf(SystemDesign::McDlaBwAware);
        let o = perf(SystemDesign::DcDlaOracle);
        assert!(
            dc < hc && dc < s && dc < l && dc < b,
            "DC-DLA must be slowest"
        );
        assert!(o >= b && o >= hc, "oracle must be fastest");
        assert!(b >= l * 0.999 && l >= s * 0.999, "MC(B) >= MC(L) >= MC(S)");
        assert!(b > hc, "MC-DLA(B) must beat HC-DLA");
    }

    #[test]
    fn oracle_moves_no_virt_bytes() {
        let r = run(
            SystemDesign::DcDlaOracle,
            Benchmark::VggE,
            ParallelStrategy::DataParallel,
        );
        assert_eq!(r.virt_bytes, Bytes::ZERO);
        assert_eq!(r.virt_busy, SimDuration::ZERO);
        assert_eq!(r.cpu_socket_avg_gbs, 0.0);
    }

    #[test]
    fn mc_designs_use_no_cpu_bandwidth() {
        for d in [
            SystemDesign::McDlaStar,
            SystemDesign::McDlaLocal,
            SystemDesign::McDlaBwAware,
        ] {
            let r = run(d, Benchmark::GoogLeNet, ParallelStrategy::DataParallel);
            assert_eq!(r.cpu_socket_avg_gbs, 0.0, "{d}");
            assert_eq!(r.cpu_socket_max_gbs, 0.0, "{d}");
            assert!(r.virt_bytes.as_u64() > 0, "{d} still virtualizes");
        }
    }

    #[test]
    fn hc_dla_draws_heavily_on_cpu_memory() {
        // §V-A: HC-DLA can consume up to its provisioned 300 GB/s/socket.
        let r = run(
            SystemDesign::HcDla,
            Benchmark::VggE,
            ParallelStrategy::DataParallel,
        );
        assert_eq!(r.cpu_socket_max_gbs, 300.0);
        assert!(r.cpu_socket_avg_gbs > 50.0, "avg {}", r.cpu_socket_avg_gbs);
        let dc = run(
            SystemDesign::DcDla,
            Benchmark::VggE,
            ParallelStrategy::DataParallel,
        );
        assert!(dc.cpu_socket_max_gbs <= 32.0);
    }

    #[test]
    fn dc_dla_is_virtualization_bound_on_cnns() {
        // Fig. 11(a): memory virtualization dominates DC-DLA's bars on
        // 14 of 16 training runs.
        let r = run(
            SystemDesign::DcDla,
            Benchmark::VggE,
            ParallelStrategy::DataParallel,
        );
        assert!(r.virt_busy > r.compute_busy);
        assert!(r.virt_busy > r.sync_busy);
    }

    #[test]
    fn mc_b_spends_less_time_virtualizing_than_dc() {
        let dc = run(
            SystemDesign::DcDla,
            Benchmark::ResNet,
            ParallelStrategy::DataParallel,
        );
        let mc = run(
            SystemDesign::McDlaBwAware,
            Benchmark::ResNet,
            ParallelStrategy::DataParallel,
        );
        // Same bytes, ~19x the bandwidth.
        assert_eq!(dc.virt_bytes, mc.virt_bytes);
        assert!(mc.virt_busy.as_secs_f64() < dc.virt_busy.as_secs_f64() / 10.0);
    }

    #[test]
    fn model_parallel_synchronizes_more_than_data_parallel() {
        let dp = run(
            SystemDesign::DcDla,
            Benchmark::AlexNet,
            ParallelStrategy::DataParallel,
        );
        let mp = run(
            SystemDesign::DcDla,
            Benchmark::AlexNet,
            ParallelStrategy::ModelParallel,
        );
        assert!(mp.sync_busy > dp.sync_busy);
        assert!(mp.sync_bytes > dp.sync_bytes);
    }

    #[test]
    fn single_device_has_no_sync() {
        let net = Benchmark::AlexNet.build();
        let cfg = SystemConfig::new(SystemDesign::DcDla).with_devices(1);
        let r = IterationSim::new(cfg, &net, ParallelStrategy::DataParallel).run();
        assert_eq!(r.sync_busy, SimDuration::ZERO);
        assert!(r.virt_busy > SimDuration::ZERO);
    }

    #[test]
    fn compression_reduces_dc_iteration_time() {
        let net = Benchmark::VggE.build();
        let base = IterationSim::new(
            SystemConfig::new(SystemDesign::DcDla),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run();
        let cdma = IterationSim::new(
            SystemConfig::new(SystemDesign::DcDla).with_compression(2.6),
            &net,
            ParallelStrategy::DataParallel,
        )
        .run();
        assert!(cdma.iteration_time < base.iteration_time);
        let ratio = base.virt_bytes.as_f64() / cdma.virt_bytes.as_f64();
        assert!((ratio - 2.6).abs() < 0.01, "traffic ratio {ratio}");
    }

    #[test]
    fn backplane_fabric_is_unchanged_by_the_scale_out_path() {
        // Paper-default cells (n <= 8) must see exactly the pre-scale-out
        // fabric: per-design ring sets at full duplex link rate.
        for design in SystemDesign::ALL {
            let cfg = SystemConfig::new(design);
            let (rings, duplex) = comm_fabric(&cfg);
            assert_eq!(rings, backplane_ring_shapes(&cfg), "{design}");
            assert_eq!(duplex, 2.0 * cfg.device.link_bandwidth_gbs, "{design}");
        }
    }

    #[test]
    fn scale_out_fabric_routes_per_design() {
        // MC designs ride the pooled plane: 3 switch-crossing rings at
        // full link rate, regardless of attachment flavor.
        for d in [
            SystemDesign::McDlaStar,
            SystemDesign::McDlaLocal,
            SystemDesign::McDlaBwAware,
        ] {
            let cfg = SystemConfig::new(d).with_devices(32);
            let (rings, duplex) = comm_fabric(&cfg);
            assert_eq!(rings.len(), 3, "{d}");
            for r in &rings {
                assert_eq!(r.participants, 32, "{d}");
                assert_eq!(r.hops, 64, "{d}");
            }
            assert_eq!(duplex, 50.0, "{d}");
        }
        // DC-DLA crosses backplanes over shared PCIe: same ring count,
        // switch hops, throttled to the 8 GB/s uplink share.
        let dc = SystemConfig::new(SystemDesign::DcDla).with_devices(32);
        let (rings, duplex) = comm_fabric(&dc);
        assert_eq!(rings.len(), 3);
        assert_eq!(rings[0].hops, 64);
        // 2 x (16 GB/s x16 / 2 devices per switch) / 3 rings sharing
        // the one uplink: aggregate injection equals the uplink share.
        assert!((duplex - 16.0 / 3.0).abs() < 1e-12, "duplex {duplex}");
        assert!((3.0 * duplex - 16.0).abs() < 1e-9);
        // HC-DLA keeps its single link-rate ring.
        let hc = SystemConfig::new(SystemDesign::HcDla).with_devices(32);
        let (rings, duplex) = comm_fabric(&hc);
        assert_eq!(rings.len(), 1);
        assert_eq!(duplex, 50.0);
    }

    #[test]
    fn scale_out_grows_sync_and_preserves_the_mc_advantage() {
        // Fixed global batch, growing device count: synchronization cost
        // must rise monotonically, and MC-DLA(B) must beat DC-DLA at
        // every scale (the whole point of the pooled fabric).
        let net = Benchmark::VggE.build();
        let mut prev_sync = (SimDuration::ZERO, SimDuration::ZERO);
        for devices in [8usize, 16, 64, 256] {
            let dc = IterationSim::new(
                SystemConfig::new(SystemDesign::DcDla).with_devices(devices),
                &net,
                ParallelStrategy::DataParallel,
            )
            .run();
            let mc = IterationSim::new(
                SystemConfig::new(SystemDesign::McDlaBwAware).with_devices(devices),
                &net,
                ParallelStrategy::DataParallel,
            )
            .run();
            assert!(
                mc.iteration_time < dc.iteration_time,
                "{devices} devices: MC {:?} not faster than DC {:?}",
                mc.iteration_time,
                dc.iteration_time
            );
            assert!(dc.sync_busy >= prev_sync.0, "{devices}: DC sync shrank");
            assert!(mc.sync_busy >= prev_sync.1, "{devices}: MC sync shrank");
            prev_sync = (dc.sync_busy, mc.sync_busy);
        }
    }

    #[test]
    fn flow_fabric_agrees_with_analytical_inside_one_backplane() {
        // Acceptance: iteration times under the flow-routed Ring fabric
        // agree with the analytical model within 1% at <= 8 devices —
        // there the realized routes are exactly the design's rings on
        // dedicated links, so only byte-rounding separates the two.
        let net = Benchmark::AlexNet.build();
        for design in SystemDesign::ALL {
            for devices in [2usize, 4, 8] {
                let analytic = IterationSim::new(
                    SystemConfig::new(design).with_devices(devices),
                    &net,
                    ParallelStrategy::DataParallel,
                )
                .run();
                let flow = IterationSim::new(
                    SystemConfig::new(design)
                        .with_devices(devices)
                        .with_topology(FabricTopology::Ring),
                    &net,
                    ParallelStrategy::DataParallel,
                )
                .run();
                let a = analytic.iteration_time.as_secs_f64();
                let f = flow.iteration_time.as_secs_f64();
                let rel = (f - a).abs() / a;
                assert!(
                    rel < 0.01,
                    "{design}/{devices}dev: flow {f} vs analytic {a} (rel {rel})"
                );
            }
        }
    }

    #[test]
    fn pooled_switch_dodges_the_host_pcie_cliff_at_scale() {
        // Acceptance: the SS VI cliff shape under the flow fabric. Past
        // one backplane a ring topology escapes between chassis over the
        // shared host-PCIe uplink share, so its sync cost blows up with
        // scale; a pooled switch keeps dedicated per-plane lanes and
        // stays flat. The cliff shape: near-parity inside one backplane,
        // a severalfold gap at 64+ devices.
        let net = Benchmark::VggE.build();
        let sync_with = |topology: FabricTopology, devices: usize| {
            IterationSim::new(
                SystemConfig::new(SystemDesign::DcDla)
                    .with_devices(devices)
                    .with_topology(topology),
                &net,
                ParallelStrategy::DataParallel,
            )
            .run()
            .sync_busy
            .as_secs_f64()
        };
        let ratio = |devices| {
            sync_with(FabricTopology::Ring, devices)
                / sync_with(FabricTopology::PooledSwitch, devices)
        };
        let flat = ratio(8);
        assert!(
            flat < 1.5,
            "8 devices: ring/pooled = {flat}, expected near-parity inside one backplane"
        );
        for devices in [64usize, 128] {
            let cliff = ratio(devices);
            assert!(
                cliff > 3.0,
                "{devices} devices: ring/pooled = {cliff}, no cliff"
            );
            assert!(
                cliff > 2.0 * flat,
                "{devices} devices: cliff {cliff} must tower over backplane parity {flat}"
            );
        }
    }

    #[test]
    fn fabric_selection_follows_the_topology_knob() {
        let cfg = SystemConfig::new(SystemDesign::McDlaBwAware);
        let analytic = build_fabric(&cfg);
        assert_eq!(analytic.topology(), None);
        let routed = build_fabric(&cfg.clone().with_topology(FabricTopology::FatTree));
        assert_eq!(routed.topology(), Some(FabricTopology::FatTree));
        // Same logical ring set either way: the topology realizes the
        // design's planes, it does not change how many there are.
        assert_eq!(analytic.ring_shapes().len(), routed.ring_shapes().len());
    }

    #[test]
    fn budget_helper_finds_earliest_fit() {
        let t = SimTime::from_us;
        let mut w = OffloadWindow::new();
        w.push(t(10), 100);
        w.push(t(20), 100);
        w.push(t(30), 100);
        // Budget 300: fits immediately.
        assert_eq!(w.earliest_under_budget(t(1), 300), t(1));
        // Budget 150: wait until two complete (outstanding after t=20 is 100).
        assert_eq!(w.earliest_under_budget(t(1), 150), t(20));
        // Budget 0: wait for all.
        assert_eq!(w.earliest_under_budget(t(1), 0), t(30));
        // Ready already past everything.
        assert_eq!(w.earliest_under_budget(t(99), 0), t(99));
    }

    #[test]
    fn budget_window_matches_the_scan_it_replaced() {
        // Reference: the O(pending) scan the prefix-sum window replaced.
        fn scan(pending: &[(SimTime, u64)], ready: SimTime, budget: u64) -> SimTime {
            let outstanding = |t: SimTime| -> u64 {
                pending
                    .iter()
                    .filter(|(e, _)| *e > t)
                    .map(|(_, b)| *b)
                    .sum()
            };
            if outstanding(ready) <= budget {
                return ready;
            }
            let mut ends: Vec<SimTime> = pending
                .iter()
                .filter(|(e, _)| *e > ready)
                .map(|(e, _)| *e)
                .collect();
            ends.sort_unstable();
            for e in ends {
                if outstanding(e) <= budget {
                    return e;
                }
            }
            pending.iter().map(|(e, _)| *e).fold(ready, SimTime::max)
        }
        let t = SimTime::from_us;
        // FIFO-ordered pending sets, including duplicate ends and
        // zero-byte transfers (a rounded-down compressed stash).
        let sets: Vec<Vec<(SimTime, u64)>> = vec![
            vec![],
            vec![(t(5), 10)],
            vec![(t(5), 10), (t(5), 20), (t(7), 0), (t(9), 5)],
            (0..50).map(|i| (t(3 * i + 1), (i % 7) * 11)).collect(),
        ];
        for pending in &sets {
            let mut w = OffloadWindow::new();
            for &(e, b) in pending {
                w.push(e, b);
            }
            for ready_us in 0..40 {
                for budget in [0u64, 1, 5, 10, 25, 30, 100, 500, u64::MAX] {
                    let ready = t(ready_us);
                    assert_eq!(
                        w.earliest_under_budget(ready, budget),
                        scan(pending, ready, budget),
                        "pending {pending:?} ready {ready_us} budget {budget}"
                    );
                }
            }
        }
    }
}
