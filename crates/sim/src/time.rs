//! Simulation clock types.
//!
//! The kernel keeps time in **integer picoseconds** so that event ordering is
//! exact and runs are bit-reproducible. Picosecond resolution comfortably
//! covers both a 1 GHz accelerator cycle (1000 ps) and multi-second training
//! iterations (`u64` picoseconds span ~213 days).

use std::fmt;

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in picoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use mcdla_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_us(3);
/// assert_eq!(t.as_ps(), 3_000_000);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, measured in picoseconds.
///
/// # Examples
///
/// ```
/// use mcdla_sim::SimDuration;
///
/// let d = SimDuration::from_ns(5) * 4;
/// assert_eq!(d.as_secs_f64(), 20e-9);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

const PS_PER_NS: u64 = 1_000;
const PS_PER_US: u64 = 1_000_000;
const PS_PER_MS: u64 = 1_000_000_000;
const PS_PER_SEC: u64 = 1_000_000_000_000;

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ps` picoseconds after simulation start.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant `ns` nanoseconds after simulation start.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Creates an instant `us` microseconds after simulation start.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `ps` picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration of `ns` nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Creates a duration of `us` microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Creates a duration of `ms` milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond. Negative, NaN, or non-finite inputs saturate to zero or
    /// [`SimDuration::MAX`] respectively.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            if secs.is_infinite() && secs > 0.0 {
                return SimDuration::MAX;
            }
            return SimDuration::ZERO;
        }
        let ps = secs * PS_PER_SEC as f64;
        if ps >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ps.round() as u64)
        }
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Returns the duration as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Returns the duration as fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// True when the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration minus `other`, saturating at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Ratio of `self` to `total`, as a fraction in `[0, 1]` when
    /// `self <= total`. Returns 0 when `total` is zero.
    #[inline]
    pub fn fraction_of(self, total: SimDuration) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    #[inline]
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", format_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

impl fmt::Debug for SimDuration {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", format_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

fn format_ps(ps: u64) -> String {
    if ps == u64::MAX {
        return "inf".to_owned();
    }
    if ps >= PS_PER_SEC {
        format!("{:.6}s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimDuration::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.0).as_ps(), PS_PER_SEC);
        assert!((SimDuration::from_ps(1_500).as_secs_f64() - 1.5e-9).abs() < 1e-18);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_ns(10);
        let t1 = t0 + SimDuration::from_ns(5);
        assert_eq!(t1 - t0, SimDuration::from_ns(5));
        assert_eq!(t1.saturating_since(SimTime::from_us(1)), SimDuration::ZERO);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let d = SimDuration::MAX;
        assert_eq!(d + SimDuration::from_ns(1), SimDuration::MAX);
        assert_eq!(SimTime::MAX + d, SimTime::MAX);
        assert_eq!(d * 2, SimDuration::MAX);
    }

    #[test]
    fn fraction_of_total() {
        let d = SimDuration::from_us(25);
        assert!((d.fraction_of(SimDuration::from_us(100)) - 0.25).abs() < 1e-12);
        assert_eq!(d.fraction_of(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_ps(12).to_string(), "12ps");
        assert_eq!(SimDuration::from_ns(12).to_string(), "12.000ns");
        assert_eq!(SimDuration::from_us(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs_f64(1.25).to_string(), "1.250000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_us(3),
            SimTime::ZERO,
            SimTime::from_ns(10),
            SimTime::MAX,
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_ns(10),
                SimTime::from_us(3),
                SimTime::MAX
            ]
        );
    }
}
