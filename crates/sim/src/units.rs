//! Data-size and bandwidth quantities.
//!
//! The paper mixes decimal units for link bandwidth (e.g. "25 GB/sec per
//! NVLINK") with binary units for memory sizes (e.g. "16 GB HBM"). Both are
//! provided; decimal constructors are `kb`/`mb`/`gb`, binary ones are
//! `kib`/`mib`/`gib`.

use std::fmt;

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::SimDuration;

/// A number of bytes.
///
/// # Examples
///
/// ```
/// use mcdla_sim::Bytes;
///
/// let fmap = Bytes::from_mib(64);
/// assert_eq!(fmap.as_u64(), 64 * 1024 * 1024);
/// assert_eq!((fmap * 2).as_mib(), 128.0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    #[inline]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Decimal kilobytes (1 KB = 1000 B).
    #[inline]
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1_000)
    }

    /// Decimal megabytes (1 MB = 10^6 B).
    #[inline]
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1_000_000)
    }

    /// Decimal gigabytes (1 GB = 10^9 B).
    #[inline]
    pub const fn from_gb(gb: u64) -> Self {
        Bytes(gb * 1_000_000_000)
    }

    /// Binary kibibytes (1 KiB = 1024 B).
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Binary mebibytes.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Binary gibibytes.
    #[inline]
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64`, for rate arithmetic.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Fractional mebibytes.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Fractional gibibytes.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Fractional decimal gigabytes.
    #[inline]
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction saturating at zero.
    #[inline]
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// Division rounding up; returns 0 chunks only for zero bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero bytes.
    #[inline]
    pub fn div_ceil(self, chunk: Bytes) -> u64 {
        assert!(chunk.0 > 0, "chunk size must be non-zero");
        self.0.div_ceil(chunk.0)
    }

    /// Returns the larger of two sizes.
    #[inline]
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// Returns the smaller of two sizes.
    #[inline]
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        debug_assert!(self.0 >= rhs.0, "Bytes subtraction underflow");
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    #[inline]
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    #[inline]
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Debug for Bytes {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({self})")
    }
}

impl fmt::Display for Bytes {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 * 1024 {
            write!(f, "{:.2}GiB", self.as_gib())
        } else if b >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.as_mib())
        } else if b >= 1024 {
            write!(f, "{:.2}KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A data rate in bytes per second.
///
/// # Examples
///
/// ```
/// use mcdla_sim::{Bandwidth, Bytes};
///
/// // One NVLINK-class link from the paper: 25 GB/s uni-directional.
/// let link = Bandwidth::gb_per_sec(25.0);
/// let t = link.transfer_time(Bytes::from_gb(50));
/// assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
/// ```
#[derive(Copy, Clone, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth (a disconnected channel).
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is negative or NaN.
    #[inline]
    pub fn bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "bandwidth must be a finite non-negative number"
        );
        Bandwidth(bytes_per_sec)
    }

    /// Decimal gigabytes per second (the unit used throughout the paper).
    #[inline]
    pub fn gb_per_sec(gb: f64) -> Self {
        Bandwidth::bytes_per_sec(gb * 1e9)
    }

    /// Decimal megabytes per second.
    #[inline]
    pub fn mb_per_sec(mb: f64) -> Self {
        Bandwidth::bytes_per_sec(mb * 1e6)
    }

    /// Raw bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Decimal gigabytes per second.
    #[inline]
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// True when zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Time to move `bytes` at this rate; [`SimDuration::MAX`] at zero rate
    /// (unless `bytes` is also zero, which takes no time).
    #[inline]
    pub fn transfer_time(self, bytes: Bytes) -> SimDuration {
        if bytes.is_zero() {
            SimDuration::ZERO
        } else if self.0 == 0.0 {
            SimDuration::MAX
        } else {
            SimDuration::from_secs_f64(bytes.as_f64() / self.0)
        }
    }

    /// Returns the smaller of two bandwidths.
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// Returns the larger of two bandwidths.
    #[inline]
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.0 / rhs)
    }
}

impl Sum for Bandwidth {
    #[inline]
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Debug for Bandwidth {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bandwidth({self})")
    }
}

impl fmt::Display for Bandwidth {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GB/s", self.as_gb_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::from_kb(2).as_u64(), 2_000);
        assert_eq!(Bytes::from_kib(2).as_u64(), 2_048);
        assert_eq!(Bytes::from_gb(1).as_u64(), 1_000_000_000);
        assert_eq!(Bytes::from_gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn byte_display() {
        assert_eq!(Bytes::new(17).to_string(), "17B");
        assert_eq!(Bytes::from_kib(4).to_string(), "4.00KiB");
        assert_eq!(Bytes::from_mib(8).to_string(), "8.00MiB");
        assert_eq!(Bytes::from_gib(2).to_string(), "2.00GiB");
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(Bytes::new(10).div_ceil(Bytes::new(4)), 3);
        assert_eq!(Bytes::ZERO.div_ceil(Bytes::new(4)), 0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn div_ceil_zero_chunk_panics() {
        let _ = Bytes::new(1).div_ceil(Bytes::ZERO);
    }

    #[test]
    fn transfer_time_basic() {
        let bw = Bandwidth::gb_per_sec(25.0);
        let t = bw.transfer_time(Bytes::from_gb(25));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(bw.transfer_time(Bytes::ZERO), SimDuration::ZERO);
        assert_eq!(
            Bandwidth::ZERO.transfer_time(Bytes::new(1)),
            SimDuration::MAX
        );
        assert_eq!(
            Bandwidth::ZERO.transfer_time(Bytes::ZERO),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_bandwidth_panics() {
        let _ = Bandwidth::bytes_per_sec(-1.0);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let a = Bandwidth::gb_per_sec(10.0) + Bandwidth::gb_per_sec(15.0);
        assert!((a.as_gb_per_sec() - 25.0).abs() < 1e-12);
        assert!(((a / 5.0).as_gb_per_sec() - 5.0).abs() < 1e-12);
        assert!(((a * 2.0).as_gb_per_sec() - 50.0).abs() < 1e-12);
    }
}
