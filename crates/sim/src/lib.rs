//! # `mcdla-sim` — discrete-event simulation kernel
//!
//! The simulation substrate underneath the MC-DLA system simulator
//! (Kwon & Rhu, *Beyond the Memory Wall*, MICRO-51 2018). It provides the
//! same modeling abstractions the paper's in-house simulator describes in
//! §IV:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer-picosecond clock, so event
//!   ordering is exact and runs are reproducible.
//! * [`EventQueue`] — a calendar queue with deterministic FIFO tie-breaks.
//! * [`FifoEngine`] — a serialized hardware stream (PE array, DMA unit,
//!   protocol/communication engine) that accumulates the busy time stacked
//!   in the paper's Figure 11.
//! * [`FlowNetwork`] — a max-min-fair fluid-flow bandwidth model for shared
//!   channels (PCIe switches, CPU socket DRAM, NVLINK-class links, DIMM
//!   bandwidth), giving contention effects without packet-level simulation.
//! * [`stats`] — harmonic means and normalization helpers used throughout
//!   the evaluation (§V reports all averages as harmonic means).
//!
//! # Examples
//!
//! Modeling the paper's observation that host-side PCIe bandwidth is divided
//! among intra-node devices:
//!
//! ```
//! use mcdla_sim::{Bandwidth, Bytes, FlowNetwork, SimTime};
//!
//! let mut net = FlowNetwork::new();
//! let socket = net.add_channel("socket-dram", Bandwidth::gb_per_sec(80.0));
//! // Four devices offloading feature maps concurrently through one socket.
//! let flows: Vec<_> = (0..4)
//!     .map(|_| net.open_flow(SimTime::ZERO, &[socket], Bytes::from_gb(20)).unwrap())
//!     .collect();
//! // Each device only sees a quarter of the socket bandwidth.
//! assert!((net.flow_rate(flows[0]).unwrap().as_gb_per_sec() - 20.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod event;
mod flow;
pub mod stats;
mod time;
mod units;

pub use engine::{Completion, FifoEngine};
pub use event::EventQueue;
pub use flow::{ChannelId, FlowError, FlowId, FlowNetwork};
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, Bytes};
