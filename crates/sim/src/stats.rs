//! Small statistics helpers used when aggregating experiment results.
//!
//! The paper reports all averages as **harmonic means** (§V: "All average
//! values are based on harmonic means"), so that helper lives here next to
//! the arithmetic and geometric variants.

/// Harmonic mean of the values; `None` when empty or any value is `<= 0`.
///
/// # Examples
///
/// ```
/// use mcdla_sim::stats::harmonic_mean;
///
/// let speedups = [2.0, 4.0, 4.0];
/// assert!((harmonic_mean(&speedups).unwrap() - 3.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let inv_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / inv_sum)
}

/// Arithmetic mean; `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean; `None` when empty or any value is `<= 0`.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Normalizes `values` so the maximum becomes 1.0 (the convention of the
/// paper's Figures 11 and 13); returns an empty vector for empty input and
/// all-zeros if the maximum is zero.
pub fn normalize_to_max(values: &[f64]) -> Vec<f64> {
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    if values.is_empty() || max <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / max).collect()
}

/// Normalizes `values` relative to `baseline` (element 0 of a comparison),
/// returning `v / baseline` per element. Returns all zeros if `baseline`
/// is zero.
pub fn normalize_to(values: &[f64], baseline: f64) -> Vec<f64> {
    if baseline == 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / baseline).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_matches_definition() {
        assert!((harmonic_mean(&[1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 3.0]).unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), None);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn harmonic_is_below_geometric_is_below_arithmetic() {
        let v = [1.0, 2.0, 4.0, 8.0];
        let h = harmonic_mean(&v).unwrap();
        let g = geometric_mean(&v).unwrap();
        let a = mean(&v).unwrap();
        assert!(h < g && g < a, "AM-GM-HM inequality violated: {h} {g} {a}");
    }

    #[test]
    fn normalize_to_max_caps_at_one() {
        let n = normalize_to_max(&[1.0, 2.0, 4.0]);
        assert_eq!(n, vec![0.25, 0.5, 1.0]);
        assert_eq!(normalize_to_max(&[]), Vec::<f64>::new());
        assert_eq!(normalize_to_max(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn normalize_to_baseline() {
        assert_eq!(normalize_to(&[2.0, 4.0], 2.0), vec![1.0, 2.0]);
        assert_eq!(normalize_to(&[2.0], 0.0), vec![0.0]);
    }
}
