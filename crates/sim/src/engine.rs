//! Serialized execution resources ("streams").
//!
//! A device-node in the iteration simulator owns several independent hardware
//! engines — the PE array (compute stream), the DMA unit (memory-overlaying
//! stream), and the link/protocol engine (communication stream). Each
//! processes work items one at a time, in submission order. [`FifoEngine`]
//! models such a resource and tracks its cumulative busy time, which is
//! exactly the quantity stacked in the paper's Figure 11 latency breakdown.

use crate::time::{SimDuration, SimTime};

/// A resource that executes submitted work items serially, in FIFO order.
///
/// # Examples
///
/// ```
/// use mcdla_sim::{FifoEngine, SimDuration, SimTime};
///
/// let mut dma = FifoEngine::new();
/// let a = dma.submit(SimTime::ZERO, SimDuration::from_us(10));
/// // Submitted while the engine is still busy: queued behind `a`.
/// let b = dma.submit(SimTime::from_us(2), SimDuration::from_us(5));
/// assert_eq!(a.end, SimTime::from_us(10));
/// assert_eq!(b.start, SimTime::from_us(10));
/// assert_eq!(b.end, SimTime::from_us(15));
/// assert_eq!(dma.busy_time(), SimDuration::from_us(15));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoEngine {
    free_at: SimTime,
    busy: SimDuration,
    completed: u64,
}

/// The scheduled execution window of one submitted work item.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct Completion {
    /// When the engine actually began the item.
    pub start: SimTime,
    /// When the item finishes.
    pub end: SimTime,
}

impl Completion {
    /// Time the item spent executing.
    #[inline]
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

impl FifoEngine {
    /// Creates an idle engine at time zero.
    #[inline]
    pub fn new() -> Self {
        FifoEngine::default()
    }

    /// Submits a work item of length `duration`, ready to start at `ready`.
    ///
    /// The item begins at `max(ready, previous item's end)` and the engine's
    /// busy-time accumulator grows by `duration`.
    #[inline]
    pub fn submit(&mut self, ready: SimTime, duration: SimDuration) -> Completion {
        let start = self.free_at.max(ready);
        let end = start + duration;
        self.free_at = end;
        self.busy += duration;
        self.completed += 1;
        Completion { start, end }
    }

    /// Blocks the engine until at least `time` (models an external dependency
    /// occupying the head of the queue without doing billable work).
    #[inline]
    pub fn stall_until(&mut self, time: SimTime) {
        self.free_at = self.free_at.max(time);
    }

    /// Instant at which the engine next becomes free.
    #[inline]
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total time spent executing work items (the Figure 11 stack component).
    #[inline]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of completed work items.
    #[inline]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Fraction of `[0, horizon]` spent busy; 0 for a zero horizon.
    #[inline]
    pub fn utilization(&self, horizon: SimDuration) -> f64 {
        self.busy.fraction_of(horizon)
    }

    /// Resets the engine to idle at time zero, clearing statistics.
    #[inline]
    pub fn reset(&mut self) {
        *self = FifoEngine::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_overlapping_submissions() {
        let mut e = FifoEngine::new();
        let a = e.submit(SimTime::ZERO, SimDuration::from_ns(100));
        let b = e.submit(SimTime::from_ns(50), SimDuration::from_ns(100));
        let c = e.submit(SimTime::from_ns(250), SimDuration::from_ns(10));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::from_ns(100));
        assert_eq!(b.end, SimTime::from_ns(200));
        // Engine idle between 200 and 250.
        assert_eq!(c.start, SimTime::from_ns(250));
        assert_eq!(e.free_at(), SimTime::from_ns(260));
        assert_eq!(e.busy_time(), SimDuration::from_ns(210));
        assert_eq!(e.completed(), 3);
    }

    #[test]
    fn stall_pushes_free_time_without_busy() {
        let mut e = FifoEngine::new();
        e.stall_until(SimTime::from_us(5));
        let a = e.submit(SimTime::ZERO, SimDuration::from_us(1));
        assert_eq!(a.start, SimTime::from_us(5));
        assert_eq!(e.busy_time(), SimDuration::from_us(1));
    }

    #[test]
    fn utilization_fraction() {
        let mut e = FifoEngine::new();
        e.submit(SimTime::ZERO, SimDuration::from_us(25));
        assert!((e.utilization(SimDuration::from_us(100)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = FifoEngine::new();
        e.submit(SimTime::ZERO, SimDuration::from_us(1));
        e.reset();
        assert_eq!(e.free_at(), SimTime::ZERO);
        assert_eq!(e.busy_time(), SimDuration::ZERO);
        assert_eq!(e.completed(), 0);
    }

    #[test]
    fn zero_duration_items_complete_instantly() {
        let mut e = FifoEngine::new();
        let c = e.submit(SimTime::from_ns(7), SimDuration::ZERO);
        assert_eq!(c.start, c.end);
        assert_eq!(c.duration(), SimDuration::ZERO);
    }
}
