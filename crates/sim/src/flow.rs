//! Fluid-flow bandwidth model with max-min fair sharing.
//!
//! Bulk DMA transfers in the simulated system traverse *paths* of shared
//! channels — a PCIe switch uplink shared by two GPUs, a CPU socket's DRAM
//! bandwidth shared by four devices, an NVLINK-class ring link shared between
//! collective traffic and memory-overlaying traffic. Rather than simulating
//! packets, each transfer is a *flow* whose instantaneous rate is the
//! [max-min fair](https://en.wikipedia.org/wiki/Max-min_fairness) allocation
//! across all channels on its path. Rates are piecewise constant between
//! flow arrivals/departures, so the network advances analytically from event
//! to event with no time-stepping error.
//!
//! This is the standard flow-level network abstraction; it reproduces the
//! bandwidth phenomena the paper cares about (per-device PCIe bandwidth
//! shrinking proportionally to the number of intra-node devices, socket
//! memory-bandwidth saturation in HC-DLA) without packet-level cost.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};
use crate::units::{Bandwidth, Bytes};

/// Identifies a channel within a [`FlowNetwork`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(usize);

impl ChannelId {
    /// Index into the network's channel table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Identifies a flow within a [`FlowNetwork`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Channel {
    capacity: f64, // bytes/sec
    label: String,
    /// Peak instantaneous throughput observed on this channel.
    peak_rate: f64,
    /// Total bytes that have traversed this channel.
    bytes_carried: f64,
}

#[derive(Debug, Clone)]
struct FlowState {
    path: Vec<ChannelId>,
    remaining: f64, // bytes
    rate: f64,      // bytes/sec, updated on every recompute
    opened_at: SimTime,
    /// Rate ceiling independent of channel contention (e.g. a DMA engine's
    /// own maximum issue rate). `f64::INFINITY` when unconstrained.
    rate_cap: f64,
}

/// Errors returned by [`FlowNetwork`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// A flow path referenced a channel id not present in the network.
    UnknownChannel(ChannelId),
    /// A flow was opened with an empty path.
    EmptyPath,
    /// Time was advanced backwards.
    TimeRegression,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::UnknownChannel(id) => write!(f, "unknown channel {id}"),
            FlowError::EmptyPath => f.write_str("flow path must contain at least one channel"),
            FlowError::TimeRegression => f.write_str("network time may not move backwards"),
        }
    }
}

impl std::error::Error for FlowError {}

/// A network of capacity-limited channels carrying fluid flows.
///
/// # Examples
///
/// Two DMA transfers sharing one 16 GB/s PCIe uplink each progress at
/// 8 GB/s — the paper's "effective host–device communication bandwidth
/// allocated per device gets proportionally reduced" observation:
///
/// ```
/// use mcdla_sim::{Bandwidth, Bytes, FlowNetwork, SimTime};
///
/// let mut net = FlowNetwork::new();
/// let pcie = net.add_channel("pcie-switch", Bandwidth::gb_per_sec(16.0));
/// let a = net.open_flow(SimTime::ZERO, &[pcie], Bytes::from_gb(8)).unwrap();
/// let _b = net.open_flow(SimTime::ZERO, &[pcie], Bytes::from_gb(8)).unwrap();
///
/// let (t, done) = net.next_completion().unwrap();
/// assert_eq!(done, a); // FIFO tie-break: first-opened completes first
/// assert!((t.as_secs_f64() - 1.0).abs() < 1e-6); // 8 GB at 8 GB/s
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    channels: Vec<Channel>,
    flows: BTreeMap<FlowId, FlowState>,
    now: SimTime,
    next_flow: u64,
}

impl FlowNetwork {
    /// Creates an empty network at time zero.
    pub fn new() -> Self {
        FlowNetwork::default()
    }

    /// Adds a channel with the given capacity and returns its id.
    pub fn add_channel(&mut self, label: impl Into<String>, capacity: Bandwidth) -> ChannelId {
        let id = ChannelId(self.channels.len());
        self.channels.push(Channel {
            capacity: capacity.as_bytes_per_sec(),
            label: label.into(),
            peak_rate: 0.0,
            bytes_carried: 0.0,
        });
        id
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Current network time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured capacity of `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` does not belong to this network.
    pub fn capacity(&self, channel: ChannelId) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.channels[channel.index()].capacity)
    }

    /// Peak instantaneous throughput ever allocated on `channel`.
    ///
    /// This is the quantity behind the paper's Figure 12 "max" bars (peak CPU
    /// memory-bandwidth draw).
    ///
    /// # Panics
    ///
    /// Panics if `channel` does not belong to this network.
    pub fn peak_rate(&self, channel: ChannelId) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.channels[channel.index()].peak_rate)
    }

    /// Total bytes carried by `channel` so far (behind Figure 12's "avg" bars
    /// when divided by elapsed time).
    ///
    /// # Panics
    ///
    /// Panics if `channel` does not belong to this network.
    pub fn bytes_carried(&self, channel: ChannelId) -> Bytes {
        Bytes::new(self.channels[channel.index()].bytes_carried.round() as u64)
    }

    /// Label given to `channel` at creation.
    ///
    /// # Panics
    ///
    /// Panics if `channel` does not belong to this network.
    pub fn channel_label(&self, channel: ChannelId) -> &str {
        &self.channels[channel.index()].label
    }

    /// Opens a flow of `bytes` over `path`, starting at `at`.
    ///
    /// Advances the network to `at` first, then recomputes the max-min fair
    /// rate allocation.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::EmptyPath`] for an empty path,
    /// [`FlowError::UnknownChannel`] for out-of-range channel ids, and
    /// [`FlowError::TimeRegression`] if `at` precedes the network clock.
    pub fn open_flow(
        &mut self,
        at: SimTime,
        path: &[ChannelId],
        bytes: Bytes,
    ) -> Result<FlowId, FlowError> {
        self.open_flow_capped(at, path, bytes, Bandwidth::bytes_per_sec(f64::MAX))
    }

    /// Like [`FlowNetwork::open_flow`], with an additional per-flow rate
    /// ceiling (e.g. a DMA engine's maximum issue rate).
    ///
    /// # Errors
    ///
    /// Same as [`FlowNetwork::open_flow`].
    pub fn open_flow_capped(
        &mut self,
        at: SimTime,
        path: &[ChannelId],
        bytes: Bytes,
        rate_cap: Bandwidth,
    ) -> Result<FlowId, FlowError> {
        if path.is_empty() {
            return Err(FlowError::EmptyPath);
        }
        for &c in path {
            if c.index() >= self.channels.len() {
                return Err(FlowError::UnknownChannel(c));
            }
        }
        self.advance_to(at)?;
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id,
            FlowState {
                path: path.to_vec(),
                remaining: bytes.as_f64(),
                rate: 0.0,
                opened_at: at,
                rate_cap: rate_cap.as_bytes_per_sec(),
            },
        );
        self.recompute_rates();
        Ok(id)
    }

    /// Opens a batch of flows at the same instant with a **single** rate
    /// recompute, and returns their ids in input order.
    ///
    /// Equivalent to calling [`FlowNetwork::open_flow`] once per entry at the
    /// same `at` (rates are a pure function of the in-flight flow set, so one
    /// recompute at the end lands on the same allocation), but costs one
    /// progressive-filling pass instead of one per flow — the difference
    /// between O(n²) and O(n) when a collective opens thousands of per-hop
    /// flows at once.
    ///
    /// The whole batch is validated before any flow is admitted: on error the
    /// network is unchanged.
    ///
    /// # Errors
    ///
    /// Same as [`FlowNetwork::open_flow`].
    pub fn open_flows(
        &mut self,
        at: SimTime,
        batch: impl IntoIterator<Item = (Vec<ChannelId>, Bytes)>,
    ) -> Result<Vec<FlowId>, FlowError> {
        let batch: Vec<(Vec<ChannelId>, Bytes)> = batch.into_iter().collect();
        for (path, _) in &batch {
            if path.is_empty() {
                return Err(FlowError::EmptyPath);
            }
            for &c in path.iter() {
                if c.index() >= self.channels.len() {
                    return Err(FlowError::UnknownChannel(c));
                }
            }
        }
        self.advance_to(at)?;
        let mut ids = Vec::with_capacity(batch.len());
        for (path, bytes) in batch {
            let id = FlowId(self.next_flow);
            self.next_flow += 1;
            self.flows.insert(
                id,
                FlowState {
                    path,
                    remaining: bytes.as_f64(),
                    rate: 0.0,
                    opened_at: at,
                    rate_cap: f64::MAX,
                },
            );
            ids.push(id);
        }
        self.recompute_rates();
        Ok(ids)
    }

    /// Earliest `(time, flow)` completion among in-flight flows, if any flow
    /// can complete (a flow starved to zero rate never completes).
    ///
    /// Ties break toward the oldest flow id, keeping event order
    /// deterministic.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for (&id, f) in &self.flows {
            if f.rate <= 0.0 {
                if f.remaining <= BYTE_EPSILON {
                    // Zero-byte flow: completes immediately.
                    let cand = (self.now, id);
                    best = Some(match best {
                        Some(b) if b <= cand => b,
                        _ => cand,
                    });
                }
                continue;
            }
            let secs = (f.remaining / f.rate).max(0.0);
            let t = self.now + SimDuration::from_secs_f64(secs);
            let cand = (t, id);
            best = Some(match best {
                Some(b) if b <= cand => b,
                _ => cand,
            });
        }
        best
    }

    /// Advances the clock to `to`, draining bytes from in-flight flows, and
    /// returns the flows that completed (in completion order).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::TimeRegression`] if `to` precedes the clock.
    pub fn advance_to(&mut self, to: SimTime) -> Result<Vec<FlowId>, FlowError> {
        if to < self.now {
            return Err(FlowError::TimeRegression);
        }
        let mut completed = Vec::new();
        // Flows complete at staggered instants; process piecewise.
        while let Some((t, id)) = self.next_completion() {
            if t > to {
                break;
            }
            self.drain(t);
            self.flows.remove(&id);
            completed.push(id);
            self.recompute_rates();
        }
        self.drain(to);
        Ok(completed)
    }

    /// Instantaneous rate of `flow`; `None` once completed/unknown.
    pub fn flow_rate(&self, flow: FlowId) -> Option<Bandwidth> {
        self.flows
            .get(&flow)
            .map(|f| Bandwidth::bytes_per_sec(f.rate))
    }

    /// Remaining bytes of `flow`; `None` once completed/unknown.
    pub fn flow_remaining(&self, flow: FlowId) -> Option<Bytes> {
        self.flows
            .get(&flow)
            .map(|f| Bytes::new(f.remaining.max(0.0).round() as u64))
    }

    /// Time at which `flow` was opened; `None` once completed/unknown.
    pub fn flow_opened_at(&self, flow: FlowId) -> Option<SimTime> {
        self.flows.get(&flow).map(|f| f.opened_at)
    }

    /// Runs the network until all flows complete, returning them in
    /// completion order. Flows starved at zero rate make this return `None`
    /// (the network cannot drain).
    pub fn drain_all(&mut self) -> Option<Vec<(SimTime, FlowId)>> {
        let mut done = Vec::new();
        while !self.flows.is_empty() {
            let (t, id) = self.next_completion()?;
            if self
                .flows
                .get(&id)
                .map(|f| f.rate <= 0.0 && f.remaining > BYTE_EPSILON)
                .unwrap_or(false)
            {
                return None;
            }
            self.drain(t);
            self.flows.remove(&id);
            self.recompute_rates();
            done.push((t, id));
        }
        Some(done)
    }

    /// Moves bytes for elapsed time `self.now..t` at current rates.
    fn drain(&mut self, t: SimTime) {
        let dt = t.saturating_since(self.now).as_secs_f64();
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                let moved = f.rate * dt;
                f.remaining = (f.remaining - moved).max(0.0);
                for &c in &f.path {
                    self.channels[c.index()].bytes_carried += moved;
                }
            }
        }
        self.now = self.now.max(t);
    }

    /// Progressive-filling max-min fairness.
    ///
    /// Repeatedly finds the most-constrained channel (smallest equal share
    /// for its unfrozen flows), freezes those flows at that share, removes
    /// the consumed capacity, and iterates. Per-flow rate caps are treated as
    /// single-flow virtual channels.
    fn recompute_rates(&mut self) {
        let n_ch = self.channels.len();
        let mut residual: Vec<f64> = self.channels.iter().map(|c| c.capacity).collect();
        let mut load: Vec<usize> = vec![0; n_ch];
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut unfrozen: Vec<bool> = vec![true; ids.len()];
        let mut rates: Vec<f64> = vec![0.0; ids.len()];
        for (i, id) in ids.iter().enumerate() {
            for &c in &self.flows[id].path {
                load[c.index()] += 1;
            }
            rates[i] = self.flows[id].rate_cap; // provisional ceiling
            let _ = i;
        }
        let mut remaining_flows = ids.len();
        while remaining_flows > 0 {
            // Bottleneck share across channels with load.
            let mut share = f64::INFINITY;
            for c in 0..n_ch {
                if load[c] > 0 {
                    share = share.min(residual[c].max(0.0) / load[c] as f64);
                }
            }
            // Flows whose own cap binds before the channel share freeze at
            // their cap first.
            let mut capped_any = false;
            for (i, id) in ids.iter().enumerate() {
                if unfrozen[i] && self.flows[id].rate_cap < share {
                    let r = self.flows[id].rate_cap;
                    rates[i] = r;
                    unfrozen[i] = false;
                    remaining_flows -= 1;
                    for &c in &self.flows[id].path {
                        residual[c.index()] -= r;
                        load[c.index()] -= 1;
                    }
                    capped_any = true;
                }
            }
            if capped_any {
                continue; // shares changed; restart the fill step
            }
            if !share.is_finite() {
                break;
            }
            // Freeze every unfrozen flow crossing a bottleneck channel.
            let mut bottlenecks: Vec<usize> = Vec::new();
            for c in 0..n_ch {
                if load[c] > 0
                    && (residual[c].max(0.0) / load[c] as f64) <= share * (1.0 + RATE_EPSILON)
                {
                    bottlenecks.push(c);
                }
            }
            let mut froze_any = false;
            for (i, id) in ids.iter().enumerate() {
                if !unfrozen[i] {
                    continue;
                }
                let hits = self.flows[id]
                    .path
                    .iter()
                    .any(|c| bottlenecks.contains(&c.index()));
                if hits {
                    rates[i] = share;
                    unfrozen[i] = false;
                    remaining_flows -= 1;
                    for &c in &self.flows[id].path {
                        residual[c.index()] -= share;
                        load[c.index()] -= 1;
                    }
                    froze_any = true;
                }
            }
            if !froze_any {
                // No channel constrains the remaining flows (shouldn't happen
                // for non-empty paths); freeze them at the current share.
                for (i, _) in ids.iter().enumerate() {
                    if unfrozen[i] {
                        rates[i] = share;
                        unfrozen[i] = false;
                        remaining_flows -= 1;
                    }
                }
            }
        }
        for (i, id) in ids.iter().enumerate() {
            let f = self.flows.get_mut(id).expect("flow present");
            f.rate = rates[i].max(0.0);
        }
        // Track per-channel peak throughput.
        let mut ch_rate = vec![0.0f64; n_ch];
        for f in self.flows.values() {
            for &c in &f.path {
                ch_rate[c.index()] += f.rate;
            }
        }
        for (c, r) in ch_rate.into_iter().enumerate() {
            if r > self.channels[c].peak_rate {
                self.channels[c].peak_rate = r;
            }
        }
    }
}

const BYTE_EPSILON: f64 = 1e-6;
const RATE_EPSILON: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> Bandwidth {
        Bandwidth::gb_per_sec(x)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("link", gb(25.0));
        let f = net
            .open_flow(SimTime::ZERO, &[c], Bytes::from_gb(50))
            .unwrap();
        assert!((net.flow_rate(f).unwrap().as_gb_per_sec() - 25.0).abs() < 1e-9);
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equal_flows_share_equally() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("link", gb(16.0));
        let flows: Vec<_> = (0..4)
            .map(|_| {
                net.open_flow(SimTime::ZERO, &[c], Bytes::from_gb(4))
                    .unwrap()
            })
            .collect();
        for f in &flows {
            assert!((net.flow_rate(*f).unwrap().as_gb_per_sec() - 4.0).abs() < 1e-9);
        }
        // All complete at t=1s; completion order follows flow id.
        let done = net.drain_all().unwrap();
        assert_eq!(done.len(), 4);
        for (t, _) in &done {
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        }
        assert_eq!(done.iter().map(|(_, id)| *id).collect::<Vec<_>>(), flows);
    }

    #[test]
    fn max_min_with_two_bottlenecks() {
        // Classic max-min example: flow A crosses both channels, flows B and
        // C cross one each. ch1 = 10, ch2 = 4.
        //   step 1: ch2 share = 4/2 = 2  -> A and C frozen at 2
        //   step 2: ch1 residual = 10-2 = 8, only B -> B = 8
        let mut net = FlowNetwork::new();
        let ch1 = net.add_channel("ch1", gb(10.0));
        let ch2 = net.add_channel("ch2", gb(4.0));
        let a = net
            .open_flow(SimTime::ZERO, &[ch1, ch2], Bytes::from_gb(100))
            .unwrap();
        let b = net
            .open_flow(SimTime::ZERO, &[ch1], Bytes::from_gb(100))
            .unwrap();
        let c = net
            .open_flow(SimTime::ZERO, &[ch2], Bytes::from_gb(100))
            .unwrap();
        assert!((net.flow_rate(a).unwrap().as_gb_per_sec() - 2.0).abs() < 1e-9);
        assert!((net.flow_rate(b).unwrap().as_gb_per_sec() - 8.0).abs() < 1e-9);
        assert!((net.flow_rate(c).unwrap().as_gb_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn departure_frees_bandwidth_for_survivors() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("link", gb(10.0));
        let a = net
            .open_flow(SimTime::ZERO, &[c], Bytes::from_gb(5))
            .unwrap();
        let b = net
            .open_flow(SimTime::ZERO, &[c], Bytes::from_gb(10))
            .unwrap();
        // Both run at 5 GB/s. A finishes at t=1; B then runs at 10 GB/s and
        // finishes its remaining 5 GB at t=1.5.
        let done = net.drain_all().unwrap();
        assert_eq!(done[0].1, a);
        assert!((done[0].0.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(done[1].1, b);
        assert!((done[1].0.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn late_arrival_slows_existing_flow() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("link", gb(10.0));
        let a = net
            .open_flow(SimTime::ZERO, &[c], Bytes::from_gb(10))
            .unwrap();
        // At t=0.5, A has 5 GB left; B arrives, both drop to 5 GB/s.
        let b = net
            .open_flow(SimTime::from_us(500_000), &[c], Bytes::from_gb(5))
            .unwrap();
        let done = net.drain_all().unwrap();
        // A: 5 GB at 5 GB/s => t = 0.5 + 1.0 = 1.5. B likewise.
        assert_eq!(done[0].1, a);
        assert!((done[0].0.as_secs_f64() - 1.5).abs() < 1e-6);
        assert_eq!(done[1].1, b);
        assert!((done[1].0.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn rate_cap_binds_before_channel_share() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("link", gb(100.0));
        let a = net
            .open_flow_capped(SimTime::ZERO, &[c], Bytes::from_gb(10), gb(10.0))
            .unwrap();
        let b = net
            .open_flow(SimTime::ZERO, &[c], Bytes::from_gb(10))
            .unwrap();
        assert!((net.flow_rate(a).unwrap().as_gb_per_sec() - 10.0).abs() < 1e-9);
        // B soaks up the remainder.
        assert!((net.flow_rate(b).unwrap().as_gb_per_sec() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_channel_starves_flow() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("dead", Bandwidth::ZERO);
        let _f = net
            .open_flow(SimTime::ZERO, &[c], Bytes::from_gb(1))
            .unwrap();
        assert_eq!(net.next_completion(), None);
        assert_eq!(net.drain_all(), None);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("link", gb(1.0));
        let f = net
            .open_flow(SimTime::from_ns(5), &[c], Bytes::ZERO)
            .unwrap();
        let (t, id) = net.next_completion().unwrap();
        assert_eq!((t, id), (SimTime::from_ns(5), f));
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("link", gb(1.0));
        assert_eq!(
            net.open_flow(SimTime::ZERO, &[], Bytes::new(1)),
            Err(FlowError::EmptyPath)
        );
        assert_eq!(
            net.open_flow(SimTime::ZERO, &[ChannelId(99)], Bytes::new(1)),
            Err(FlowError::UnknownChannel(ChannelId(99)))
        );
        net.open_flow(SimTime::from_us(10), &[c], Bytes::new(1))
            .unwrap();
        assert_eq!(
            net.advance_to(SimTime::from_us(5)),
            Err(FlowError::TimeRegression)
        );
    }

    #[test]
    fn peak_rate_and_bytes_carried_accounting() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("socket-dram", gb(80.0));
        for _ in 0..4 {
            net.open_flow(SimTime::ZERO, &[c], Bytes::from_gb(20))
                .unwrap();
        }
        assert!((net.peak_rate(c).as_gb_per_sec() - 80.0).abs() < 1e-9);
        net.drain_all().unwrap();
        assert!((net.bytes_carried(c).as_gb() - 80.0).abs() < 1e-6);
        assert_eq!(net.channel_label(c), "socket-dram");
    }

    #[test]
    fn batch_open_matches_sequential_opens() {
        let mut seq = FlowNetwork::new();
        let mut bat = FlowNetwork::new();
        let cs: Vec<ChannelId> = (0..3)
            .map(|i| seq.add_channel(format!("l{i}"), gb(10.0)))
            .collect();
        let cb: Vec<ChannelId> = (0..3)
            .map(|i| bat.add_channel(format!("l{i}"), gb(10.0)))
            .collect();
        let specs: Vec<(Vec<usize>, u64)> =
            vec![(vec![0], 4), (vec![0, 1], 8), (vec![1, 2], 2), (vec![2], 6)];
        for (path, gbs) in &specs {
            let p: Vec<ChannelId> = path.iter().map(|&i| cs[i]).collect();
            seq.open_flow(SimTime::ZERO, &p, Bytes::from_gb(*gbs))
                .unwrap();
        }
        bat.open_flows(
            SimTime::ZERO,
            specs.iter().map(|(path, gbs)| {
                (
                    path.iter().map(|&i| cb[i]).collect::<Vec<_>>(),
                    Bytes::from_gb(*gbs),
                )
            }),
        )
        .unwrap();
        let ds = seq.drain_all().unwrap();
        let db = bat.drain_all().unwrap();
        assert_eq!(ds.len(), db.len());
        for ((ts, _), (tb, _)) in ds.iter().zip(&db) {
            assert!((ts.as_secs_f64() - tb.as_secs_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_open_is_all_or_nothing() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("link", gb(1.0));
        let err = net.open_flows(
            SimTime::ZERO,
            vec![(vec![c], Bytes::from_gb(1)), (vec![], Bytes::from_gb(1))],
        );
        assert_eq!(err, Err(FlowError::EmptyPath));
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn advance_collects_completions_in_order() {
        let mut net = FlowNetwork::new();
        let c = net.add_channel("link", gb(1.0));
        let a = net
            .open_flow(SimTime::ZERO, &[c], Bytes::from_mb(500))
            .unwrap();
        let b = net
            .open_flow(SimTime::ZERO, &[c], Bytes::from_mb(1500))
            .unwrap();
        // Shares 0.5 GB/s each: A done at t=1s; then B alone at 1 GB/s, 1 GB
        // left, done at t=2s.
        let done = net.advance_to(SimTime::from_secs(3)).unwrap();
        assert_eq!(done, vec![a, b]);
        assert_eq!(net.active_flows(), 0);
        assert_eq!(net.now(), SimTime::from_secs(3));
    }

    impl SimTime {
        fn from_secs(s: u64) -> SimTime {
            SimTime::from_ps(s * 1_000_000_000_000)
        }
    }
}
