//! Discrete-event calendar queue.
//!
//! [`EventQueue`] orders arbitrary payloads by timestamp with a strictly
//! deterministic FIFO tie-break for simultaneous events, which keeps runs
//! bit-reproducible regardless of payload type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of simulation events.
///
/// Events scheduled for the same instant pop in insertion order.
///
/// # Examples
///
/// ```
/// use mcdla_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(20), "late");
/// q.push(SimTime::from_ns(10), "early");
/// q.push(SimTime::from_ns(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [5u64, 1, 9, 3, 7] {
            q.push(SimTime::from_ns(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u32> = vec![(SimTime::from_ns(2), 2u32), (SimTime::from_ns(1), 1u32)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
    }
}
