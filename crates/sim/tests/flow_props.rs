//! Property-based tests for the fluid-flow network invariants, driven by
//! seeded random topologies (the vendored `rand` replaces `proptest`,
//! which the offline build environment cannot fetch; every case is
//! deterministic per seed, so failures reproduce exactly).

use mcdla_sim::{Bandwidth, Bytes, FlowNetwork, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 128;

/// A small random network topology plus a batch of flows over it:
/// channel capacities in GB/s and `(path as channel indexes, bytes)`.
fn network_and_flows(seed: u64) -> (Vec<f64>, Vec<(Vec<usize>, u64)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_ch = rng.gen_range(1..6usize);
    let caps: Vec<f64> = (0..n_ch).map(|_| rng.gen_range(0.5f64..100.0)).collect();
    let n_flows = rng.gen_range(1..12usize);
    let flows: Vec<(Vec<usize>, u64)> = (0..n_flows)
        .map(|_| {
            let path_len = rng.gen_range(1..=n_ch.min(3));
            let path: Vec<usize> = (0..path_len).map(|_| rng.gen_range(0..n_ch)).collect();
            (path, rng.gen_range(1u64..50_000_000_000))
        })
        .collect();
    (caps, flows)
}

#[test]
fn channel_capacity_never_exceeded() {
    for seed in 0..SEEDS {
        let (caps, flows) = network_and_flows(seed);
        let mut net = FlowNetwork::new();
        let chs: Vec<_> = caps
            .iter()
            .map(|c| net.add_channel("ch", Bandwidth::gb_per_sec(*c)))
            .collect();
        let mut ids = Vec::new();
        for (path, bytes) in &flows {
            let p: Vec<_> = path.iter().map(|i| chs[*i]).collect();
            ids.push(
                net.open_flow(SimTime::ZERO, &p, Bytes::new(*bytes))
                    .unwrap(),
            );
        }
        // Sum of allocated rates through each channel <= capacity (+eps).
        let mut through = vec![0.0f64; caps.len()];
        for (id, (path, _)) in ids.iter().zip(&flows) {
            let rate = net.flow_rate(*id).unwrap().as_gb_per_sec();
            assert!(rate >= 0.0, "seed {seed}: negative rate");
            for i in path {
                through[*i] += rate;
            }
        }
        for (used, cap) in through.iter().zip(&caps) {
            assert!(
                *used <= cap * (1.0 + 1e-6),
                "seed {seed}: channel over-allocated: {used} > {cap}"
            );
        }
    }
}

#[test]
fn all_flows_drain() {
    for seed in 0..SEEDS {
        let (caps, flows) = network_and_flows(seed);
        let mut net = FlowNetwork::new();
        let chs: Vec<_> = caps
            .iter()
            .map(|c| net.add_channel("ch", Bandwidth::gb_per_sec(*c)))
            .collect();
        for (path, bytes) in &flows {
            let p: Vec<_> = path.iter().map(|i| chs[*i]).collect();
            net.open_flow(SimTime::ZERO, &p, Bytes::new(*bytes))
                .unwrap();
        }
        let done = net.drain_all().expect("positive capacities must drain");
        assert_eq!(done.len(), flows.len(), "seed {seed}");
        // Completion times are non-decreasing.
        for w in done.windows(2) {
            assert!(w[0].0 <= w[1].0, "seed {seed}: completions out of order");
        }
        assert_eq!(net.active_flows(), 0, "seed {seed}");
    }
}

#[test]
fn single_channel_work_conserving() {
    // n equal-priority flows on one channel finish exactly when the
    // serial transfer of all bytes would.
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let cap_gb = rng.gen_range(1.0f64..100.0);
        let n = rng.gen_range(1..8usize);
        let sizes: Vec<u64> = (0..n)
            .map(|_| rng.gen_range(1u64..10_000_000_000))
            .collect();
        let mut net = FlowNetwork::new();
        let ch = net.add_channel("ch", Bandwidth::gb_per_sec(cap_gb));
        for s in &sizes {
            net.open_flow(SimTime::ZERO, &[ch], Bytes::new(*s)).unwrap();
        }
        let done = net.drain_all().unwrap();
        let total: u64 = sizes.iter().sum();
        let expect_secs = total as f64 / (cap_gb * 1e9);
        let last = done.last().unwrap().0.as_secs_f64();
        // The channel is always fully utilized until the last byte moves.
        assert!(
            (last - expect_secs).abs() <= expect_secs * 1e-6 + 1e-9,
            "seed {seed}: last completion {last}, expected {expect_secs}"
        );
    }
}

#[test]
fn bytes_carried_matches_flow_sizes() {
    // Conservation: what the channel carried equals the sum of all flow
    // sizes routed through it.
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..10usize);
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..1_000_000_000)).collect();
        let mut net = FlowNetwork::new();
        let ch = net.add_channel("ch", Bandwidth::gb_per_sec(10.0));
        for s in &sizes {
            net.open_flow(SimTime::ZERO, &[ch], Bytes::new(*s)).unwrap();
        }
        net.drain_all().unwrap();
        let total: u64 = sizes.iter().sum();
        let carried = net.bytes_carried(ch).as_u64();
        let tolerance = total / 1000 + 8;
        assert!(
            carried.abs_diff(total) <= tolerance,
            "seed {seed}: carried {carried}, expected {total}"
        );
    }
}

#[test]
fn routed_flows_conserve_bytes_per_channel() {
    // Conservation generalizes to multi-link routes: every channel ends
    // up having carried exactly the bytes of the flows routed over it
    // (a flow deposits its full size on *each* link of its path).
    for seed in 0..SEEDS {
        let (caps, flows) = network_and_flows(seed);
        let mut net = FlowNetwork::new();
        let chs: Vec<_> = caps
            .iter()
            .map(|c| net.add_channel("ch", Bandwidth::gb_per_sec(*c)))
            .collect();
        for (path, bytes) in &flows {
            let p: Vec<_> = path.iter().map(|i| chs[*i]).collect();
            net.open_flow(SimTime::ZERO, &p, Bytes::new(*bytes))
                .unwrap();
        }
        net.drain_all().unwrap();
        for (i, ch) in chs.iter().enumerate() {
            // A path may traverse the same channel more than once; each
            // traversal carries the bytes again.
            let expect: u64 = flows
                .iter()
                .map(|(path, bytes)| bytes * path.iter().filter(|p| **p == i).count() as u64)
                .sum();
            let carried = net.bytes_carried(*ch).as_u64();
            let tolerance = expect / 1000 + 8;
            assert!(
                carried.abs_diff(expect) <= tolerance,
                "seed {seed}: channel {i} carried {carried}, expected {expect}"
            );
        }
    }
}

#[test]
fn symmetric_flows_share_a_link_equally() {
    // Max-min fairness: n identical flows over one bottleneck each get
    // exactly cap/n, regardless of how many there are.
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let cap_gb = rng.gen_range(1.0f64..100.0);
        let n = rng.gen_range(2..10usize);
        let bytes = rng.gen_range(1_000_000u64..1_000_000_000);
        let mut net = FlowNetwork::new();
        let ch = net.add_channel("ch", Bandwidth::gb_per_sec(cap_gb));
        let ids: Vec<_> = (0..n)
            .map(|_| {
                net.open_flow(SimTime::ZERO, &[ch], Bytes::new(bytes))
                    .unwrap()
            })
            .collect();
        let fair = cap_gb / n as f64;
        for id in &ids {
            let rate = net.flow_rate(*id).unwrap().as_gb_per_sec();
            assert!(
                (rate - fair).abs() <= fair * 1e-9,
                "seed {seed}: rate {rate} != fair share {fair} of {n} flows"
            );
        }
        // ...and being identical, they all finish at the same instant.
        let done = net.drain_all().unwrap();
        let first = done.first().unwrap().0.as_secs_f64();
        let last = done.last().unwrap().0.as_secs_f64();
        assert!(
            (last - first).abs() <= first * 1e-9 + 1e-12,
            "seed {seed}: symmetric flows finished apart: {first} vs {last}"
        );
    }
}

#[test]
fn open_order_does_not_change_completion_times() {
    // Flows released at the same instant must complete at the same
    // times whatever order they were opened in — the fluid model has no
    // hidden arrival-order priority.
    for seed in 0..SEEDS {
        let (caps, flows) = network_and_flows(seed);
        let run = |order: &[usize]| -> Vec<f64> {
            let mut net = FlowNetwork::new();
            let chs: Vec<_> = caps
                .iter()
                .map(|c| net.add_channel("ch", Bandwidth::gb_per_sec(*c)))
                .collect();
            for &fi in order {
                let (path, bytes) = &flows[fi];
                let p: Vec<_> = path.iter().map(|i| chs[*i]).collect();
                net.open_flow(SimTime::ZERO, &p, Bytes::new(*bytes))
                    .unwrap();
            }
            let mut done: Vec<f64> = net
                .drain_all()
                .unwrap()
                .into_iter()
                .map(|(t, _)| t.as_secs_f64())
                .collect();
            done.sort_by(f64::total_cmp);
            done
        };
        let forward: Vec<usize> = (0..flows.len()).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let mut shuffled = forward.clone();
        // Deterministic Fisher-Yates off the seed.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }
        let base = run(&forward);
        for other in [run(&reversed), run(&shuffled)] {
            for (a, b) in base.iter().zip(&other) {
                assert!(
                    (a - b).abs() <= a.abs() * 1e-9 + 1e-12,
                    "seed {seed}: completion times depend on open order: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn later_release_never_finishes_earlier() {
    // Monotonicity of the fluid model under staggered arrivals.
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes = rng.gen_range(1_000_000u64..5_000_000_000);
        let delay_us = rng.gen_range(0u64..2_000_000);
        let run = |delay: u64| -> f64 {
            let mut net = FlowNetwork::new();
            let ch = net.add_channel("ch", Bandwidth::gb_per_sec(5.0));
            net.open_flow(SimTime::ZERO, &[ch], Bytes::new(bytes))
                .unwrap();
            net.open_flow(SimTime::from_us(delay), &[ch], Bytes::new(bytes))
                .unwrap();
            net.drain_all().unwrap().last().unwrap().0.as_secs_f64()
        };
        let t0 = run(0);
        let t1 = run(delay_us);
        assert!(
            t1 >= t0 - 1e-6,
            "seed {seed}: later release finished earlier: {t1} < {t0}"
        );
    }
}
