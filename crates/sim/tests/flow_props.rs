//! Property-based tests for the fluid-flow network invariants.

use mcdla_sim::{Bandwidth, Bytes, FlowNetwork, SimTime};
use proptest::prelude::*;

/// Strategy: a small random network topology plus a batch of flows over it.
fn network_and_flows() -> impl Strategy<
    Value = (
        Vec<f64>,             // channel capacities in GB/s
        Vec<(Vec<usize>, u64)>, // (path as channel indexes, bytes)
    ),
> {
    (1usize..6).prop_flat_map(|n_ch| {
        let caps = proptest::collection::vec(0.5f64..100.0, n_ch);
        let flows = proptest::collection::vec(
            (
                proptest::collection::vec(0..n_ch, 1..=n_ch.min(3)),
                1u64..50_000_000_000,
            ),
            1..12,
        );
        (caps, flows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No channel may ever be allocated more than its capacity.
    #[test]
    fn channel_capacity_never_exceeded((caps, flows) in network_and_flows()) {
        let mut net = FlowNetwork::new();
        let chs: Vec<_> = caps
            .iter()
            .map(|c| net.add_channel("ch", Bandwidth::gb_per_sec(*c)))
            .collect();
        let mut ids = Vec::new();
        for (path, bytes) in &flows {
            let p: Vec<_> = path.iter().map(|i| chs[*i]).collect();
            ids.push(net.open_flow(SimTime::ZERO, &p, Bytes::new(*bytes)).unwrap());
        }
        // Sum of allocated rates through each channel <= capacity (+eps).
        let mut through = vec![0.0f64; caps.len()];
        for (id, (path, _)) in ids.iter().zip(&flows) {
            let rate = net.flow_rate(*id).unwrap().as_gb_per_sec();
            prop_assert!(rate >= 0.0);
            for i in path {
                through[*i] += rate;
            }
        }
        for (used, cap) in through.iter().zip(&caps) {
            prop_assert!(
                *used <= cap * (1.0 + 1e-6),
                "channel over-allocated: {used} > {cap}"
            );
        }
    }

    /// Every flow with positive capacity on its whole path eventually
    /// completes, and total completion count equals the number of flows.
    #[test]
    fn all_flows_drain((caps, flows) in network_and_flows()) {
        let mut net = FlowNetwork::new();
        let chs: Vec<_> = caps
            .iter()
            .map(|c| net.add_channel("ch", Bandwidth::gb_per_sec(*c)))
            .collect();
        for (path, bytes) in &flows {
            let p: Vec<_> = path.iter().map(|i| chs[*i]).collect();
            net.open_flow(SimTime::ZERO, &p, Bytes::new(*bytes)).unwrap();
        }
        let done = net.drain_all().expect("positive capacities must drain");
        prop_assert_eq!(done.len(), flows.len());
        // Completion times are non-decreasing.
        for w in done.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        prop_assert_eq!(net.active_flows(), 0);
    }

    /// Work conservation on a single channel: n equal flows on one channel
    /// finish exactly when the serial transfer of all bytes would.
    #[test]
    fn single_channel_work_conserving(
        cap_gb in 1.0f64..100.0,
        sizes in proptest::collection::vec(1u64..10_000_000_000, 1..8),
    ) {
        let mut net = FlowNetwork::new();
        let ch = net.add_channel("ch", Bandwidth::gb_per_sec(cap_gb));
        for s in &sizes {
            net.open_flow(SimTime::ZERO, &[ch], Bytes::new(*s)).unwrap();
        }
        let done = net.drain_all().unwrap();
        let total: u64 = sizes.iter().sum();
        let expect_secs = total as f64 / (cap_gb * 1e9);
        let last = done.last().unwrap().0.as_secs_f64();
        // The channel is always fully utilized until the last byte moves.
        prop_assert!((last - expect_secs).abs() <= expect_secs * 1e-6 + 1e-9,
            "last completion {last}, expected {expect_secs}");
    }

    /// Conservation of bytes: what the channel carried equals the sum of all
    /// flow sizes routed through it.
    #[test]
    fn bytes_carried_matches_flow_sizes(
        sizes in proptest::collection::vec(1u64..1_000_000_000, 1..10),
    ) {
        let mut net = FlowNetwork::new();
        let ch = net.add_channel("ch", Bandwidth::gb_per_sec(10.0));
        for s in &sizes {
            net.open_flow(SimTime::ZERO, &[ch], Bytes::new(*s)).unwrap();
        }
        net.drain_all().unwrap();
        let total: u64 = sizes.iter().sum();
        let carried = net.bytes_carried(ch).as_u64();
        let tolerance = total / 1000 + 8;
        prop_assert!(
            carried.abs_diff(total) <= tolerance,
            "carried {carried}, expected {total}"
        );
    }

    /// Staggered arrivals: an identical workload released later never
    /// completes earlier (monotonicity of the fluid model).
    #[test]
    fn later_release_never_finishes_earlier(
        bytes in 1_000_000u64..5_000_000_000,
        delay_us in 0u64..2_000_000,
    ) {
        let run = |delay: u64| -> f64 {
            let mut net = FlowNetwork::new();
            let ch = net.add_channel("ch", Bandwidth::gb_per_sec(5.0));
            net.open_flow(SimTime::ZERO, &[ch], Bytes::new(bytes)).unwrap();
            net.open_flow(SimTime::from_us(delay), &[ch], Bytes::new(bytes))
                .unwrap();
            net.drain_all().unwrap().last().unwrap().0.as_secs_f64()
        };
        let t0 = run(0);
        let t1 = run(delay_us);
        prop_assert!(t1 + 1e-9 >= t0 * (1.0 - 1e-9) - 1e-9 || t1 >= t0 - 1e-6,
            "later release finished earlier: {t1} < {t0}");
    }
}
