//! A minimal, dependency-free HTTP/1.1 wire layer: request parsing with
//! hard size limits and JSON response writing.
//!
//! This is deliberately a small subset of HTTP — exactly what
//! `mcdla-serve` speaks (see `docs/protocol.md`): `GET`/`POST`,
//! `Content-Length` bodies, keep-alive by default. Everything malformed,
//! truncated, oversized, or unsupported maps to a 4xx/5xx [`WireError`]
//! rather than a panic; the wire tests in `tests/wire.rs` pin that.

use std::io::{BufRead, Write};

/// Maximum accepted request-head size (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted request-body size.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Decoded body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

/// A wire-level failure, carrying the HTTP status the server should
/// answer with before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Response status code (4xx/5xx; 408 for idle-timeout reads).
    pub status: u16,
    /// Human-readable cause, sent back as `{"error": ...}`.
    pub message: String,
}

impl WireError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        WireError {
            status,
            message: message.into(),
        }
    }
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` on a clean close (EOF before the first byte of a
/// request) — the keep-alive loop's normal exit. Every malformed input
/// is an `Err` naming the 4xx to answer with.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, WireError> {
    let Some(head) = read_head(reader)? else {
        return Ok(None);
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(WireError::new(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    };
    if method.is_empty() || path.is_empty() {
        return Err(WireError::new(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::new(
            400,
            format!("unsupported protocol version `{version}`"),
        ));
    }

    let mut content_length = 0usize;
    // HTTP/1.0 closes by default; 1.1 keeps alive by default.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(WireError::new(400, format!("malformed header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| WireError::new(400, format!("bad content-length `{value}`")))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(WireError::new(
                        413,
                        format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
                    ));
                }
            }
            "transfer-encoding" => {
                return Err(WireError::new(
                    501,
                    "transfer-encoding is unsupported; send a content-length body",
                ));
            }
            "connection" if value.eq_ignore_ascii_case("close") => keep_alive = false,
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            WireError::new(408, "timed out reading the request body")
        } else {
            WireError::new(400, "truncated request body")
        }
    })?;

    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
        keep_alive,
    }))
}

/// Reads up to the blank line ending the request head, byte by byte
/// (the reader is buffered, so this costs nanoseconds per byte).
fn read_head<R: BufRead>(reader: &mut R) -> Result<Option<String>, WireError> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    Ok(None) // clean close between requests
                } else {
                    Err(WireError::new(400, "truncated request head"))
                };
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(WireError::new(
                        431,
                        format!("request head exceeds the {MAX_HEAD_BYTES}-byte limit"),
                    ));
                }
                if head.ends_with(b"\r\n\r\n") {
                    head.truncate(head.len() - 4);
                    let text = String::from_utf8(head)
                        .map_err(|_| WireError::new(400, "request head is not valid utf-8"))?;
                    return Ok(Some(text));
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return if head.is_empty() {
                    Ok(None) // idle keep-alive connection: close quietly
                } else {
                    Err(WireError::new(408, "timed out reading the request head"))
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(None), // reset mid-idle: nothing to answer
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        _ => "Unknown",
    }
}

/// Writes one JSON response (the only content type the service speaks).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One buffered write per response keeps cached-cell latency low.
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    w.write_all(&out)?;
    w.flush()
}

/// The `{"error": message}` JSON body every failure answers with.
pub fn error_body(message: &str) -> String {
    serde::json::to_string(&serde::Value::Map(vec![(
        "error".into(),
        serde::Value::Str(message.into()),
    )]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, WireError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /simulate HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(parse(b"").unwrap(), None);
    }

    #[test]
    fn truncation_is_a_400() {
        assert_eq!(parse(b"GET /healthz HTT").unwrap_err().status, 400);
        let err =
            parse(b"POST /simulate HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("truncated"));
    }

    #[test]
    fn malformed_inputs_name_their_4xx() {
        assert_eq!(parse(b"NOT-HTTP\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET /x HTTP/2.0\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse(b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\ncontent-length: lots\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
    }

    #[test]
    fn oversized_inputs_are_bounded() {
        let huge = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(huge.as_bytes()).unwrap_err().status, 413);
        let mut head = b"GET /x HTTP/1.1\r\n".to_vec();
        head.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 8));
        assert_eq!(parse(&head).unwrap_err().status, 431);
    }

    #[test]
    fn responses_carry_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_bodies_are_json() {
        assert_eq!(error_body("boom"), "{\"error\":\"boom\"}");
    }
}
