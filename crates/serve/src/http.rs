//! A minimal, dependency-free HTTP/1.1 wire layer: request parsing with
//! hard size limits and JSON response writing.
//!
//! This is deliberately a small subset of HTTP — exactly what
//! `mcdla-serve` speaks (see `docs/protocol.md`): `GET`/`POST`,
//! `Content-Length` bodies, keep-alive by default. Everything malformed,
//! truncated, oversized, or unsupported maps to a 4xx/5xx [`WireError`]
//! rather than a panic; the wire tests in `tests/wire.rs` pin that.

use std::io::{BufRead, Write};

/// Maximum accepted request-head size (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted request-body size.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Decoded body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
    /// All request headers, names lower-cased, values trimmed, in
    /// arrival order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A wire-level failure, carrying the HTTP status the server should
/// answer with before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Response status code (4xx/5xx; 408 for idle-timeout reads).
    pub status: u16,
    /// Human-readable cause, sent back as `{"error": ...}`.
    pub message: String,
}

impl WireError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        WireError {
            status,
            message: message.into(),
        }
    }
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` on a clean close (EOF before the first byte of a
/// request) — the keep-alive loop's normal exit. Every malformed input
/// is an `Err` naming the 4xx to answer with.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, WireError> {
    let Some(head) = read_head(reader)? else {
        return Ok(None);
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(WireError::new(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    };
    if method.is_empty() || path.is_empty() {
        return Err(WireError::new(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::new(
            400,
            format!("unsupported protocol version `{version}`"),
        ));
    }

    let mut content_length = 0usize;
    // HTTP/1.0 closes by default; 1.1 keeps alive by default.
    let mut keep_alive = version != "HTTP/1.0";
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(WireError::new(400, format!("malformed header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        headers.push((name.clone(), value.to_owned()));
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| WireError::new(400, format!("bad content-length `{value}`")))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(WireError::new(
                        413,
                        format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
                    ));
                }
            }
            "transfer-encoding" => {
                return Err(WireError::new(
                    501,
                    "transfer-encoding is unsupported; send a content-length body",
                ));
            }
            "connection" if value.eq_ignore_ascii_case("close") => keep_alive = false,
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            WireError::new(408, "timed out reading the request body")
        } else {
            WireError::new(400, "truncated request body")
        }
    })?;

    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
        keep_alive,
        headers,
    }))
}

/// Reads up to the blank line ending the request head, byte by byte
/// (the reader is buffered, so this costs nanoseconds per byte).
fn read_head<R: BufRead>(reader: &mut R) -> Result<Option<String>, WireError> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    Ok(None) // clean close between requests
                } else {
                    Err(WireError::new(400, "truncated request head"))
                };
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(WireError::new(
                        431,
                        format!("request head exceeds the {MAX_HEAD_BYTES}-byte limit"),
                    ));
                }
                if head.ends_with(b"\r\n\r\n") {
                    head.truncate(head.len() - 4);
                    let text = String::from_utf8(head)
                        .map_err(|_| WireError::new(400, "request head is not valid utf-8"))?;
                    return Ok(Some(text));
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return if head.is_empty() {
                    Ok(None) // idle keep-alive connection: close quietly
                } else {
                    Err(WireError::new(408, "timed out reading the request head"))
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(None), // reset mid-idle: nothing to answer
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Splits a request target into its path and optional query string
/// (`/grid?stream=1` → `("/grid", Some("stream=1"))`).
pub fn split_target(target: &str) -> (&str, Option<&str>) {
    match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    }
}

/// True when a query string carries `key=1` or a bare `key` flag.
pub fn query_flag(query: Option<&str>, key: &str) -> bool {
    query.unwrap_or("").split('&').any(|pair| {
        pair == key || pair.strip_prefix(key).and_then(|r| r.strip_prefix('=')) == Some("1")
    })
}

/// The value of `key=...` in a query string (`None` when absent or
/// bare). No percent-decoding — the values this service reads are
/// plain tokens (`sort=slow`, `endpoint=grid`, `limit=50`).
pub fn query_param<'q>(query: Option<&'q str>, key: &str) -> Option<&'q str> {
    query?
        .split('&')
        .find_map(|pair| pair.split_once('=').filter(|(k, _)| *k == key))
        .map(|(_, v)| v)
}

/// Starts a chunked NDJSON response: status line and headers only; the
/// body follows as [`write_chunk`] calls ended by [`finish_chunked`].
pub fn write_chunked_head(
    w: &mut impl Write,
    status: u16,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_chunked_head_with(w, status, &[], keep_alive)
}

/// [`write_chunked_head`] with extra response headers (the request-id
/// echo on streamed grids).
pub fn write_chunked_head_with(
    w: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: {connection}\r\n",
        reason(status),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())
}

/// Writes one HTTP/1.1 chunk (`{len:x}\r\n{data}\r\n`). Empty data is
/// skipped — a zero-length chunk would terminate the stream.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked response (the `0\r\n\r\n` final chunk). A stream
/// that closes without this marker was truncated mid-flight — that is
/// how clients detect a server-side failure after the 200 head.
pub fn finish_chunked(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Writes one JSON response (the content type almost everything speaks).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_typed(w, status, "application/json", body, keep_alive)
}

/// Writes one response with an explicit content type (`GET /metrics`
/// answers Prometheus text exposition, everything else JSON).
pub fn write_response_typed(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(w, status, content_type, &[], body, keep_alive)
}

/// [`write_response_typed`] with extra response headers (the
/// `X-Mcdla-Request-Id` echo).
pub fn write_response_with(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One buffered write per response keeps cached-cell latency low.
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    w.write_all(&out)?;
    w.flush()
}

/// The `{"error": message}` JSON body every failure answers with.
pub fn error_body(message: &str) -> String {
    serde::json::to_string(&serde::Value::Map(vec![(
        "error".into(),
        serde::Value::Str(message.into()),
    )]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, WireError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /simulate HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive);
    }

    #[test]
    fn headers_are_retained_case_insensitively() {
        let req = parse(
            b"POST /simulate HTTP/1.1\r\nX-Mcdla-Request-Id: abc123\r\ncontent-length: 0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.header("x-mcdla-request-id"), Some("abc123"));
        assert_eq!(req.header("X-MCDLA-REQUEST-ID"), Some("abc123"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn query_params_parse() {
        assert_eq!(
            query_param(Some("sort=slow&endpoint=grid"), "sort"),
            Some("slow")
        );
        assert_eq!(
            query_param(Some("sort=slow&endpoint=grid"), "endpoint"),
            Some("grid")
        );
        assert_eq!(query_param(Some("sort"), "sort"), None);
        assert_eq!(query_param(None, "sort"), None);
    }

    #[test]
    fn extra_headers_are_written() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            200,
            "application/json",
            &[("x-mcdla-request-id", "deadbeef")],
            "{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-mcdla-request-id: deadbeef\r\n"));
        let mut out = Vec::new();
        write_chunked_head_with(&mut out, 200, &[("x-mcdla-request-id", "cafe")], true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-mcdla-request-id: cafe\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(parse(b"").unwrap(), None);
    }

    #[test]
    fn truncation_is_a_400() {
        assert_eq!(parse(b"GET /healthz HTT").unwrap_err().status, 400);
        let err =
            parse(b"POST /simulate HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("truncated"));
    }

    #[test]
    fn malformed_inputs_name_their_4xx() {
        assert_eq!(parse(b"NOT-HTTP\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET /x HTTP/2.0\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse(b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\ncontent-length: lots\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
    }

    #[test]
    fn oversized_inputs_are_bounded() {
        let huge = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(huge.as_bytes()).unwrap_err().status, 413);
        let mut head = b"GET /x HTTP/1.1\r\n".to_vec();
        head.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 8));
        assert_eq!(parse(&head).unwrap_err().status, 431);
    }

    #[test]
    fn responses_carry_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_bodies_are_json() {
        assert_eq!(error_body("boom"), "{\"error\":\"boom\"}");
    }

    #[test]
    fn target_splitting_and_flags() {
        assert_eq!(split_target("/grid"), ("/grid", None));
        assert_eq!(split_target("/grid?stream=1"), ("/grid", Some("stream=1")));
        assert_eq!(split_target("/g?a=1&b=2"), ("/g", Some("a=1&b=2")));
        assert!(query_flag(Some("stream=1"), "stream"));
        assert!(query_flag(Some("x=2&stream"), "stream"));
        assert!(!query_flag(Some("stream=0"), "stream"));
        assert!(!query_flag(Some("streamer=1"), "stream"));
        assert!(!query_flag(None, "stream"));
    }

    #[test]
    fn chunked_framing_round_trips() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, true).unwrap();
        write_chunk(&mut out, b"{\"a\":1}\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut out, b"{\"b\":2}\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("content-type: application/x-ndjson\r\n"));
        let body = text.split_once("\r\n\r\n").unwrap().1;
        assert_eq!(body, "8\r\n{\"a\":1}\n\r\n8\r\n{\"b\":2}\n\r\n0\r\n\r\n");
    }
}
